// Experiment E7 (Lemma 4.1): the union-bound derandomization, computed
// exactly at the only scale where it is computable.
//
// Paper prediction: once the per-graph failure probability of the
// randomized algorithm drops below 1/|G_n|, a perfect seed assignment must
// exist -- and the enumeration finds (many of) them. With a too-small round
// budget the mean failure rate is positive yet perfect seeds still exist,
// illustrating that the argument needs only "not every seed fails
// somewhere".
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const int max_n = static_cast<int>(args.get_int("max_n", 4));

  std::cout << "=== E7: Lemma 4.1 -- brute-force derandomization ===\n"
            << "algorithm: Luby MIS, priorities fixed per identifier\n\n";
  Table table({"max n", "bits/id", "budget", "|family|", "|seeds|",
               "perfect seeds", "mean fail", "worst fail", "derandomizable"});
  for (const int bits : {1, 2, 3}) {
    for (const int budget : {1, 2, 3}) {
      BruteForceOptions options;
      options.max_n = max_n;
      options.bits_per_id = bits;
      options.round_budget = budget;
      if (options.bits_per_id * options.max_n > 16) continue;
      const BruteForceResult r = brute_force_derandomize_mis(options);
      table.add_row(
          {fmt(options.max_n), fmt(bits), fmt(budget),
           fmt(r.graphs_in_family), fmt(r.seed_assignments),
           fmt(r.perfect_seeds), fmt(r.mean_failure_fraction, 4),
           fmt(r.worst_failures), r.derandomizable ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  // The Lemma 4.1 arithmetic at this scale.
  std::cout << "\nLemma 4.1 counting: |G_n| < 2^{n^2}; an algorithm with "
               "failure < 2^{-n^2} <= 1/|G_n| on every member leaves some "
               "seed that fails nowhere (visible above: perfect seeds "
               "exist whenever mean fail < 1/|family|... and in fact far "
               "beyond).\n";
  return 0;
}
