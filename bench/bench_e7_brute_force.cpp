// Experiment E7 (Lemma 4.1): the union-bound derandomization, computed
// exactly at the only scale where it is computable.
//
// Paper prediction: once the per-graph failure probability of the
// randomized algorithm drops below 1/|G_n|, a perfect seed assignment must
// exist -- and the enumeration finds (many of) them. With a too-small round
// budget the mean failure rate is positive yet perfect seeds still exist,
// illustrating that the argument needs only "not every seed fails
// somewhere".
//
// Ported to the lab API: the (bits/id x budget) grid is the variant axis of
// one run_sweep call over the derand/brute_force solver (the enumeration is
// the instance; the cell graph and seed are inert).
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const int max_n = static_cast<int>(args.get_int("max_n", 4));

  std::cout << "=== E7: Lemma 4.1 -- brute-force derandomization ===\n"
            << "algorithm: Luby MIS, priorities fixed per identifier\n\n";

  lab::SweepSpec spec;
  spec.graphs = {{"family", make_path(2)}};  // inert: the family is derived
  spec.regimes = {Regime::full()};
  spec.seeds = {1};
  spec.solvers = {"derand/brute_force"};
  spec.params = {{"max_n", static_cast<double>(max_n)}};
  for (const int bits : {1, 2, 3}) {
    for (const int budget : {1, 2, 3}) {
      if (bits * max_n > 16) continue;
      spec.variants.push_back(
          {"b" + std::to_string(bits) + "/r" + std::to_string(budget),
           {{"bits_per_id", static_cast<double>(bits)},
            {"round_budget", static_cast<double>(budget)}}});
    }
  }
  if (spec.variants.empty()) {
    std::cout << "every (bits/id, budget) combination exceeds the 2^16 "
                 "seed-space cap at max_n=" << max_n << "; nothing to run.\n";
    return 0;
  }
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  Table table({"max n", "bits/id", "budget", "|family|", "|seeds|",
               "perfect seeds", "mean fail", "worst fail", "derandomizable"});
  for (const lab::RunRecord& r : result.records) {
    table.add_row({fmt(max_n), r.variant.substr(1, r.variant.find('/') - 1),
                   r.variant.substr(r.variant.find("/r") + 2),
                   fmt(r.metric_or("graphs_in_family", 0), 0),
                   fmt(r.metric_or("seed_assignments", 0), 0),
                   fmt(r.metric_or("perfect_seeds", 0), 0),
                   fmt(r.metric_or("mean_failure_fraction", 0), 4),
                   fmt(r.metric_or("worst_failures", 0), 0),
                   r.success ? "yes" : "NO"});
  }
  table.print(std::cout);

  // The Lemma 4.1 arithmetic at this scale.
  std::cout << "\nLemma 4.1 counting: |G_n| < 2^{n^2}; an algorithm with "
               "failure < 2^{-n^2} <= 1/|G_n| on every member leaves some "
               "seed that fails nowhere (visible above: perfect seeds "
               "exist whenever mean fail < 1/|family|... and in fact far "
               "beyond).\n";
  return 0;
}
