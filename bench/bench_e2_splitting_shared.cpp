// Experiment E2 (Lemma 3.4): the splitting problem in zero rounds with
// O(log n) bits of shared randomness.
//
// Paper prediction: with an eps-biased space over a 2 * Theta(log n)-bit
// seed, splitting succeeds with probability >= 1 - 1/n; fully independent
// coins and poly(log n)-wise independence behave identically; k-wise
// independence with tiny k may start failing on overlapping constraints.
//
// Ported to the lab API: one Sweep per instance shape (the instance knobs
// ride in the param map); the Wilson-interval table is computed from the
// returned RunRecords.
#include <iostream>

#include "core/api.hpp"
#include "derand/cond_exp.hpp"
#include "graph/bipartite.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", args.quick() ? 256 : 1024));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 40 : 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));

  std::cout << "=== E2: Lemma 3.4 -- splitting with shared randomness ===\n"
            << "n = " << n << ", " << trials << " trials per cell\n\n";

  Table table({"instance", "degree", "regime", "seed bits", "fail rate",
               "95% upper", "union bound"});
  for (const bool window : {false, true}) {
    for (const int degree : {2 * logn, 4 * logn, 8 * logn}) {
      lab::SweepSpec spec;
      spec.graphs = {{window ? "window" : "random", make_path(n)}};
      spec.regimes = {
          Regime::full(),
          Regime::kwise(2),
          Regime::kwise(2 * logn),
          Regime::shared_epsbias(2 * logn),
          Regime::shared_epsbias(4 * logn),
          Regime::shared_kwise(64 * logn),
      };
      for (int t = 0; t < trials; ++t) {
        spec.seeds.push_back(seed + 1000 + static_cast<std::uint64_t>(t));
      }
      spec.solvers = {"splitting/random"};
      spec.params = {{"degree", static_cast<double>(degree)},
                     {"window", window ? 1.0 : 0.0}};
      spec.threads = static_cast<int>(args.get_int("threads", 0));
      const lab::SweepResult result = sweep(spec);

      // One row per regime: failure statistics over the seed sweep. Cells
      // that threw are infrastructure errors, not splitting failures --
      // they are reported separately and excluded from the statistic.
      for (const Regime& regime : spec.regimes) {
        int failures = 0;
        int cells = 0;
        int errors = 0;
        std::uint64_t seed_bits = 0;
        double union_bound = 0;
        for (const lab::RunRecord& r : result.records) {
          if (r.regime != regime.name()) continue;
          if (!r.error.empty()) {
            if (++errors == 1) {
              std::cout << "cell error (" << r.regime << "): " << r.error
                        << "\n";
            }
            continue;
          }
          ++cells;
          if (!r.success) ++failures;
          seed_bits = r.shared_seed_bits;
          union_bound = r.metrics.at("union_bound");
        }
        if (cells == 0) {
          table.add_row({window ? "window" : "random", fmt(degree),
                         regime.name(), "-", "-", "-", "-"});
          continue;
        }
        const WilsonInterval wilson =
            wilson_interval(static_cast<std::size_t>(failures),
                            static_cast<std::size_t>(cells));
        table.add_row({window ? "window" : "random", fmt(degree),
                       regime.name(), fmt(seed_bits),
                       fmt(static_cast<double>(failures) / cells, 4),
                       fmt(wilson.high, 4), fmt_sci(union_bound)});
      }
    }
  }
  table.print(std::cout);

  // Deterministic companion: conditional expectations never fail.
  const BipartiteGraph h =
      make_random_splitting_instance(n, n, 2 * logn, seed);
  const CondExpSplittingResult det = conditional_expectation_splitting(h);
  std::cout << "\nconditional-expectation splitting (deterministic): "
            << det.violations << " violations, initial estimator "
            << fmt(det.initial_estimate, 4) << "\n"
            << "paper: O(log n) shared bits suffice w.p. 1 - 1/n; the "
               "deterministic poly(log n)-round version is P-SLOCAL "
               "complete.\n";
  return 0;
}
