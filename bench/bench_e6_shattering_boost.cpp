// Experiment E6 (Theorem 4.2): error boosting via shattering.
//
// Paper prediction: (a) the base EN stage leaves, w.h.p., only components
// whose (2t+1)-separated subsets are far below K = 2^{eps log^2 T}; (b) the
// boosted pipeline (base + deterministic finish) never fails; (c) its round
// cost stays T * poly(log n).
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId n =
      static_cast<NodeId>(args.get_int("n", args.quick() ? 192 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 20 : 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 6));

  std::cout << "=== E6: Theorem 4.2 -- boosting via shattering ===\n"
            << "per-phase clustering probability >= 1/2, so `phases` "
               "controls the base failure rate.\n\n";

  Table table({"graph", "base phases", "base fail rate", "leftover(max)",
               "sep set(max)", "boosted fails", "colors(max)",
               "rounds(max)"});
  std::vector<std::pair<std::string, Graph>> workloads;
  workloads.emplace_back("cycle", make_cycle(n));
  workloads.emplace_back("caterpillar", make_caterpillar(n / 4, 3));
  workloads.emplace_back("gnp", make_gnp(n, 3.0 / n, seed));
  for (const auto& [name, g] : workloads) {
    for (const int phases : {1, 2, 4, 8}) {
      int base_failures = 0;
      int boosted_failures = 0;
      int max_leftover = 0;
      int max_separated = 0;
      int max_colors = 0;
      int max_rounds = 0;
      for (int t = 0; t < trials; ++t) {
        NodeRandomness rnd(Regime::full(),
                           seed + 100 + static_cast<std::uint64_t>(t));
        ShatteringOptions options;
        options.base_phases = phases;
        options.en.shift_cap = 6;  // small t keeps stage 2 exercised
        const ShatteringResult r = boosted_decomposition(g, rnd, options);
        if (!r.base_complete) ++base_failures;
        max_leftover = std::max(max_leftover, r.leftover_nodes);
        max_separated = std::max(max_separated, r.separated_set_size);
        const ValidationReport report =
            validate_decomposition(g, r.decomposition);
        if (!r.success || !report.valid) ++boosted_failures;
        max_colors = std::max(max_colors, report.colors_used);
        max_rounds = std::max(max_rounds, r.total_rounds);
      }
      table.add_row({name, fmt(phases),
                     fmt(static_cast<double>(base_failures) / trials, 3),
                     fmt(max_leftover), fmt(max_separated),
                     fmt(boosted_failures) + "/" + fmt(trials),
                     fmt(max_colors), fmt(max_rounds)});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper: base failure decays ~2^-phases per node; separated "
               "leftover sets stay tiny; the boosted column must be all "
               "zero.\n";
  return 0;
}
