// Experiment E6 (Theorem 4.2): error boosting via shattering.
//
// Paper prediction: (a) the base EN stage leaves, w.h.p., only components
// whose (2t+1)-separated subsets are far below K = 2^{eps log^2 T}; (b) the
// boosted pipeline (base + deterministic finish) never fails; (c) its round
// cost stays T * poly(log n).
//
// Ported to the lab API: graphs x phases x trials is one run_sweep call
// (phases on the variant axis, trials on the seed axis); this binary only
// aggregates the records.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId n =
      static_cast<NodeId>(args.get_int("n", args.quick() ? 192 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 20 : 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 6));

  std::cout << "=== E6: Theorem 4.2 -- boosting via shattering ===\n"
            << "per-phase clustering probability >= 1/2, so `phases` "
               "controls the base failure rate.\n\n";

  lab::SweepSpec spec;
  spec.graphs.push_back({"cycle", make_cycle(n)});
  spec.graphs.push_back({"caterpillar", make_caterpillar(n / 4, 3)});
  spec.graphs.push_back({"gnp", make_gnp(n, 3.0 / n, seed)});
  spec.regimes = {Regime::full()};
  spec.params = {{"shift_cap", 6.0}};  // small t keeps stage 2 exercised
  for (const int phases : {1, 2, 4, 8}) {
    spec.variants.push_back({"phases" + std::to_string(phases),
                             {{"base_phases", static_cast<double>(phases)}}});
  }
  for (int t = 0; t < trials; ++t) {
    spec.seeds.push_back(seed + 100 + static_cast<std::uint64_t>(t));
  }
  spec.solvers = {"decomp/shattering"};
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  struct Agg {
    int trials = 0;
    int base_failures = 0;
    int boosted_failures = 0;
    int max_leftover = 0;
    int max_separated = 0;
    int max_colors = 0;
    int max_rounds = 0;
  };
  std::map<std::pair<std::string, std::string>, Agg> groups;
  for (const lab::RunRecord& r : result.records) {
    Agg& agg = groups[{r.graph, r.variant}];
    ++agg.trials;
    if (r.metric_or("base_complete", 0) == 0.0) ++agg.base_failures;
    if (!r.success || !r.checker_passed) ++agg.boosted_failures;
    agg.max_leftover = std::max(
        agg.max_leftover, static_cast<int>(r.metric_or("leftover_nodes", 0)));
    agg.max_separated = std::max(
        agg.max_separated,
        static_cast<int>(r.metric_or("separated_set_size", 0)));
    agg.max_colors = std::max(agg.max_colors, r.colors);
    agg.max_rounds = std::max(agg.max_rounds, r.rounds);
  }

  Table table({"graph", "base phases", "base fail rate", "leftover(max)",
               "sep set(max)", "boosted fails", "colors(max)",
               "rounds(max)"});
  for (const auto& [key, agg] : groups) {
    const auto& [graph, variant] = key;
    table.add_row({graph, variant.substr(6),
                   fmt(static_cast<double>(agg.base_failures) / agg.trials,
                       3),
                   fmt(agg.max_leftover), fmt(agg.max_separated),
                   fmt(agg.boosted_failures) + "/" + fmt(agg.trials),
                   fmt(agg.max_colors), fmt(agg.max_rounds)});
  }
  table.print(std::cout);
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_failed << " failed, on "
            << result.threads_used << " thread(s) in "
            << fmt(result.wall_ms, 1) << " ms\n";
  std::cout << "\npaper: base failure decays ~2^-phases per node; separated "
               "leftover sets stay tiny; the boosted column must be all "
               "zero.\n";
  return 0;
}
