// Microbenchmarks (google-benchmark): simulator throughput and randomness
// generator costs. Performance baseline, not a paper claim.
#include <benchmark/benchmark.h>

#include "core/api.hpp"

namespace {

using namespace rlocal;

void BM_EngineFloodGrid(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = make_grid(side, side);
  for (auto _ : state) {
    const FloodMinResult r = run_flood_min(g, 2 * side);
    benchmark::DoNotOptimize(r.min_id.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EngineFloodGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_EngineLubyMis(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 6.0 / n, 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NodeRandomness rnd(Regime::full(), ++seed);
    const LubyMisResult r = run_luby_mis(g, rnd);
    benchmark::DoNotOptimize(r.in_mis.size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EngineLubyMis)->Arg(64)->Arg(256);

void BM_ReferenceLubyMis(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 6.0 / n, 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NodeRandomness rnd(Regime::full(), ++seed);
    const LubyMisResult r = reference_luby_mis(g, rnd);
    benchmark::DoNotOptimize(r.in_mis.size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_ReferenceLubyMis)->Arg(64)->Arg(256)->Arg(1024);

void BM_KWiseValue(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const KWiseGenerator gen = KWiseGenerator::from_seed(k, 64, 3);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.value(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KWiseValue)->Arg(2)->Arg(16)->Arg(128)->Arg(512);

void BM_EpsBiasBit(benchmark::State& state) {
  const EpsBiasGenerator gen =
      EpsBiasGenerator::from_seed(static_cast<int>(state.range(0)), 3);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.bit(++i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsBiasBit)->Arg(16)->Arg(32)->Arg(48);

void BM_ElkinNeiman(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 4.0 / n, 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NodeRandomness rnd(Regime::full(), ++seed);
    const EnResult r = elkin_neiman_decomposition(g, rnd);
    benchmark::DoNotOptimize(r.phases_used);
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_ElkinNeiman)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
