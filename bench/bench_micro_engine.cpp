// Microbenchmarks (google-benchmark): simulator throughput and randomness
// generator costs. Performance baseline, not a paper claim.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/api.hpp"
#include "obs/obs.hpp"
#include "rnd/dispatch.hpp"
#include "sim/programs/chatter.hpp"

namespace {

using namespace rlocal;

void BM_EngineFloodGrid(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = make_grid(side, side);
  for (auto _ : state) {
    const FloodMinResult r = run_flood_min(g, 2 * side);
    benchmark::DoNotOptimize(r.min_id.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EngineFloodGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_EngineLubyMis(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 6.0 / n, 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NodeRandomness rnd(Regime::full(), ++seed);
    const LubyMisResult r = run_luby_mis(g, rnd);
    benchmark::DoNotOptimize(r.in_mis.size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EngineLubyMis)->Arg(64)->Arg(256);

void BM_ReferenceLubyMis(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 6.0 / n, 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NodeRandomness rnd(Regime::full(), ++seed);
    const LubyMisResult r = reference_luby_mis(g, rnd);
    benchmark::DoNotOptimize(r.in_mis.size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_ReferenceLubyMis)->Arg(64)->Arg(256)->Arg(1024);

void BM_KWiseValue(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const KWiseGenerator gen = KWiseGenerator::from_seed(k, 64, 3);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.value(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KWiseValue)->Arg(2)->Arg(16)->Arg(128)->Arg(512);

// Before/after case for the last-point memo: algorithms draw bit-by-bit at
// one (node, stream) packing (geometric shifts, bit assembly), re-evaluating
// the same polynomial point up to 64 times. Arg(1) = memo enabled (the
// default, "after"), Arg(0) = disabled ("before", full Horner per draw).
void BM_KWiseRepeatedPointDraws(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  KWiseGenerator gen = KWiseGenerator::from_seed(k, 64, 3);
  gen.set_memo_enabled(state.range(1) != 0);
  std::uint64_t point = 0;
  for (auto _ : state) {
    // 64 bit-draws off one point (what NodeRandomness::bit/geometric do per
    // chunk); each is a full Horner chain without the memo.
    ++point;
    std::uint64_t word = 0;
    for (int j = 0; j < 64; ++j) {
      word |= ((gen.value(point) >> j) & 1ULL) << j;
    }
    benchmark::DoNotOptimize(word);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_KWiseRepeatedPointDraws)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

// Before/after case for batched multi-point Horner: *distinct* points (one
// priority per node per iteration, the Luby/EN access pattern) defeat the
// last-point memo entirely. Arg(1) = values() batch (the "after":
// interleaved chains), Arg(0) = a value() loop (the "before": one dependent
// GF(2^m) chain at a time). Arg(2) forces the evaluation backend for the
// batch path -- 0 = portable (4-wide shift/xor), 1 = PCLMUL (8-wide
// carry-less multiply, docs/randomness.md) -- so one run yields the
// before/after numbers across both the batching and the SIMD changes.
void BM_KWiseDistinctPointDraws(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const rnd::Backend backend =
      state.range(2) != 0 ? rnd::Backend::kPclmul : rnd::Backend::kPortable;
  if (!rnd::backend_available(backend)) {
    state.SkipWithError("backend unavailable on this binary+CPU");
    return;
  }
  rnd::force_backend(backend);
  const KWiseGenerator gen = KWiseGenerator::from_seed(k, 64, 3);
  constexpr std::size_t kBatch = 256;
  std::vector<std::uint64_t> points(kBatch);
  std::vector<std::uint64_t> out(kBatch);
  std::uint64_t base = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      // Distinct pack_draw-shaped points (node << 32 | stream << 6): the
      // access pattern of one priority draw per node -- the memo never
      // hits.
      points[i] = ((base + i) << 32) | ((i & 63u) << 6);
    }
    base += kBatch;
    if (state.range(1) != 0) {
      gen.values(points, out);
    } else {
      for (std::size_t i = 0; i < kBatch; ++i) out[i] = gen.value(points[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
  rnd::clear_backend_override();
}
BENCHMARK(BM_KWiseDistinctPointDraws)
    ->Args({16, 0, 0})
    ->Args({16, 1, 0})
    ->Args({16, 1, 1})
    ->Args({128, 0, 0})
    ->Args({128, 1, 0})
    ->Args({128, 1, 1})
    ->Args({512, 0, 0})
    ->Args({512, 1, 0})
    ->Args({512, 1, 1});

// Before/after case for the batched randomness plane: one
// NodeRandomness::priority_batch per iteration versus the scalar chunk()
// loop it replaces (the reference-Luby per-iteration access pattern:
// distinct nodes, one stream). Arg(1) = batch (the "after"), Arg(0) =
// scalar loop (the "before"); the drawn values are byte-identical.
void BM_NodeRandomnessBatchedDraws(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  NodeRandomness rnd(Regime::kwise(k), 3);
  constexpr std::size_t kNodes = 256;
  std::vector<std::uint64_t> nodes(kNodes);
  std::vector<std::uint64_t> out(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i] = static_cast<std::uint64_t>(i);
  }
  std::uint64_t stream = 0;
  for (auto _ : state) {
    ++stream;
    if (state.range(1) != 0) {
      rnd.priority_batch(nodes, stream, 24, out);
    } else {
      for (std::size_t i = 0; i < kNodes; ++i) {
        out[i] = rnd.chunk(nodes[i], stream) >> 40;
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kNodes));
}
BENCHMARK(BM_NodeRandomnessBatchedDraws)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

// Arena round throughput: a broadcast-heavy protocol (every node sends a
// two-word payload to every neighbor every round), items = messages
// delivered. The engine is reused across run() calls, so after the first
// run the arena/CSR buffers are warm and the round loop performs zero heap
// allocations -- this counter is the "after" of the MessageArena change
// (the "before" allocated one std::vector per message per round).
void BM_EngineArenaRound(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 8.0 / n, 7);
  Engine engine(g, {});
  std::int64_t messages = 0;
  for (auto _ : state) {
    const EngineStats stats = engine.run([&](NodeId v) {
      return std::make_unique<ChatterProgram>(g.id(v), /*rounds=*/16);
    });
    messages = stats.messages;
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_EngineArenaRound)->Arg(256)->Arg(1024);

// Tracing overhead on the hottest instrumented loop: the same warm-engine
// chatter workload as BM_EngineArenaRound, with the obs tracer disabled
// (Arg 0 -- the default production state; every span site is one relaxed
// atomic load + branch) versus enabled (Arg 1 -- span begin/end pairs
// recorded into per-thread rings). The Arg(0)/Arg(1) delta is the
// measured overhead contract quoted in docs/observability.md.
void BM_TraceOverhead(benchmark::State& state) {
  const Graph g = make_gnp(512, 8.0 / 512, 7);
  if (state.range(0) != 0) {
    obs::Tracer::enable(/*ring_kb=*/4096);
  } else {
    obs::Tracer::disable();
  }
  Engine engine(g, {});
  std::int64_t messages = 0;
  for (auto _ : state) {
    const EngineStats stats = engine.run([&](NodeId v) {
      return std::make_unique<ChatterProgram>(g.id(v), /*rounds=*/16);
    });
    messages = stats.messages;
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(state.iterations() * messages);
  obs::Tracer::disable();
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

void BM_EpsBiasBit(benchmark::State& state) {
  const EpsBiasGenerator gen =
      EpsBiasGenerator::from_seed(static_cast<int>(state.range(0)), 3);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.bit(++i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsBiasBit)->Arg(16)->Arg(32)->Arg(48);

void BM_ElkinNeiman(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_gnp(n, 4.0 / n, 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NodeRandomness rnd(Regime::full(), ++seed);
    const EnResult r = elkin_neiman_decomposition(g, rnd);
    benchmark::DoNotOptimize(r.phases_used);
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_ElkinNeiman)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
