// Experiment E3 (Theorem 3.5): network decomposition under limited
// independence, plus the conflict-free multicoloring reduction machinery.
//
// Paper prediction: poly(log n)-wise independent bits reproduce the
// fully-independent Elkin-Neiman quality (colors O(log n), radius O(log n),
// all nodes clustered); in the CF-multicoloring pipeline, k-wise marking
// leaves Theta(log n) marked vertices in every large hyperedge.
//
// Ported to the lab API: both parts are Sweep grids ("decomp/elkin_neiman"
// and the two conflict_free solvers).
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 128 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 5 : 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));
  const int threads = static_cast<int>(args.get_int("threads", 0));

  std::cout << "=== E3: Theorem 3.5 -- poly(log n)-wise independence ===\n\n";

  // Part 1: EN decomposition quality vs independence parameter k.
  const auto side =
      static_cast<NodeId>(std::sqrt(static_cast<double>(scale)));
  lab::SweepSpec en;
  en.graphs = {{"gnp", make_gnp(scale, 4.0 / scale, seed)},
               {"grid", make_grid(side, side)},
               {"cycle", make_cycle(scale)}};
  en.regimes = {
      Regime::full(),
      Regime::kwise(2),
      Regime::kwise(logn),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
  };
  for (int t = 0; t < trials; ++t) {
    en.seeds.push_back(seed + 50 + static_cast<std::uint64_t>(t));
  }
  en.solvers = {"decomp/elkin_neiman"};
  en.threads = threads;
  const lab::SweepResult en_result = sweep(en);
  lab::summary_table(en_result).print(std::cout);

  // Part 2: conflict-free multicoloring with k-wise marking. A small-edge
  // threshold of 2 log n makes the marking step fire at bench scale (the
  // paper's poly(log n) threshold exceeds every edge here).
  std::cout << "\nconflict-free multicoloring (k-wise marking reduction):\n";
  lab::SweepSpec cf;
  cf.graphs = {{"n" + std::to_string(scale), make_path(scale)}};
  cf.regimes = {Regime::full(), Regime::kwise(2 * logn * logn)};
  cf.seeds = {seed + 10};
  cf.solvers = {"conflict_free/kwise"};
  cf.params = {{"edges_per_class", args.quick() ? 8.0 : 24.0},
               {"small_threshold", 2.0 * logn}};
  cf.threads = threads;
  lab::SweepResult cf_result = sweep(cf);
  // The deterministic base case consumes no randomness -- one regime is
  // enough; merge its record into the table.
  lab::SweepSpec det = cf;
  det.regimes = {Regime::full()};
  det.solvers = {"conflict_free/deterministic"};
  const lab::SweepResult det_result = sweep(det);
  cf_result.records.insert(cf_result.records.end(),
                           det_result.records.begin(),
                           det_result.records.end());
  lab::summary_table(cf_result).print(std::cout);
  for (const lab::RunRecord& r : cf_result.records) {
    if (r.solver != "conflict_free/kwise") continue;
    if (!r.error.empty()) {
      std::cout << "  " << r.regime << ": cell error: " << r.error << "\n";
      continue;
    }
    std::cout << "  " << r.regime << ": marked min/max "
              << fmt(r.metrics.at("min_marked"), 0) << "/"
              << fmt(r.metrics.at("max_marked"), 0) << ", empty restrictions "
              << fmt(r.metrics.at("empty_restrictions"), 0) << "\n";
  }
  std::cout << "\npaper: k = Theta(log^2 n)-wise independence matches full "
               "independence; marking leaves Theta(log n) vertices per "
               "large edge.\n";
  return 0;
}
