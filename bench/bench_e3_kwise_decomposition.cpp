// Experiment E3 (Theorem 3.5): network decomposition under limited
// independence, plus the conflict-free multicoloring reduction machinery.
//
// Paper prediction: poly(log n)-wise independent bits reproduce the
// fully-independent Elkin-Neiman quality (colors O(log n), radius O(log n),
// all nodes clustered); in the CF-multicoloring pipeline, k-wise marking
// leaves Theta(log n) marked vertices in every large hyperedge.
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 128 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 5 : 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));

  std::cout << "=== E3: Theorem 3.5 -- poly(log n)-wise independence ===\n\n";

  // Part 1: EN decomposition quality vs independence parameter k.
  Table table({"graph", "regime", "ok/trials", "colors(max)", "diam(max)",
               "max shift", "bits/node"});
  const Graph graphs[] = {make_gnp(scale, 4.0 / scale, seed),
                          make_grid(static_cast<NodeId>(std::sqrt(
                                        static_cast<double>(scale))),
                                    static_cast<NodeId>(std::sqrt(
                                        static_cast<double>(scale)))),
                          make_cycle(scale)};
  const char* names[] = {"gnp", "grid", "cycle"};
  for (int gi = 0; gi < 3; ++gi) {
    const Graph& g = graphs[gi];
    const Regime regimes[] = {
        Regime::full(),
        Regime::kwise(2),
        Regime::kwise(logn),
        Regime::kwise(2 * logn * logn),
        Regime::shared_kwise(64 * 2 * logn * logn),
    };
    for (const Regime& regime : regimes) {
      int ok = 0;
      int max_colors = 0;
      int max_diam = 0;
      int max_shift = 0;
      Summary bits_per_node;
      for (int t = 0; t < trials; ++t) {
        NodeRandomness rnd(regime, seed + 50 + static_cast<std::uint64_t>(t));
        const EnResult r = elkin_neiman_decomposition(g, rnd);
        if (r.all_clustered) {
          const ValidationReport report =
              validate_decomposition(g, r.decomposition);
          if (report.valid) {
            ++ok;
            max_colors = std::max(max_colors, report.colors_used);
            max_diam = std::max(max_diam, report.max_tree_diameter);
          }
        }
        max_shift = std::max(max_shift, r.max_shift);
        bits_per_node.add(static_cast<double>(r.shift_bits) /
                          g.num_nodes());
      }
      table.add_row({names[gi], regime.name(),
                     fmt(ok) + "/" + fmt(trials), fmt(max_colors),
                     fmt(max_diam), fmt(max_shift),
                     fmt(bits_per_node.mean(), 1)});
    }
  }
  table.print(std::cout);

  // Part 2: conflict-free multicoloring with k-wise marking.
  std::cout << "\nconflict-free multicoloring (k-wise marking reduction):\n";
  Table cf({"vertices", "edges", "max |e|", "regime", "valid", "colors",
            "marked min/max", "empty restr."});
  const int cf_n = scale;
  const Hypergraph h = make_classed_hypergraph(
      cf_n, args.quick() ? 8 : 24, ceil_log2(static_cast<std::uint64_t>(
                                       cf_n)),
      seed + 9);
  // A small-edge threshold of 2 log n makes the marking step fire at bench
  // scale (the paper's poly(log n) threshold exceeds every edge here).
  const int small_threshold = 2 * logn;
  for (const Regime& regime :
       {Regime::full(), Regime::kwise(2 * logn * logn)}) {
    NodeRandomness rnd(regime, seed + 10);
    const CfKwiseResult r = cf_multicolor_kwise(h, rnd, small_threshold);
    cf.add_row({fmt(h.num_vertices), fmt(h.edges.size()),
                fmt(h.max_edge_size()), regime.name(),
                r.valid ? "yes" : "NO", fmt(r.coloring.num_colors),
                fmt(r.min_marked) + "/" + fmt(r.max_marked),
                fmt(r.empty_restrictions)});
  }
  const CfDeterministicResult det = cf_multicolor_deterministic(h);
  cf.add_row({fmt(h.num_vertices), fmt(h.edges.size()),
              fmt(h.max_edge_size()), "deterministic base",
              is_conflict_free(h, det.coloring) ? "yes" : "NO",
              fmt(det.coloring.num_colors), "-", "-"});
  cf.print(std::cout);
  std::cout << "\npaper: k = Theta(log^2 n)-wise independence matches full "
               "independence; marking leaves Theta(log n) vertices per "
               "large edge.\n";
  return 0;
}
