// Experiment E1 (Theorem 3.1, Lemmas 3.2/3.3): network decomposition when
// the only randomness is one private bit per beacon, a beacon within h hops
// of every node.
//
// Paper prediction: a valid (O(log n), h * poly(log n)) decomposition with
// congestion 1, built in poly(log n) CONGEST rounds; non-isolated Lemma 3.2
// clusters hold enough beacon bits. The ruling-set separation h' uses a
// bench-scale value (the paper's 10kh exceeds these graph sizes; see
// EXPERIMENTS.md), so gathered-bit shortfalls are *measured* rather than
// assumed away: `dry` counts draws served after a cluster's pool ran out.
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "=== E1: Theorem 3.1 -- one random bit per h hops ===\n\n";
  Table table({"graph", "n", "h", "placement", "#beacons", "hyp", "valid",
               "colors", "diam", "cong", "rounds", "clusters", "min bits",
               "dry"});

  const auto zoo = make_zoo(scale, seed);
  for (const auto& entry : zoo) {
    const Graph& g = entry.graph;
    for (const int h : {2, 4}) {
      // greedy / sparse / random25 stress the hypothesis (few bits per
      // cluster); dense pairs one bit per node with a separation wide
      // enough that Lemma 3.2's bit guarantee holds at this scale.
      for (const char* placement_name :
           {"greedy", "sparse", "random25", "dense"}) {
        const bool dense = placement_name[0] == 'd';
        const BeaconPlacement placement =
            placement_name[0] == 'g'
                ? place_beacons_greedy(g, h)
                : (placement_name[0] == 's'
                       ? place_beacons_sparse(g, h)
                       : place_beacons_random(g, h, dense ? 1.0 : 0.25,
                                              seed + 31));
        PrngBitSource beacon_bits(seed + h);
        OneBitOptions options;
        options.h_prime = dense ? std::max(4 * h + 1, 41) : 4 * h + 1;
        const OneBitResult r =
            one_bit_decomposition(g, placement, beacon_bits, options);
        ValidationReport report;
        if (r.all_clustered) {
          report = validate_decomposition(g, r.decomposition);
        }
        // Lemma 3.2's bit guarantee needs h' = 10kh; the bench-scale h'
        // can leave clusters short of bits ("dry" draws). Such rows run
        // with the theorem's hypothesis unmet, so failures there are the
        // expected behaviour, not a repro gap.
        const bool hypothesis_met = r.exhausted_draws == 0;
        table.add_row({entry.name, fmt(g.num_nodes()), fmt(h),
                       placement_name, fmt(placement.beacons.size()),
                       hypothesis_met ? "met" : "UNMET",
                       report.valid ? "yes" : "NO", fmt(report.colors_used),
                       fmt(report.max_tree_diameter),
                       fmt(report.max_congestion), fmt(r.rounds_charged),
                       fmt(r.num_clusters), fmt(r.min_bits_gathered),
                       fmt(r.exhausted_draws)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\npaper: colors = O(log n), diameter = h * poly(log n), "
               "congestion 1, rounds = poly(log n).\n"
               "hyp = whether each non-isolated cluster held enough beacon "
               "bits (Lemma 3.2's guarantee under the paper's h' = 10kh); "
               "every hyp-met row must be valid, UNMET rows may fail.\n";
  return 0;
}
