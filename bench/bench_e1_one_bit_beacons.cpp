// Experiment E1 (Theorem 3.1, Lemmas 3.2/3.3): network decomposition when
// the only randomness is one private bit per beacon, a beacon within h hops
// of every node.
//
// Paper prediction: a valid (O(log n), h * poly(log n)) decomposition with
// congestion 1, built in poly(log n) CONGEST rounds; non-isolated Lemma 3.2
// clusters hold enough beacon bits. The ruling-set separation h' uses a
// bench-scale value (the paper's 10kh exceeds these graph sizes; see
// EXPERIMENTS.md), so gathered-bit shortfalls are *measured* rather than
// assumed away: `dry` counts draws served after a cluster's pool ran out.
//
// Ported to the lab API: the zoo x seed grid rides one run_sweep call whose
// variant axis carries the (h, placement) stress matrix; this binary only
// formats the records.
#include <algorithm>
#include <iostream>

#include "core/api.hpp"
#include "decomp/beacons.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "=== E1: Theorem 3.1 -- one random bit per h hops ===\n\n";

  lab::SweepSpec spec;
  spec.graphs = make_zoo(scale, seed);
  spec.regimes = {Regime::full()};
  spec.seeds = {seed};
  spec.solvers = {"decomp/one_bit"};
  for (const int h : {2, 4}) {
    // greedy / sparse / random25 stress the hypothesis (few bits per
    // cluster); dense pairs one bit per node with a separation wide enough
    // that Lemma 3.2's bit guarantee holds at this scale.
    spec.variants.push_back(
        {"h" + std::to_string(h) + "/greedy",
         {{"h", static_cast<double>(h)},
          {"placement", 0},
          {"h_prime", static_cast<double>(4 * h + 1)}}});
    spec.variants.push_back(
        {"h" + std::to_string(h) + "/sparse",
         {{"h", static_cast<double>(h)},
          {"placement", 1},
          {"h_prime", static_cast<double>(4 * h + 1)}}});
    spec.variants.push_back(
        {"h" + std::to_string(h) + "/random25",
         {{"h", static_cast<double>(h)},
          {"placement", 2},
          {"density", 0.25},
          {"h_prime", static_cast<double>(4 * h + 1)}}});
    spec.variants.push_back(
        {"h" + std::to_string(h) + "/clustered",
         {{"h", static_cast<double>(h)},
          {"placement",
           static_cast<double>(beacon_placement_id("adversarial_clustered"))},
          {"h_prime", static_cast<double>(4 * h + 1)}}});
    spec.variants.push_back(
        {"h" + std::to_string(h) + "/dense",
         {{"h", static_cast<double>(h)},
          {"placement", 2},
          {"density", 1.0},
          {"h_prime", static_cast<double>(std::max(4 * h + 1, 41))}}});
  }
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  Table table({"graph", "variant", "#beacons", "hyp", "valid", "colors",
               "diam", "cong", "rounds", "clusters", "min bits", "dry"});
  for (const lab::RunRecord& r : result.records) {
    // Lemma 3.2's bit guarantee needs h' = 10kh; the bench-scale h' can
    // leave clusters short of bits ("dry" draws). Such rows run with the
    // theorem's hypothesis unmet, so failures there are the expected
    // behaviour, not a repro gap.
    table.add_row({r.graph, r.variant, fmt(r.metric_or("beacons", 0), 0),
                   r.metric_or("hypothesis_met", 0) > 0 ? "met" : "UNMET",
                   r.checker_passed ? "yes" : "NO", fmt(r.colors),
                   fmt(r.diameter), fmt(r.metric_or("max_congestion", 0), 0),
                   fmt(r.rounds), fmt(r.metric_or("num_clusters", 0), 0),
                   fmt(r.metric_or("min_bits_gathered", 0), 0),
                   fmt(r.metric_or("exhausted_draws", 0), 0)});
  }
  table.print(std::cout);
  // Failures among hypothesis-UNMET stress rows are the expected behaviour
  // (the bench's whole point); only hyp-met failures indicate a repro gap.
  int unexpected_failures = 0;
  for (const lab::RunRecord& r : result.records) {
    if (!r.checker_passed && r.metric_or("hypothesis_met", 0) > 0) {
      ++unexpected_failures;
    }
  }
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_failed - unexpected_failures
            << " expected UNMET-row failures, " << unexpected_failures
            << " unexpected (hyp-met) failures, on "
            << result.threads_used << " thread(s) in "
            << fmt(result.wall_ms, 1) << " ms\n";
  std::cout << "\npaper: colors = O(log n), diameter = h * poly(log n), "
               "congestion 1, rounds = poly(log n).\n"
               "hyp = whether each non-isolated cluster held enough beacon "
               "bits (Lemma 3.2's guarantee under the paper's h' = 10kh); "
               "every hyp-met row must be valid, UNMET rows may fail.\n";
  return unexpected_failures == 0 ? 0 : 1;
}
