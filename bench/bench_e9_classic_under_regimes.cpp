// Experiment E9 (baseline comparison, Sections 1/3): Luby MIS and
// (Delta+1)-coloring under all randomness regimes -- the paper's framing
// that scarce randomness leaves the classic algorithms intact.
//
// Paper prediction: iteration counts and success rates are essentially
// identical under full independence, poly(log n)-wise independence, and
// poly(log n) shared bits; adversarial constant "randomness" breaks the
// algorithms (failure injection sanity check).
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 128 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 5 : 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));

  std::cout << "=== E9: classic algorithms under scarce randomness ===\n\n";
  Table table({"graph", "regime", "MIS ok", "MIS iters(avg)",
               "coloring ok", "coloring iters(avg)"});
  const auto zoo = make_zoo(scale, seed);
  const Regime regimes[] = {
      Regime::full(),
      Regime::kwise(logn),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
  };
  for (const auto& entry : zoo) {
    if (entry.name != "gnp_sparse" && entry.name != "grid" &&
        entry.name != "random_4regular" && entry.name != "ring_of_cliques") {
      continue;
    }
    const Graph& g = entry.graph;
    for (const Regime& regime : regimes) {
      int mis_ok = 0;
      int col_ok = 0;
      Summary mis_iters;
      Summary col_iters;
      for (int t = 0; t < trials; ++t) {
        NodeRandomness rnd(regime,
                           seed + 100 + static_cast<std::uint64_t>(t));
        const LubyMisResult mis = reference_luby_mis(g, rnd);
        if (mis.success && is_maximal_independent_set(g, mis.in_mis)) {
          ++mis_ok;
        }
        mis_iters.add(mis.iterations);
        NodeRandomness rnd2(regime,
                            seed + 500 + static_cast<std::uint64_t>(t));
        const ColoringResult col = random_coloring(g, rnd2);
        if (col.success &&
            is_valid_coloring(g, col.color, g.max_degree() + 1)) {
          ++col_ok;
        }
        col_iters.add(col.iterations);
      }
      table.add_row({entry.name, regime.name(),
                     fmt(mis_ok) + "/" + fmt(trials),
                     fmt(mis_iters.mean(), 1),
                     fmt(col_ok) + "/" + fmt(trials),
                     fmt(col_iters.mean(), 1)});
    }
  }
  table.print(std::cout);

  // Failure injection: constant "randomness" must not silently pass.
  {
    const Graph g = make_complete(16);
    NodeRandomness rnd(Regime::all_zeros(), seed);
    const LubyMisResult mis = reference_luby_mis(g, rnd, 4);
    std::cout << "\nfailure injection (all-zero bits, K16, 4 iters): "
              << (mis.success ? "MIS completed via id tie-breaks"
                              : "MIS incomplete")
              << " -- ties fall back to identifiers, so Luby degrades to "
                 "the sequential greedy order instead of failing.\n";
  }
  std::cout << "paper: scarce-randomness columns match the full column; "
               "O(log n) iterations throughout.\n";
  return 0;
}
