// Experiment E9 (baseline comparison, Sections 1/3): Luby MIS and
// (Delta+1)-coloring under all randomness regimes -- the paper's framing
// that scarce randomness leaves the classic algorithms intact.
//
// Paper prediction: iteration counts and success rates are essentially
// identical under full independence, poly(log n)-wise independence, and
// poly(log n) shared bits; adversarial constant "randomness" breaks the
// algorithms (failure injection sanity check).
//
// Ported to the lab API: the regime x graph x seed grid is one Sweep call;
// the failure injection forces an unsupported cell through the registry.
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 128 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 5 : 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));

  std::cout << "=== E9: classic algorithms under scarce randomness ===\n\n";
  lab::SweepSpec spec;
  for (auto& entry : make_zoo(scale, seed)) {
    if (entry.name == "gnp_sparse" || entry.name == "grid" ||
        entry.name == "random_4regular" || entry.name == "ring_of_cliques") {
      spec.graphs.push_back(std::move(entry));
    }
  }
  spec.regimes = {
      Regime::full(),
      Regime::kwise(logn),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
  };
  for (int t = 0; t < trials; ++t) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(t));
  }
  spec.solvers = {"mis/luby", "mis/greedy", "coloring/random_trial"};
  spec.threads = static_cast<int>(args.get_int("threads", 0));

  const lab::SweepResult result = sweep(spec);
  lab::summary_table(result).print(std::cout);
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_failed << " failed, on "
            << result.threads_used << " thread(s) in "
            << fmt(result.wall_ms, 1) << " ms\n";

  // Failure injection: constant "randomness" must not silently pass. The
  // all-zeros regime is outside mis/luby's supported set, so a sweep would
  // skip it; run_cell forces the cell.
  const Graph k16 = make_complete(16);
  const lab::RunRecord broken = registry().run_cell(
      "mis/luby", k16, "K16", Regime::all_zeros(), seed,
      {{"max_iterations", 4}});
  std::cout << "\nfailure injection (all-zero bits, K16, 4 iters): "
            << (broken.success ? "MIS completed via id tie-breaks"
                               : "MIS incomplete")
            << " -- ties fall back to identifiers, so Luby degrades to "
               "the sequential greedy order instead of failing.\n";
  std::cout << "paper: scarce-randomness columns match the full column; "
               "O(log n) iterations throughout.\n";
  return 0;
}
