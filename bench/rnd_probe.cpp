// Backend probe for the randomness dispatch plane (docs/randomness.md).
//
//   rnd_probe            print compiled/available/active for every backend
//   rnd_probe <backend>  exit 0 if <backend> is available on this
//                        binary+CPU, 1 if not, 2 for an unknown name
//
// CI uses the query form to decide whether a forced-SIMD ctest leg can run
// on the current machine ("skip gracefully when the CPU lacks it") instead
// of letting RLOCAL_RND_BACKEND=pclmul fail every test on older hardware.
#include <cstring>
#include <iostream>

#include "rnd/dispatch.hpp"

int main(int argc, char** argv) {
  using rlocal::rnd::Backend;
  if (argc > 2 || (argc == 2 && std::strcmp(argv[1], "--help") == 0)) {
    std::cerr << "usage: rnd_probe [backend]\n";
    return 2;
  }
  if (argc == 2) {
    const auto backend = rlocal::rnd::parse_backend_name(argv[1]);
    if (!backend.has_value()) {
      std::cerr << "unknown backend '" << argv[1]
                << "' (expected portable or pclmul)\n";
      return 2;
    }
    return rlocal::rnd::backend_available(*backend) ? 0 : 1;
  }
  for (const Backend backend : {Backend::kPortable, Backend::kPclmul}) {
    std::cout << rlocal::rnd::backend_name(backend)
              << " compiled=" << rlocal::rnd::backend_compiled(backend)
              << " available=" << rlocal::rnd::backend_available(backend)
              << "\n";
  }
  std::cout << "active=" << rlocal::rnd::backend_name(
                                rlocal::rnd::active_backend())
            << "\n";
  return 0;
}
