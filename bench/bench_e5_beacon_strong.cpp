// Experiment E5 (Theorem 3.7): beacons as in E1, but running the
// Theorem 3.6 construction on per-cluster gathered seeds.
//
// Paper prediction: strong-diameter (O(log n), O(log^2 n)) decomposition --
// the h factor of Theorem 3.1 disappears from the diameter; only the round
// count pays for the gathering.
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::cout << "=== E5: Theorem 3.7 -- strong diameter from beacons ===\n\n";
  Table table({"graph", "n", "h", "hyp", "valid", "colors", "diam(3.7)",
               "diam(3.1)", "strong", "rounds", "short pools"});
  const auto zoo = make_zoo(scale, seed);
  for (const auto& entry : zoo) {
    const Graph& g = entry.graph;
    for (const int h : {2, 4}) {
      // Dense-but-single-bit beacons: every second node carries one random
      // bit; a larger separation deepens each cluster's seed pool.
      const BeaconPlacement placement =
          place_beacons_random(g, h, 0.5, seed + h);
      OneBitOptions options;
      options.h_prime = 8 * h + 1;

      PrngBitSource bits_strong(seed + h);
      const OneBitResult strong =
          one_bit_strong_decomposition(g, placement, bits_strong, options);
      ValidationReport strong_report;
      if (strong.all_clustered) {
        strong_report = validate_decomposition(g, strong.decomposition);
      }

      PrngBitSource bits_weak(seed + h);
      const OneBitResult weak =
          one_bit_decomposition(g, placement, bits_weak, options);
      ValidationReport weak_report;
      if (weak.all_clustered) {
        weak_report = validate_decomposition(g, weak.decomposition);
      }

      table.add_row(
          {entry.name, fmt(g.num_nodes()), fmt(h),
           strong.exhausted_draws == 0 ? "met" : "UNMET",
           strong.all_clustered && strong_report.valid ? "yes" : "NO",
           fmt(strong_report.colors_used),
           fmt(strong_report.max_tree_diameter),
           fmt(weak_report.max_tree_diameter),
           strong_report.strong_diameter ? "yes" : "no",
           fmt(strong.rounds_charged), fmt(strong.exhausted_draws)});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper: Theorem 3.7's diameter is O(log^2 n) with no h "
               "factor (compare the two diameter columns as h grows).\n"
               "hyp = every cluster gathered >= 64 bits (short pools run "
               "on pseudo-randomly stretched seeds; see DESIGN.md).\n";
  return 0;
}
