// Experiment E5 (Theorem 3.7): beacons as in E1, but running the
// Theorem 3.6 construction on per-cluster gathered seeds.
//
// Paper prediction: strong-diameter (O(log n), O(log^2 n)) decomposition --
// the h factor of Theorem 3.1 disappears from the diameter; only the round
// count pays for the gathering.
//
// Ported to the lab API: both pipelines sweep the same zoo x (h variant)
// grid in one run_sweep call; the diameter comparison pairs their records.
#include <iostream>
#include <map>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::cout << "=== E5: Theorem 3.7 -- strong diameter from beacons ===\n\n";

  lab::SweepSpec spec;
  spec.graphs = make_zoo(scale, seed);
  spec.regimes = {Regime::full()};
  spec.seeds = {seed};
  spec.solvers = {"decomp/one_bit_strong", "decomp/one_bit"};
  for (const int h : {2, 4}) {
    // Dense-but-single-bit beacons: every second node carries one random
    // bit; a larger separation deepens each cluster's seed pool.
    spec.variants.push_back(
        {"h" + std::to_string(h),
         {{"h", static_cast<double>(h)},
          {"placement", 2},
          {"density", 0.5},
          {"h_prime", static_cast<double>(8 * h + 1)}}});
  }
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  // Pair the weak (Thm 3.1) diameter with the strong (Thm 3.7) rows.
  std::map<std::pair<std::string, std::string>, int> weak_diameter;
  for (const lab::RunRecord& r : result.records) {
    if (r.solver == "decomp/one_bit") {
      weak_diameter[{r.graph, r.variant}] = r.diameter;
    }
  }
  Table table({"graph", "variant", "hyp", "valid", "colors", "diam(3.7)",
               "diam(3.1)", "strong", "rounds", "short pools"});
  for (const lab::RunRecord& r : result.records) {
    if (r.solver != "decomp/one_bit_strong") continue;
    table.add_row({r.graph, r.variant,
                   r.metric_or("hypothesis_met", 0) > 0 ? "met" : "UNMET",
                   r.success && r.checker_passed ? "yes" : "NO",
                   fmt(r.colors), fmt(r.diameter),
                   fmt(weak_diameter[{r.graph, r.variant}]),
                   r.metric_or("strong_diameter", 0) > 0 ? "yes" : "no",
                   fmt(r.rounds), fmt(r.metric_or("exhausted_draws", 0), 0)});
  }
  table.print(std::cout);
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_failed << " failed, on "
            << result.threads_used << " thread(s) in "
            << fmt(result.wall_ms, 1) << " ms\n";
  std::cout << "\npaper: Theorem 3.7's diameter is O(log^2 n) with no h "
               "factor (compare the two diameter columns as h grows).\n"
               "hyp = every cluster gathered >= 64 bits (short pools run "
               "on pseudo-randomly stretched seeds; see DESIGN.md).\n";
  return 0;
}
