#!/usr/bin/env python3
"""Regression gate and record-set diff over sweep artifacts.

Both positional inputs may be either

  * a sweep store directory (``manifest.json`` + ``shard-*.jsonl``, schema
    ``rlocal.store/1`` or ``/2`` -- see docs/store_format.md), or
  * a whole-run JSON artifact (schema ``rlocal.sweep/1`` .. ``/3``),

so the gate survives schema migrations: the previous CI artifact may still
be an older format while the current run uploads a ``/2`` store.

Gate mode (default):

  * compares per-solver wall time between a baseline sweep and the current
    one, normalized per cell, failing when any solver regresses by more
    than ``--max-ratio``. Records restored by a resume (``"resumed":
    true``) carry another process's wall time and are excluded from the
    wall-time aggregates, as are skipped cells;
  * compares per-solver *message counts* from the records' cost blocks the
    same way (messages are deterministic, so resumed records count) --
    a >``--max-ratio`` blow-up in communication fails like a slowdown;
  * validates that every non-skipped record of a cost-capable CURRENT
    artifact (store ``/2`` or sweep ``/3``) carries a populated cost block
    (``cost.model`` present). Missing blocks fail the gate.

Diff mode (``--diff``) compares two record sets field-by-field with the
legitimately nondeterministic parts excluded: wall time always, and the
partial cost block of ``error="deadline"`` records (how far a cell got
before expiry is wall-clock-dependent) -- the CI resume smoke test's
"kill + resume == uninterrupted run" check.

Agg mode (``--agg``) recomputes the per-(solver, regime, variant) x metric
aggregates of a store directory from scratch and compares them against an
``/agg`` JSONL response saved from the rlocald query daemon
(docs/service.md): counts and the order-statistic fields (min/p50/p90/max
-- raw stored values, round-tripped exactly via ``%.17g``) must match
exactly; sum and mean tolerate 1e-9 relative error. The daemon's
incremental index is thereby pinned to the ground truth on disk.

Profile mode (``--profile``) compares two ``bench_sweep --profile``
artifacts (schema ``rlocal.profile/1`` or ``/2``) per (solver, regime) on
ms-per-cell, gated by the same ``--max-ratio``. When the current artifact
is ``/2`` the per-phase attribution sums (engine / draw / checker / graph
build / store append; see docs/perf.md) are printed alongside each
regression so a slowdown arrives pre-attributed; a ``/1`` input on either
side degrades gracefully to the total-time comparison.

Usage:
    compare_sweep.py BASELINE CURRENT [--max-ratio 2.0] [--min-ms 5.0]
                     [--min-msgs 100]
    compare_sweep.py --diff A B
    compare_sweep.py --agg STORE AGG_JSONL
    compare_sweep.py --profile BASE_PROFILE CURR_PROFILE

Exit codes: 0 ok (including "no baseline available" in gate mode),
1 regression / record mismatch / aggregate mismatch / missing cost block,
2 malformed input.
"""

import argparse
import json
import math
import os
import sys

LEGACY_SCHEMAS = ("rlocal.sweep/1", "rlocal.sweep/2", "rlocal.sweep/3")
STORE_SCHEMAS = ("rlocal.store/1", "rlocal.store/2", "rlocal.store/3")
# Formats whose records carry typed cost blocks on every executed cell.
COST_CAPABLE_SCHEMAS = ("rlocal.store/2", "rlocal.store/3", "rlocal.sweep/3")
# Nondeterministic / provenance fields excluded from record identity.
VOLATILE_FIELDS = ("wall_ms", "resumed")
# Store-only coordinates, excluded so a store directory diffs cleanly
# against a legacy whole-run artifact of the same sweep; record order pins
# grid position in both formats (stores merge sorted by cell_index).
POSITION_FIELDS = ("cell_index", "cell_seed")


def load_store_artifact(path):
    """(schema, records) from a store directory, merged into grid order.

    Mirrors the C++ reader's tolerance rule: undecodable lines are allowed
    only as a shard's tail (a torn final frame); a valid frame after an
    invalid line is corruption.
    """
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("schema") not in STORE_SCHEMAS:
        raise ValueError(
            f"{manifest_path}: unknown schema {manifest.get('schema')!r}")
    merged = {}
    for name in sorted(os.listdir(path)):
        if not (name.startswith("shard-") and name.endswith(".jsonl")):
            continue
        shard = os.path.join(path, name)
        torn = False
        with open(shard, "rb") as fh:
            data = fh.read()
        for line in data.split(b"\n"):
            if not line:
                continue
            try:
                frame = json.loads(line.decode("utf-8"))
                if "cell_index" not in frame:
                    raise ValueError("frame without cell_index")
            except (ValueError, UnicodeDecodeError):
                torn = True
                continue
            if torn:
                raise ValueError(f"{shard}: valid frame after a corrupt one")
            merged[frame["cell_index"]] = frame
    return manifest["schema"], [merged[index] for index in sorted(merged)]


def load_legacy_artifact(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") not in LEGACY_SCHEMAS:
        raise ValueError(f"{path}: unknown schema {data.get('schema')!r}")
    return data["schema"], data.get("records", [])


def load_artifact(path):
    """(schema, records) from a store directory or whole-run artifact,
    auto-detected; each artifact is parsed exactly once."""
    if os.path.isdir(path):
        return load_store_artifact(path)
    return load_legacy_artifact(path)


def load_records(path):
    return load_artifact(path)[1]


def per_solver_wall_ms(records):
    """Total wall_ms per solver over all non-skipped, non-resumed records."""
    totals = {}
    counts = {}
    for record in records:
        if record.get("skipped") or record.get("resumed"):
            continue
        solver = record["solver"]
        totals[solver] = totals.get(solver, 0.0) + float(
            record.get("wall_ms", 0.0))
        counts[solver] = counts.get(solver, 0) + 1
    return totals, counts


def per_solver_messages(records):
    """Total cost-block messages per solver over records that metered them.

    Messages are deterministic (engine-metered or explicitly charged), so
    resumed records count; records without a measured message total (e.g.
    reference-executed solvers) are excluded rather than read as zero.
    """
    totals = {}
    counts = {}
    for record in records:
        if record.get("skipped"):
            continue
        messages = record.get("cost", {}).get("messages")
        if messages is None:
            continue
        solver = record["solver"]
        totals[solver] = totals.get(solver, 0) + int(messages)
        counts[solver] = counts.get(solver, 0) + 1
    return totals, counts


def validate_cost_blocks(path, schema, records):
    """Every non-skipped record of a cost-capable artifact must carry a
    populated cost block; returns the number of offending records (0 for
    artifacts predating the cost schema, which cannot carry blocks)."""
    if schema not in COST_CAPABLE_SCHEMAS:
        print(f"{path}: pre-cost schema; cost-block validation skipped")
        return 0
    missing = 0
    for record in records:
        if record.get("skipped"):
            continue
        if not record.get("cost", {}).get("model"):
            missing += 1
            if missing <= 3:
                print(f"  record without a cost block: "
                      f"{record.get('solver')}/{record.get('graph')}/"
                      f"{record.get('regime')} seed {record.get('seed')}",
                      file=sys.stderr)
    return missing


def canonical(record):
    """Record identity for diff mode: every field except the volatile and
    store-coordinate ones, so both artifact formats compare equal.

    A deadline record's cost block is the *partial* cost observed up to
    expiry -- a wall-clock-dependent quantity, like wall_ms -- so it is
    excluded from identity for error="deadline" records (resume restores
    such records instead of re-running them, so stores stay internally
    consistent either way)."""
    excluded = VOLATILE_FIELDS + POSITION_FIELDS
    if record.get("error") == "deadline":
        excluded = excluded + ("cost",)
    return json.dumps(
        {k: v for k, v in record.items() if k not in excluded},
        sort_keys=True)


def run_diff(a_path, b_path):
    a = [canonical(r) for r in load_records(a_path)]
    b = [canonical(r) for r in load_records(b_path)]
    if a == b:
        print(f"OK: {len(a)} records identical (wall time excluded)")
        return 0
    print(f"MISMATCH: {a_path} has {len(a)} records, {b_path} has {len(b)}",
          file=sys.stderr)
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    for label, items in ((f"only in {a_path}", only_a),
                         (f"only in {b_path}", only_b)):
        for item in items[:3]:
            print(f"  {label}: {item[:200]}", file=sys.stderr)
    if not only_a and not only_b:
        print("  same record sets in a different order", file=sys.stderr)
    return 1


# Metric order must match the daemon's agg_metrics() (src/service/).
# "quality" exists only on fault-injected cells (rlocal.store/3).
AGG_METRICS = ("rounds", "messages", "total_bits", "wall_ms", "quality")


def nearest_rank(sorted_values, q):
    """Same definition as the daemon: sorted[clamp(ceil(q*n) - 1)]."""
    rank = math.ceil(q * len(sorted_values)) - 1
    return sorted_values[max(0, min(rank, len(sorted_values) - 1))]


def recompute_agg(records):
    """From-scratch ground truth for the daemon's /agg rows: non-skipped
    records only, a metric observed iff its JSON key is present (the
    encoder omits unmeasured negatives), values summed in sorted order so
    float accumulation matches the C++ bit for bit."""
    groups = {}
    for record in records:
        if record.get("skipped"):
            continue
        cost = record.get("cost", {})
        observed = {
            "rounds": cost.get("rounds"),
            "messages": cost.get("messages"),
            "total_bits": cost.get("total_bits"),
            "wall_ms": record.get("wall_ms"),
            "quality": record.get("quality"),
        }
        key = (record["solver"], record["regime"],
               record.get("variant", ""))
        metrics = groups.setdefault(key, {})
        for metric, value in observed.items():
            if value is None:
                continue
            metrics.setdefault(metric, []).append(float(value))
    rows = {}
    for key, metrics in groups.items():
        for metric in AGG_METRICS:
            values = sorted(metrics.get(metric, ()))
            if not values:
                continue
            total = 0.0
            for value in values:
                total += value
            rows[key + (metric,)] = {
                "count": len(values),
                "sum": total,
                "mean": total / len(values),
                "min": values[0],
                "p50": nearest_rank(values, 0.5),
                "p90": nearest_rank(values, 0.9),
                "max": values[-1],
            }
    return rows


def load_agg_jsonl(path, fingerprint):
    """Parses a saved /agg response, keeping rows for `fingerprint`."""
    rows = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("store") != fingerprint:
                continue
            key = (row["solver"], row["regime"], row.get("variant", ""),
                   row["metric"])
            rows[key] = row
    return rows


def run_agg(store_path, agg_path):
    manifest_path = os.path.join(store_path, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        fingerprint = json.load(fh)["fingerprint"]
    expected = recompute_agg(load_records(store_path))
    served = load_agg_jsonl(agg_path, fingerprint)

    failures = 0
    for key in sorted(set(expected) | set(served)):
        label = "/".join(key[:3]) + " " + key[3]
        if key not in served:
            print(f"  missing from daemon output: {label}", file=sys.stderr)
            failures += 1
            continue
        if key not in expected:
            print(f"  not in the store: {label}", file=sys.stderr)
            failures += 1
            continue
        want, got = expected[key], served[key]
        for field in ("count", "min", "p50", "p90", "max"):
            if float(got[field]) != float(want[field]):
                print(f"  {label} {field}: daemon {got[field]} != "
                      f"store {want[field]}", file=sys.stderr)
                failures += 1
        for field in ("sum", "mean"):
            reference = abs(want[field])
            if abs(float(got[field]) - want[field]) > 1e-9 * max(
                    1.0, reference):
                print(f"  {label} {field}: daemon {got[field]} != "
                      f"store {want[field]}", file=sys.stderr)
                failures += 1
    if failures:
        print(f"FAIL: {failures} aggregate mismatch(es) between "
              f"{agg_path} and {store_path}", file=sys.stderr)
        return 1
    print(f"OK: {len(expected)} aggregate rows match the store exactly")
    return 0


PROFILE_SCHEMAS = ("rlocal.profile/1", "rlocal.profile/2")
# /2 per-row phase attribution sums, in display order (docs/perf.md).
PROFILE_PHASES = ("engine_ms", "draw_ms", "checker_ms", "graph_build_ms",
                  "store_append_ms")


def load_profile(path):
    """(schema, {(solver, regime): row}) from a bench_sweep --profile JSON.

    ``/1`` rows simply lack the phase fields; readers treat absent phases
    as unattributed time rather than failing, so a /2 reader accepts both.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema not in PROFILE_SCHEMAS:
        raise ValueError(f"{path}: unknown schema {schema!r}")
    rows = {}
    for row in data.get("rows", []):
        rows[(row["solver"], row["regime"])] = row
    return schema, rows


def phase_summary(row):
    """One-line phase attribution of a /2 row ("" for /1 rows)."""
    parts = []
    for phase in PROFILE_PHASES:
        value = row.get(phase)
        if value is None or value <= 0.0:
            continue
        parts.append(f"{phase[:-3]} {value:.1f}ms")
    return "; ".join(parts)


def run_profile(base_path, curr_path, max_ratio, min_ms):
    curr_schema, curr = load_profile(curr_path)
    print(f"current profile: {curr_path} ({curr_schema}, "
          f"{len(curr)} rows)")
    if not os.path.exists(base_path):
        print(f"no baseline at {base_path}; first run passes trivially")
        return 0
    base_schema, base = load_profile(base_path)
    print(f"baseline profile: {base_path} ({base_schema}, "
          f"{len(base)} rows)")

    regressions = []
    width = max((len("/".join(k)) for k in curr), default=12)
    print(f"{'solver/regime':<{width}}  {'base ms/cell':>12}  "
          f"{'curr ms/cell':>12}  {'ratio':>6}")
    for key in sorted(curr):
        row = curr[key]
        label = "/".join(key)
        if key not in base:
            print(f"{label:<{width}}  {'new':>12}  "
                  f"{row['ms_per_cell']:>12.2f}  {'-':>6}")
            continue
        base_per = base[key]["ms_per_cell"]
        curr_per = row["ms_per_cell"]
        ratio = curr_per / base_per if base_per > 0 else float("inf")
        flag = ""
        if row["total_ms"] >= min_ms and base[key]["total_ms"] >= min_ms \
                and ratio > max_ratio:
            regressions.append((label, ratio, phase_summary(row)))
            flag = "  << REGRESSION"
        print(f"{label:<{width}}  {base_per:>12.2f}  {curr_per:>12.2f}  "
              f"{ratio:>6.2f}{flag}")
    if regressions:
        for label, ratio, phases in regressions:
            attribution = f" [{phases}]" if phases else ""
            print(f"FAIL: {label} ms/cell regressed {ratio:.2f}x"
                  f"{attribution}", file=sys.stderr)
        return 1
    print(f"OK: no (solver, regime) cell regressed beyond {max_ratio}x")
    return 0


def gate_ratios(metric, unit, base, base_counts, curr, curr_counts,
                min_total, max_ratio):
    """Prints the per-solver comparison table for one metric and returns
    the list of (solver, ratio) regressions beyond max_ratio. Totals are
    normalized per cell so a grown grid is not read as a regression; totals
    below min_total on either side are noise-floored."""
    regressions = []
    width = max((len(s) for s in curr), default=10)
    print(f"[{metric}]")
    print(f"{'solver':<{width}}  {'base ' + unit:>12}  "
          f"{'curr ' + unit:>12}  {'ratio':>6}")
    for solver in sorted(curr):
        curr_total = curr[solver]
        if solver not in base:
            print(f"{solver:<{width}}  {'new':>12}  {curr_total:>12.1f}  "
                  f"{'-':>6}")
            continue
        base_total = base[solver]
        base_per = base_total / max(1, base_counts[solver])
        curr_per = curr_total / max(1, curr_counts[solver])
        ratio = curr_per / base_per if base_per > 0 else float("inf")
        flag = ""
        if curr_total >= min_total and base_total >= min_total \
                and ratio > max_ratio:
            regressions.append((solver, ratio))
            flag = "  << REGRESSION"
        print(f"{solver:<{width}}  {base_total:>12.1f}  "
              f"{curr_total:>12.1f}  {ratio:>6.2f}{flag}")
    print()
    return regressions


def run_gate(args):
    try:
        curr_schema, curr_records = load_artifact(args.current)
        missing = validate_cost_blocks(args.current, curr_schema,
                                       curr_records)
    except (ValueError, KeyError, OSError, json.JSONDecodeError) as error:
        print(f"malformed sweep artifact: {error}", file=sys.stderr)
        return 2
    if missing:
        print(f"FAIL: {missing} non-skipped record(s) without a populated "
              f"cost block in {args.current}", file=sys.stderr)
        return 1

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; first run passes trivially")
        return 0

    try:
        base_records = load_records(args.baseline)
        wall_regressions = gate_ratios(
            "wall time", "ms", *per_solver_wall_ms(base_records),
            *per_solver_wall_ms(curr_records), args.min_ms, args.max_ratio)
        msg_regressions = gate_ratios(
            "messages", "msgs", *per_solver_messages(base_records),
            *per_solver_messages(curr_records), args.min_msgs,
            args.max_ratio)
    except (ValueError, KeyError, OSError, json.JSONDecodeError) as error:
        print(f"malformed sweep artifact: {error}", file=sys.stderr)
        return 2

    failed = False
    for metric, regressions in (("wall-time", wall_regressions),
                                ("message-count", msg_regressions)):
        if regressions:
            names = ", ".join(f"{s} ({r:.2f}x)" for s, r in regressions)
            print(f"FAIL: {metric} regression > {args.max_ratio}x in: "
                  f"{names}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print(f"OK: no solver regressed beyond {args.max_ratio}x "
          f"(wall time or messages)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline",
                        help="store directory or legacy sweep JSON")
    parser.add_argument("current",
                        help="store directory or legacy sweep JSON")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="ignore solvers below this wall-time total "
                             "(noise floor)")
    parser.add_argument("--min-msgs", type=int, default=100,
                        help="ignore solvers below this message total "
                             "(noise floor)")
    parser.add_argument("--diff", action="store_true",
                        help="compare record sets byte-for-byte "
                             "(wall time excluded) instead of gating")
    parser.add_argument("--agg", action="store_true",
                        help="treat BASELINE as a store directory and "
                             "CURRENT as a saved rlocald /agg JSONL "
                             "response; verify the aggregates match")
    parser.add_argument("--profile", action="store_true",
                        help="treat both inputs as bench_sweep --profile "
                             "JSONs (rlocal.profile/1 or /2) and gate "
                             "ms-per-cell per (solver, regime)")
    args = parser.parse_args()

    if sum((args.diff, args.agg, args.profile)) > 1:
        print("--diff, --agg and --profile are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        if args.diff:
            return run_diff(args.baseline, args.current)
        if args.agg:
            return run_agg(args.baseline, args.current)
        if args.profile:
            return run_profile(args.baseline, args.current,
                               args.max_ratio, args.min_ms)
    except (ValueError, KeyError, OSError, json.JSONDecodeError) as error:
        print(f"malformed sweep artifact: {error}", file=sys.stderr)
        return 2
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
