#!/usr/bin/env python3
"""Regression gate over BENCH_sweep.json artifacts.

Compares per-solver wall time between a baseline sweep (the previous CI
run's artifact) and the current one, and fails when any solver regresses by
more than --max-ratio. Pure stdlib; schema rlocal.sweep/1.

Usage:
    compare_sweep.py BASELINE CURRENT [--max-ratio 2.0] [--min-ms 5.0]

Exit codes: 0 ok (including "no baseline available"), 1 regression,
2 malformed input.
"""

import argparse
import json
import os
import sys


def per_solver_wall_ms(path):
    """Total wall_ms per solver over all non-skipped records."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != "rlocal.sweep/1":
        raise ValueError(f"{path}: unknown schema {data.get('schema')!r}")
    totals = {}
    counts = {}
    for record in data.get("records", []):
        if record.get("skipped"):
            continue
        solver = record["solver"]
        totals[solver] = totals.get(solver, 0.0) + float(
            record.get("wall_ms", 0.0))
        counts[solver] = counts.get(solver, 0) + 1
    return totals, counts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="ignore solvers below this total (noise floor)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; first run passes trivially")
        return 0

    try:
        base, base_counts = per_solver_wall_ms(args.baseline)
        curr, curr_counts = per_solver_wall_ms(args.current)
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        print(f"malformed sweep artifact: {error}", file=sys.stderr)
        return 2

    regressions = []
    width = max((len(s) for s in curr), default=10)
    print(f"{'solver':<{width}}  {'base ms':>10}  {'curr ms':>10}  "
          f"{'ratio':>6}")
    for solver in sorted(curr):
        curr_ms = curr[solver]
        if solver not in base:
            print(f"{solver:<{width}}  {'new':>10}  {curr_ms:>10.1f}  "
                  f"{'-':>6}")
            continue
        base_ms = base[solver]
        # Normalize by cell count so a grown grid is not read as a slowdown.
        base_per = base_ms / max(1, base_counts[solver])
        curr_per = curr_ms / max(1, curr_counts[solver])
        ratio = curr_per / base_per if base_per > 0 else float("inf")
        flag = ""
        if curr_ms >= args.min_ms and base_ms >= args.min_ms \
                and ratio > args.max_ratio:
            regressions.append((solver, ratio))
            flag = "  << REGRESSION"
        print(f"{solver:<{width}}  {base_ms:>10.1f}  {curr_ms:>10.1f}  "
              f"{ratio:>6.2f}{flag}")

    if regressions:
        names = ", ".join(f"{s} ({r:.2f}x)" for s, r in regressions)
        print(f"\nFAIL: wall-time regression > {args.max_ratio}x in: {names}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no solver regressed beyond {args.max_ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
