#!/usr/bin/env python3
"""Regression gate and record-set diff over sweep artifacts.

Both positional inputs may be either

  * a sweep store directory (``manifest.json`` + ``shard-*.jsonl``, schema
    ``rlocal.store/1`` -- see docs/store_format.md), or
  * a legacy whole-run JSON artifact (schema ``rlocal.sweep/1`` or ``/2``),

so the gate survives the store migration: the previous CI artifact may
still be a ``BENCH_sweep.json`` while the current run uploads a store
directory.

Gate mode (default) compares per-solver wall time between a baseline sweep
and the current one, normalized per cell, and fails when any solver
regresses by more than ``--max-ratio``. Records restored by a resume
(``"resumed": true``) carry another process's wall time and are excluded
from the aggregates, as are skipped cells.

Diff mode (``--diff``) compares two record sets field-by-field with wall
time excluded (the only legitimately nondeterministic field) -- the CI
resume smoke test's "kill + resume == uninterrupted run" check.

Usage:
    compare_sweep.py BASELINE CURRENT [--max-ratio 2.0] [--min-ms 5.0]
    compare_sweep.py --diff A B

Exit codes: 0 ok (including "no baseline available" in gate mode),
1 regression / record mismatch, 2 malformed input.
"""

import argparse
import json
import os
import sys

LEGACY_SCHEMAS = ("rlocal.sweep/1", "rlocal.sweep/2")
STORE_SCHEMA = "rlocal.store/1"
# Nondeterministic / provenance fields excluded from record identity.
VOLATILE_FIELDS = ("wall_ms", "resumed")
# Store-only coordinates, excluded so a store directory diffs cleanly
# against a legacy whole-run artifact of the same sweep; record order pins
# grid position in both formats (stores merge sorted by cell_index).
POSITION_FIELDS = ("cell_index", "cell_seed")


def load_store_records(path):
    """Records from a store directory, merged into grid order.

    Mirrors the C++ reader's tolerance rule: undecodable lines are allowed
    only as a shard's tail (a torn final frame); a valid frame after an
    invalid line is corruption.
    """
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != STORE_SCHEMA:
        raise ValueError(
            f"{manifest_path}: unknown schema {manifest.get('schema')!r}")
    merged = {}
    for name in sorted(os.listdir(path)):
        if not (name.startswith("shard-") and name.endswith(".jsonl")):
            continue
        shard = os.path.join(path, name)
        torn = False
        with open(shard, "rb") as fh:
            data = fh.read()
        for line in data.split(b"\n"):
            if not line:
                continue
            try:
                frame = json.loads(line.decode("utf-8"))
                if "cell_index" not in frame:
                    raise ValueError("frame without cell_index")
            except (ValueError, UnicodeDecodeError):
                torn = True
                continue
            if torn:
                raise ValueError(f"{shard}: valid frame after a corrupt one")
            merged[frame["cell_index"]] = frame
    return [merged[index] for index in sorted(merged)]


def load_legacy_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") not in LEGACY_SCHEMAS:
        raise ValueError(f"{path}: unknown schema {data.get('schema')!r}")
    return data.get("records", [])


def load_records(path):
    """Store directory or legacy whole-run artifact, auto-detected."""
    if os.path.isdir(path):
        return load_store_records(path)
    return load_legacy_records(path)


def per_solver_wall_ms(path):
    """Total wall_ms per solver over all non-skipped, non-resumed records."""
    totals = {}
    counts = {}
    for record in load_records(path):
        if record.get("skipped") or record.get("resumed"):
            continue
        solver = record["solver"]
        totals[solver] = totals.get(solver, 0.0) + float(
            record.get("wall_ms", 0.0))
        counts[solver] = counts.get(solver, 0) + 1
    return totals, counts


def canonical(record):
    """Record identity for diff mode: every field except the volatile and
    store-coordinate ones, so both artifact formats compare equal."""
    excluded = VOLATILE_FIELDS + POSITION_FIELDS
    return json.dumps(
        {k: v for k, v in record.items() if k not in excluded},
        sort_keys=True)


def run_diff(a_path, b_path):
    a = [canonical(r) for r in load_records(a_path)]
    b = [canonical(r) for r in load_records(b_path)]
    if a == b:
        print(f"OK: {len(a)} records identical (wall time excluded)")
        return 0
    print(f"MISMATCH: {a_path} has {len(a)} records, {b_path} has {len(b)}",
          file=sys.stderr)
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    for label, items in ((f"only in {a_path}", only_a),
                         (f"only in {b_path}", only_b)):
        for item in items[:3]:
            print(f"  {label}: {item[:200]}", file=sys.stderr)
    if not only_a and not only_b:
        print("  same record sets in a different order", file=sys.stderr)
    return 1


def run_gate(args):
    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; first run passes trivially")
        return 0

    try:
        base, base_counts = per_solver_wall_ms(args.baseline)
        curr, curr_counts = per_solver_wall_ms(args.current)
    except (ValueError, KeyError, OSError, json.JSONDecodeError) as error:
        print(f"malformed sweep artifact: {error}", file=sys.stderr)
        return 2

    regressions = []
    width = max((len(s) for s in curr), default=10)
    print(f"{'solver':<{width}}  {'base ms':>10}  {'curr ms':>10}  "
          f"{'ratio':>6}")
    for solver in sorted(curr):
        curr_ms = curr[solver]
        if solver not in base:
            print(f"{solver:<{width}}  {'new':>10}  {curr_ms:>10.1f}  "
                  f"{'-':>6}")
            continue
        base_ms = base[solver]
        # Normalize by cell count so a grown grid is not read as a slowdown.
        base_per = base_ms / max(1, base_counts[solver])
        curr_per = curr_ms / max(1, curr_counts[solver])
        ratio = curr_per / base_per if base_per > 0 else float("inf")
        flag = ""
        if curr_ms >= args.min_ms and base_ms >= args.min_ms \
                and ratio > args.max_ratio:
            regressions.append((solver, ratio))
            flag = "  << REGRESSION"
        print(f"{solver:<{width}}  {base_ms:>10.1f}  {curr_ms:>10.1f}  "
              f"{ratio:>6.2f}{flag}")

    if regressions:
        names = ", ".join(f"{s} ({r:.2f}x)" for s, r in regressions)
        print(f"\nFAIL: wall-time regression > {args.max_ratio}x in: {names}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no solver regressed beyond {args.max_ratio}x")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline",
                        help="store directory or legacy sweep JSON")
    parser.add_argument("current",
                        help="store directory or legacy sweep JSON")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="ignore solvers below this total (noise floor)")
    parser.add_argument("--diff", action="store_true",
                        help="compare record sets byte-for-byte "
                             "(wall time excluded) instead of gating")
    args = parser.parse_args()

    if args.diff:
        try:
            return run_diff(args.baseline, args.current)
        except (ValueError, KeyError, OSError,
                json.JSONDecodeError) as error:
            print(f"malformed sweep artifact: {error}", file=sys.stderr)
            return 2
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
