// Experiment E11 (extension: the GKM17/GHK18 machinery the paper builds
// on): deterministic splitting via conditional expectations, and SLOCAL
// algorithms with measured locality.
//
// Prediction: conditional expectations produce zero violations whenever the
// initial estimator is < 1 (min degree >= log2(2|U|) + 1); SLOCAL greedy
// MIS/coloring run at locality exactly 1 and the deterministic ball-carving
// decomposition achieves (O(log n), O(log n)).
//
// Ported to the lab API: every tool is a registered solver now, so the
// whole experiment is two run_sweep calls (instance degrees on the variant
// axis) plus record formatting.
#include <algorithm>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 128 : 512));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));
  const int threads = static_cast<int>(args.get_int("threads", 0));

  std::cout << "=== E11: derandomization tools (GKM17/GHK18 machinery) "
               "===\n\n";

  // Deterministic splitting: (instance kind x degree) on the variant axis.
  std::cout << "conditional-expectation splitting:\n";
  {
    lab::SweepSpec spec;
    spec.graphs = {{"n" + std::to_string(scale),
                    make_path(scale)}};  // instance derived from n only
    spec.regimes = {Regime::full()};
    spec.seeds = {seed};
    spec.solvers = {"splitting/cond_exp"};
    for (const char* kind : {"random", "window"}) {
      for (const int degree : {logn, 2 * logn, 4 * logn}) {
        spec.variants.push_back(
            {std::string(kind) + "/d" + std::to_string(degree),
             {{"window", kind[0] == 'w' ? 1.0 : 0.0},
              {"degree", static_cast<double>(degree)}}});
      }
    }
    spec.threads = threads;
    const lab::SweepResult result = sweep(spec);
    Table split({"instance", "degree", "initial E", "violations"});
    for (const lab::RunRecord& r : result.records) {
      const auto slash = r.variant.find('/');
      split.add_row({r.variant.substr(0, slash),
                     r.variant.substr(slash + 2),
                     fmt_sci(r.metric_or("initial_estimate", 0)),
                     fmt(r.metric_or("violations", 0), 0)});
    }
    split.print(std::cout);
  }

  // SLOCAL executors, ball carving, and the decomposition-driven MIS and
  // coloring: one sweep of the deterministic solvers over the zoo.
  lab::SweepSpec spec;
  spec.graphs = make_zoo(scale, seed);
  spec.regimes = {Regime::full()};
  spec.seeds = {seed};
  spec.solvers = {"mis/slocal_greedy", "coloring/slocal_greedy",
                  "decomp/ball_carving", "mis/from_decomposition",
                  "coloring/from_decomposition"};
  spec.threads = threads;
  const lab::SweepResult result = sweep(spec);

  std::cout << "\nSLOCAL executor (locality is measured, not assumed):\n";
  Table slocal({"graph", "algorithm", "locality", "valid"});
  for (const lab::RunRecord& r : result.records) {
    if (r.solver != "mis/slocal_greedy" &&
        r.solver != "coloring/slocal_greedy") {
      continue;
    }
    if (r.graph != "gnp_sparse" && r.graph != "grid" &&
        r.graph != "binary_tree") {
      continue;
    }
    slocal.add_row({r.graph,
                    r.solver == "mis/slocal_greedy" ? "greedy MIS"
                                                    : "greedy coloring",
                    fmt(r.metric_or("locality", 0), 0),
                    r.checker_passed ? "yes" : "NO"});
  }
  slocal.print(std::cout);

  // Deterministic ball carving (the PS92/Gha19 stand-in), and the payoff:
  // deterministic MIS / coloring driven by the decomposition.
  std::cout << "\ndeterministic ball-carving decomposition, and the MIS / "
               "coloring it derandomizes:\n";
  Table carve({"graph", "n", "valid", "colors", "diam", "2 log n", "MIS ok",
               "col ok", "app rounds"});
  for (const lab::RunRecord& r : result.records) {
    if (r.solver != "decomp/ball_carving") continue;
    const lab::RunRecord* mis = nullptr;
    const lab::RunRecord* coloring = nullptr;
    for (const lab::RunRecord& other : result.records) {
      if (other.graph != r.graph) continue;
      if (other.solver == "mis/from_decomposition") mis = &other;
      if (other.solver == "coloring/from_decomposition") coloring = &other;
    }
    NodeId graph_n = 0;
    for (const ZooEntry& entry : spec.graphs) {
      if (entry.name == r.graph) graph_n = entry.graph.num_nodes();
    }
    carve.add_row({r.graph, fmt(graph_n), r.checker_passed ? "yes" : "NO",
                   fmt(r.colors), fmt(r.diameter),
                   fmt(2 * ceil_log2(static_cast<std::uint64_t>(
                           std::max<NodeId>(2, graph_n)))),
                   mis != nullptr && mis->checker_passed ? "yes" : "NO",
                   coloring != nullptr && coloring->checker_passed ? "yes"
                                                                   : "NO",
                   mis != nullptr ? fmt(mis->rounds) : "-"});
  }
  carve.print(std::cout);
  std::cout << "\nprediction: zero violations whenever initial E < 1; "
               "locality exactly 1; ball carving within (log n, 2 log n); "
               "every decomposition-driven MIS/coloring deterministic and "
               "valid.\n";
  return 0;
}
