// Experiment E11 (extension: the GKM17/GHK18 machinery the paper builds
// on): deterministic splitting via conditional expectations, and SLOCAL
// algorithms with measured locality.
//
// Prediction: conditional expectations produce zero violations whenever the
// initial estimator is < 1 (min degree >= log2(2|U|) + 1); SLOCAL greedy
// MIS/coloring run at locality exactly 1 and the deterministic ball-carving
// decomposition achieves (O(log n), O(log n)).
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 128 : 512));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));

  std::cout << "=== E11: derandomization tools (GKM17/GHK18 machinery) "
               "===\n\n";

  // Deterministic splitting.
  std::cout << "conditional-expectation splitting:\n";
  Table split({"instance", "degree", "initial E", "violations"});
  for (const char* kind : {"random", "window"}) {
    for (const int degree : {logn, 2 * logn, 4 * logn}) {
      const BipartiteGraph h =
          kind[0] == 'r' ? make_random_splitting_instance(scale, scale,
                                                          degree, seed)
                         : make_window_splitting_instance(scale, scale,
                                                          degree);
      const CondExpSplittingResult r = conditional_expectation_splitting(h);
      split.add_row({kind, fmt(degree), fmt_sci(r.initial_estimate),
                     fmt(r.violations)});
    }
  }
  split.print(std::cout);

  // SLOCAL algorithms with measured locality.
  std::cout << "\nSLOCAL executor (locality is measured, not assumed):\n";
  Table slocal({"graph", "algorithm", "locality", "valid"});
  const auto zoo = make_zoo(scale, seed);
  for (const auto& entry : zoo) {
    if (entry.name != "gnp_sparse" && entry.name != "grid" &&
        entry.name != "binary_tree") {
      continue;
    }
    const Graph& g = entry.graph;
    std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      order[static_cast<std::size_t>(v)] = v;
    }
    const SlocalResult mis = slocal_greedy_mis(g, order);
    std::vector<bool> in_mis(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      in_mis[static_cast<std::size_t>(v)] =
          mis.state[static_cast<std::size_t>(v)] == 1;
    }
    slocal.add_row({entry.name, "greedy MIS", fmt(mis.locality),
                    is_maximal_independent_set(g, in_mis) ? "yes" : "NO"});

    const SlocalResult coloring = slocal_greedy_coloring(g, order);
    std::vector<int> colors(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      colors[static_cast<std::size_t>(v)] = static_cast<int>(
          coloring.state[static_cast<std::size_t>(v)]);
    }
    slocal.add_row({entry.name, "greedy coloring", fmt(coloring.locality),
                    is_valid_coloring(g, colors, g.max_degree() + 1)
                        ? "yes"
                        : "NO"});
  }
  slocal.print(std::cout);

  // Deterministic ball carving (the PS92/Gha19 stand-in), and the payoff:
  // deterministic MIS / coloring driven by the decomposition.
  std::cout << "\ndeterministic ball-carving decomposition, and the MIS / "
               "coloring it derandomizes:\n";
  Table carve({"graph", "n", "valid", "colors", "diam", "2 log n", "MIS ok",
               "col ok", "app rounds"});
  for (const auto& entry : zoo) {
    const Graph& g = entry.graph;
    const BallCarvingResult r = ball_carving_decomposition(g);
    const ValidationReport report = validate_decomposition(g,
                                                           r.decomposition);
    const DecompositionMisResult mis =
        mis_from_decomposition(g, r.decomposition);
    const DecompositionColoringResult coloring =
        coloring_from_decomposition(g, r.decomposition);
    carve.add_row({entry.name, fmt(g.num_nodes()),
                   report.valid ? "yes" : "NO", fmt(report.colors_used),
                   fmt(report.max_tree_diameter),
                   fmt(2 * ceil_log2(static_cast<std::uint64_t>(
                           g.num_nodes()))),
                   is_maximal_independent_set(g, mis.in_mis) ? "yes" : "NO",
                   is_valid_coloring(g, coloring.color, g.max_degree() + 1)
                       ? "yes"
                       : "NO",
                   fmt(mis.rounds_charged)});
  }
  carve.print(std::cout);
  std::cout << "\nprediction: zero violations whenever initial E < 1; "
               "locality exactly 1; ball carving within (log n, 2 log n); "
               "every decomposition-driven MIS/coloring deterministic and "
               "valid.\n";
  return 0;
}
