#!/usr/bin/env python3
"""Structural validator for the obs tracer's Chrome trace-event exports.

Checks that a ``bench_sweep --trace=FILE`` artifact (docs/observability.md)
is a loadable, internally consistent trace:

  * top level is an object with a ``traceEvents`` array; every event has
    ``ph``, ``pid``, ``tid``, ``name`` and (except metadata events) a
    numeric ``ts``;
  * within each (pid, tid) stream, timestamps are monotonically
    non-decreasing and duration events balance: every ``E`` closes the
    most recent open ``B`` (same name, LIFO), and no ``B`` is left open at
    the end of the stream. The exporter repairs ring wraparound before
    writing, so an unbalanced file is an exporter bug, not a full ring;
  * ``--require NAME`` (repeatable) asserts at least one non-metadata
    event whose name starts with NAME exists -- CI uses this to pin that
    the cell, engine-round and draw spans survive end to end.

Exit codes: 0 valid, 1 structural violation / missing required event,
2 unreadable or unparseable input.
"""

import argparse
import json
import sys


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def validate(path, require):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        print(f"unreadable trace: {error}", file=sys.stderr)
        return 2

    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no traceEvents array")

    # Per-(pid, tid): last timestamp and the LIFO stack of open B names.
    last_ts = {}
    open_spans = {}
    counts = {"B": 0, "E": 0, "i": 0, "C": 0, "M": 0}
    seen_names = set()
    for n, event in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                return fail(f"event #{n} lacks {key!r}: {event}")
        ph = event["ph"]
        if ph not in counts:
            return fail(f"event #{n} has unknown phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            continue  # metadata carries no timestamp contract
        seen_names.add(event["name"])
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(f"event #{n} lacks a numeric ts: {event}")
        stream = (event["pid"], event["tid"])
        if ts < last_ts.get(stream, float("-inf")):
            return fail(f"event #{n} goes back in time on stream "
                        f"{stream}: {ts} after {last_ts[stream]}")
        last_ts[stream] = ts
        if ph == "B":
            open_spans.setdefault(stream, []).append(event["name"])
        elif ph == "E":
            stack = open_spans.get(stream, [])
            if not stack:
                return fail(f"event #{n}: E without an open B on stream "
                            f"{stream}: {event['name']}")
            opened = stack.pop()
            if opened != event["name"]:
                return fail(f"event #{n}: E {event['name']!r} closes "
                            f"B {opened!r} on stream {stream}")
    for stream, stack in open_spans.items():
        if stack:
            return fail(f"stream {stream} ends with open span(s): {stack}")

    for prefix in require:
        if not any(name.startswith(prefix) for name in seen_names):
            return fail(f"no event named {prefix}* in {path} "
                        f"(saw {len(seen_names)} distinct names)")

    streams = len(last_ts)
    print(f"OK: {path}: {len(events)} events across {streams} stream(s) "
          f"({counts['B']} B / {counts['E']} E / {counts['i']} i / "
          f"{counts['C']} C / {counts['M']} M), balanced and monotonic")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="assert an event whose name starts with NAME "
                             "exists (repeatable)")
    args = parser.parse_args()
    return validate(args.trace, args.require)


if __name__ == "__main__":
    sys.exit(main())
