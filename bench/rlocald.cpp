// rlocald -- the sweep lab's query daemon (docs/service.md).
//
//   ./rlocald --store=DIR [--store=DIR2 ...] [--port=0] [--threads=2]
//             [--refresh-ms=200] [--stale-ms=10000] [--straggler-factor=3]
//             [--once]
//
// Watches the given store directories (they may not exist yet; each
// attaches once its manifest appears), maintains an incremental aggregate
// index over their shards, and serves the JSONL HTTP API on loopback:
//
//   curl http://127.0.0.1:PORT/healthz
//   curl http://127.0.0.1:PORT/sweeps
//   curl "http://127.0.0.1:PORT/agg?solver=mis/luby&metric=rounds"
//   curl "http://127.0.0.1:PORT/records?cell=17"
//
// --port=0 binds an ephemeral port; the chosen port is printed as
// "rlocald: listening on 127.0.0.1:<port>" so scripts can scrape it.
// --once refreshes the index, prints /sweeps to stdout, and exits without
// serving (a CLI peek at a store, and the smoke tests' fallback).
//
// The daemon runs until SIGINT/SIGTERM.
#include <csignal>
#include <iostream>
#include <semaphore>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "support/cli.hpp"

namespace {

// Async-signal-safe shutdown latch: the handler releases, main acquires.
std::binary_semaphore g_shutdown{0};

void handle_signal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace rlocal;
  std::vector<std::string> stores;
  service::DaemonOptions options;
  // Multiple --store flags are meaningful here, so scan argv directly and
  // leave the scalar flags to CliArgs.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--store=", 0) == 0) stores.push_back(arg.substr(8));
  }
  const CliArgs args(argc, argv);
  if (stores.empty()) {
    std::cerr << "usage: rlocald --store=DIR [--store=DIR2 ...] [--port=0]\n"
              << "               [--threads=2] [--refresh-ms=200]\n"
              << "               [--stale-ms=10000] [--straggler-factor=3]\n"
              << "               [--once]\n";
    return 2;
  }
  options.stores = std::move(stores);
  options.port = static_cast<int>(args.get_int("port", 0));
  options.http_threads = static_cast<int>(args.get_int("threads", 2));
  options.refresh_interval_ms =
      static_cast<int>(args.get_int("refresh-ms", 200));
  // Fleet telemetry knobs (/workers, /stragglers): how old an unchanged
  // lease must look before its owner is flagged stale, and the k in the
  // "older than k x p90" straggler rule.
  options.fleet.stale_after_ms = static_cast<std::uint64_t>(args.get_int(
      "stale-ms", static_cast<long long>(options.fleet.stale_after_ms)));
  options.fleet.straggler_factor =
      args.get_double("straggler-factor", options.fleet.straggler_factor);

  try {
    if (args.has("once")) {
      options.port = 0;  // bound briefly; only the route formatting is used
      service::Daemon daemon(options);
      std::cout << daemon.handle({"GET", "/sweeps", {}}).body;
      return 0;
    }
    service::Daemon daemon(options);
    std::cout << "rlocald: listening on 127.0.0.1:" << daemon.port() << "\n"
              << std::flush;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    g_shutdown.acquire();
    std::cout << "rlocald: shutting down\n";
    daemon.stop();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
