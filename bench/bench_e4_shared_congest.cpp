// Experiment E4 (Theorem 3.6): (O(log n), O(log^2 n)) decomposition with
// congestion 1 in poly(log n) CONGEST rounds from poly(log n) shared bits
// and no private randomness.
//
// Paper prediction: valid strong-diameter decomposition; colors O(log n);
// radius O(log^2 n); in every epoch at most O(log n) centers reach any
// node (the key step making Theta(log^2 n)-wise independence sufficient).
//
// Ported to the lab API: one Sweep per size class (the shared-seed budget
// scales with log^2 n, so the regime differs per n); the per-workload
// detail table is read off the RunRecords.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));
  const bool quick = args.quick();

  std::cout << "=== E4: Theorem 3.6 -- shared randomness in CONGEST ===\n\n";
  Table table({"graph", "n", "shared bits", "valid", "colors", "diam",
               "strong", "rounds", "epochs", "max reach"});
  std::vector<lab::RunRecord> records;
  for (const NodeId n : quick ? std::vector<NodeId>{64, 128}
                              : std::vector<NodeId>{64, 256, 1024}) {
    const int logn = ceil_log2(static_cast<std::uint64_t>(n));
    const auto side = static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
    lab::SweepSpec spec;
    spec.graphs = {{"gnp_" + std::to_string(n), make_gnp(n, 4.0 / n, seed)},
                   {"grid_" + std::to_string(n), make_grid(side, side)}};
    spec.regimes = {Regime::shared_kwise(64 * 2 * logn * logn)};
    spec.seeds = {seed + 7};
    spec.solvers = {"decomp/shared_congest"};
    spec.params = {{"reach_stats", 1.0}};
    spec.threads = static_cast<int>(args.get_int("threads", 0));
    const lab::SweepResult result = sweep(spec);
    records.insert(records.end(), result.records.begin(),
                   result.records.end());
  }
  const auto metric = [](const lab::RunRecord& r, const char* key) {
    const auto it = r.metrics.find(key);
    return it == r.metrics.end() ? -1.0 : it->second;
  };
  for (const lab::RunRecord& r : records) {
    const auto n = r.graph.substr(r.graph.find('_') + 1);
    table.add_row({r.graph, n, fmt(r.shared_seed_bits),
                   r.checker_passed ? "yes" : "NO", fmt(r.colors),
                   fmt(r.diameter),
                   metric(r, "strong_diameter") > 0 ? "yes" : "no",
                   fmt(r.rounds), fmt(metric(r, "epochs_per_phase"), 0),
                   fmt(metric(r, "max_centers_reaching"), 0)});
  }
  table.print(std::cout);
  std::cout << "\npaper: colors O(log n); diameter O(log^2 n); strong "
               "diameter; poly(log n) shared bits and rounds; <= O(log n) "
               "centers reach any node per epoch.\n";
  return 0;
}
