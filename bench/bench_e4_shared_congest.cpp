// Experiment E4 (Theorem 3.6): (O(log n), O(log^2 n)) decomposition with
// congestion 1 in poly(log n) CONGEST rounds from poly(log n) shared bits
// and no private randomness.
//
// Paper prediction: valid strong-diameter decomposition; colors O(log n);
// radius O(log^2 n); in every epoch at most O(log n) centers reach any
// node (the key step making Theta(log^2 n)-wise independence sufficient).
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));
  const bool quick = args.quick();

  std::cout << "=== E4: Theorem 3.6 -- shared randomness in CONGEST ===\n\n";
  Table table({"graph", "n", "shared bits", "valid", "colors", "diam",
               "strong", "rounds", "epochs", "max reach"});
  std::vector<std::pair<std::string, Graph>> workloads;
  for (const NodeId n : quick ? std::vector<NodeId>{64, 128}
                              : std::vector<NodeId>{64, 256, 1024}) {
    workloads.emplace_back("gnp_" + std::to_string(n),
                           make_gnp(n, 4.0 / n, seed));
    const auto side =
        static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
    workloads.emplace_back("grid_" + std::to_string(n),
                           make_grid(side, side));
  }
  for (const auto& [name, g] : workloads) {
    const int logn = ceil_log2(static_cast<std::uint64_t>(g.num_nodes()));
    const int bits = 64 * 2 * logn * logn;
    NodeRandomness rnd(Regime::shared_kwise(bits), seed + 7);
    SharedCongestOptions options;
    options.collect_reach_stats = true;
    const SharedCongestResult r =
        shared_randomness_decomposition(g, rnd, options);
    ValidationReport report;
    if (r.all_clustered) {
      report = validate_decomposition(g, r.decomposition);
    }
    table.add_row({name, fmt(g.num_nodes()),
                   fmt(rnd.shared_seed_bits()),
                   r.all_clustered && report.valid ? "yes" : "NO",
                   fmt(report.colors_used), fmt(report.max_tree_diameter),
                   report.strong_diameter ? "yes" : "no",
                   fmt(r.rounds_charged), fmt(r.epochs_per_phase),
                   fmt(r.max_centers_reaching)});
  }
  table.print(std::cout);
  std::cout << "\npaper: colors O(log n); diameter O(log^2 n); strong "
               "diameter; poly(log n) shared bits and rounds; <= O(log n) "
               "centers reach any node per epoch.\n";
  return 0;
}
