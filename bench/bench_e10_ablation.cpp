// Experiment E10: randomness accounting and design ablations.
//
// (a) Lemma 3.3 accounting: the construction budgets 100 log^2 n bits per
//     cluster; we measure the bits the EN shifts actually consume.
// (b) Geometric truncation ablation: shift caps of 1..2 log n -- too small
//     a cap biases shifts and slows clustering; O(log n) matches the
//     untruncated behaviour (the paper's "10 log n coins suffice w.h.p.").
// (c) Engine-vs-ledger cross-check: the message-passing EN phase on the
//     engine agrees with the centralized reference bit-for-bit, and its
//     true message complexity is reported.
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId n =
      static_cast<NodeId>(args.get_int("n", args.quick() ? 128 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 5 : 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 10));
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));

  std::cout << "=== E10: randomness accounting & ablations ===\n\n";
  const Graph g = make_gnp(n, 4.0 / n, seed);

  // (a) bits per node vs the Lemma 3.3 budget.
  {
    Summary bits;
    Summary phases;
    Summary max_shift;
    for (int t = 0; t < trials; ++t) {
      NodeRandomness rnd(Regime::full(),
                         seed + static_cast<std::uint64_t>(t));
      const EnResult r = elkin_neiman_decomposition(g, rnd);
      bits.add(static_cast<double>(r.shift_bits) / g.num_nodes());
      phases.add(r.phases_used);
      max_shift.add(r.max_shift);
    }
    std::cout << "(a) Lemma 3.3 accounting on G(n,4/n), n=" << n << ":\n"
              << "    bits/node: mean " << fmt(bits.mean(), 2) << ", max "
              << fmt(bits.max(), 2) << "  (budget 100 log^2 n = "
              << 100 * logn * logn << ")\n"
              << "    phases: mean " << fmt(phases.mean(), 2)
              << " (budget 10 log n = " << 10 * logn << ")\n"
              << "    max shift: " << fmt(max_shift.max(), 0)
              << " (w.h.p. bound O(log n), cap 10 log n = " << 10 * logn
              << ")\n\n";
  }

  // (b) truncation ablation.
  {
    std::cout << "(b) geometric truncation ablation (cap in phases "
                 "needed):\n";
    Table table({"shift cap", "all clustered", "phases(avg)",
                 "colors(max)", "diam(max)"});
    for (const int cap : {1, 2, 4, logn, 2 * logn, 10 * logn}) {
      int complete = 0;
      Summary phases;
      int max_colors = 0;
      int max_diam = 0;
      for (int t = 0; t < trials; ++t) {
        NodeRandomness rnd(Regime::full(),
                           seed + 100 + static_cast<std::uint64_t>(t));
        EnOptions options;
        options.shift_cap = cap;
        const EnResult r = elkin_neiman_decomposition(g, rnd, options);
        if (r.all_clustered) {
          ++complete;
          const ValidationReport report =
              validate_decomposition(g, r.decomposition);
          max_colors = std::max(max_colors, report.colors_used);
          max_diam = std::max(max_diam, report.max_tree_diameter);
        }
        phases.add(r.phases_used);
      }
      table.add_row({fmt(cap), fmt(complete) + "/" + fmt(trials),
                     fmt(phases.mean(), 1), fmt(max_colors),
                     fmt(max_diam)});
    }
    table.print(std::cout);
  }

  // (c) engine vs reference cross-check + true message complexity.
  {
    const Graph small = make_grid(8, 8);
    NodeRandomness rnd_a(Regime::full(), seed + 1);
    NodeRandomness rnd_b(Regime::full(), seed + 1);
    EnOptions engine_options;
    engine_options.use_engine = true;
    const EnResult by_engine =
        elkin_neiman_decomposition(small, rnd_a, engine_options);
    const EnResult by_reference =
        elkin_neiman_decomposition(small, rnd_b, {});
    bool agree = by_engine.all_clustered == by_reference.all_clustered &&
                 by_engine.decomposition.cluster_of ==
                     by_reference.decomposition.cluster_of;
    std::cout << "\n(c) engine vs centralized reference on an 8x8 grid: "
              << (agree ? "identical clustering" : "MISMATCH") << "\n";

    NodeRandomness rnd_c(Regime::full(), seed + 2);
    const LubyMisResult engine_mis = run_luby_mis(small, rnd_c);
    std::cout << "    Luby on the engine: " << engine_mis.stats.rounds
              << " rounds, " << engine_mis.stats.messages << " messages, "
              << "max message " << engine_mis.stats.max_message_bits
              << " bits (CONGEST budget 32 log n = "
              << 32 * ceil_log2(static_cast<std::uint64_t>(
                          small.num_nodes()))
              << ")\n";
  }
  std::cout << "\npaper: measured bits sit far below the 100 log^2 n "
               "worst-case budget; caps below O(log n) degrade; engine and "
               "reference agree.\n";
  return 0;
}
