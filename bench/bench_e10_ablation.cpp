// Experiment E10: randomness accounting and design ablations.
//
// (a) Lemma 3.3 accounting: the construction budgets 100 log^2 n bits per
//     cluster; we measure the bits the EN shifts actually consume.
// (b) Geometric truncation ablation: shift caps of 1..2 log n -- too small
//     a cap biases shifts and slows clustering; O(log n) matches the
//     untruncated behaviour (the paper's "10 log n coins suffice w.h.p.").
// (c) Engine-vs-ledger cross-check: the message-passing EN phase on the
//     engine agrees with the centralized reference bit-for-bit, and its
//     true message complexity is reported.
//
// Ported to the lab API: (a) and (b) are one run_sweep call over
// decomp/elkin_neiman (the shift-cap ablation is the variant axis, trials
// the seed axis); (c) forces two registry cells onto the same coins and
// compares their artifacts.
#include <algorithm>
#include <any>
#include <iostream>
#include <map>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId n =
      static_cast<NodeId>(args.get_int("n", args.quick() ? 128 : 512));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 5 : 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 10));
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));

  std::cout << "=== E10: randomness accounting & ablations ===\n\n";

  lab::SweepSpec spec;
  spec.graphs = {{"gnp", make_gnp(n, 4.0 / n, seed)}};
  spec.regimes = {Regime::full()};
  spec.solvers = {"decomp/elkin_neiman"};
  spec.variants.push_back({"default", {}});  // (a): the untruncated run
  // Dedupe: small n collapses the cap ladder (e.g. logn == 4), and
  // duplicate variant names are a spec error.
  std::vector<int> caps;
  for (const int cap : {1, 2, 4, logn, 2 * logn, 10 * logn}) {
    if (std::find(caps.begin(), caps.end(), cap) == caps.end()) {
      caps.push_back(cap);
    }
  }
  for (const int cap : caps) {
    spec.variants.push_back({"cap" + std::to_string(cap),
                             {{"shift_cap", static_cast<double>(cap)}}});
  }
  for (int t = 0; t < trials; ++t) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(t));
  }
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  // (a) bits per node vs the Lemma 3.3 budget (the "default" variant).
  {
    Summary bits;
    Summary phases;
    Summary max_shift;
    for (const lab::RunRecord& r : result.records) {
      if (r.variant != "default") continue;
      bits.add(r.metric_or("shift_bits", 0) / n);
      phases.add(r.iterations);
      max_shift.add(r.metric_or("max_shift", 0));
    }
    std::cout << "(a) Lemma 3.3 accounting on G(n,4/n), n=" << n << ":\n"
              << "    bits/node: mean " << fmt(bits.mean(), 2) << ", max "
              << fmt(bits.max(), 2) << "  (budget 100 log^2 n = "
              << 100 * logn * logn << ")\n"
              << "    phases: mean " << fmt(phases.mean(), 2)
              << " (budget 10 log n = " << 10 * logn << ")\n"
              << "    max shift: " << fmt(max_shift.max(), 0)
              << " (w.h.p. bound O(log n), cap 10 log n = " << 10 * logn
              << ")\n\n";
  }

  // (b) truncation ablation.
  {
    std::cout << "(b) geometric truncation ablation (cap in phases "
                 "needed):\n";
    struct Agg {
      int complete = 0;
      Summary phases;
      int max_colors = 0;
      int max_diam = 0;
    };
    std::map<std::string, Agg> groups;
    for (const lab::RunRecord& r : result.records) {
      if (r.variant == "default") continue;
      Agg& agg = groups[r.variant];
      if (r.success && r.checker_passed) {
        ++agg.complete;
        agg.max_colors = std::max(agg.max_colors, r.colors);
        agg.max_diam = std::max(agg.max_diam, r.diameter);
      }
      agg.phases.add(r.iterations);
    }
    Table table({"shift cap", "all clustered", "phases(avg)",
                 "colors(max)", "diam(max)"});
    // Map order is lexicographic; re-emit in the swept cap order instead.
    for (const int cap : caps) {
      const Agg& agg = groups["cap" + std::to_string(cap)];
      table.add_row({fmt(cap), fmt(agg.complete) + "/" + fmt(trials),
                     fmt(agg.phases.mean(), 1), fmt(agg.max_colors),
                     fmt(agg.max_diam)});
    }
    table.print(std::cout);
  }

  // (c) engine vs reference cross-check + true message complexity. The two
  // registry cells share one master seed, so they draw identical coins.
  {
    const Graph small = make_grid(8, 8);
    const lab::RunRecord by_engine = registry().run_cell(
        "decomp/elkin_neiman", small, "grid8", Regime::full(), seed + 1,
        {{"engine", 1}});
    const lab::RunRecord by_reference = registry().run_cell(
        "decomp/elkin_neiman", small, "grid8", Regime::full(), seed + 1);
    const auto* engine_d =
        std::any_cast<Decomposition>(&by_engine.artifact);
    const auto* reference_d =
        std::any_cast<Decomposition>(&by_reference.artifact);
    const bool agree = engine_d != nullptr && reference_d != nullptr &&
                       by_engine.success == by_reference.success &&
                       engine_d->cluster_of == reference_d->cluster_of;
    std::cout << "\n(c) engine vs centralized reference on an 8x8 grid: "
              << (agree ? "identical clustering" : "MISMATCH") << "\n";

    NodeRandomness rnd_c(Regime::full(), seed + 2);
    const LubyMisResult engine_mis = run_luby_mis(small, rnd_c);
    std::cout << "    Luby on the engine: " << engine_mis.stats.rounds
              << " rounds, " << engine_mis.stats.messages << " messages, "
              << "max message " << engine_mis.stats.max_message_bits
              << " bits (CONGEST budget 32 log n = "
              << 32 * ceil_log2(static_cast<std::uint64_t>(
                          small.num_nodes()))
              << ")\n";
  }
  std::cout << "\npaper: measured bits sit far below the 100 log^2 n "
               "worst-case budget; caps below O(log n) degrade; engine and "
               "reference agree.\n";
  return 0;
}
