// Experiment E8 (Theorems 4.3 / 4.6): derandomization by lying about n.
//
// Paper prediction: running the non-uniform EN algorithm with an inflated
// size parameter N makes its empirical failure rate collapse (the failure
// bound is ~ n * 2^{-10 log N}) while the round cost grows only with
// poly(log N); the bound calculators tabulate the 2^{O(log^{1/beta} n)}
// deterministic times the theorems trade this into.
//
// Ported to the lab API: the pretended-N axis is the variant axis of one
// run_sweep call over decomp/pretend_n (trials on the seed axis); the bound
// calculators remain closed-form printouts.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId n =
      static_cast<NodeId>(args.get_int("n", args.quick() ? 128 : 256));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 30 : 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 8));

  std::cout << "=== E8: Theorems 4.3/4.6 -- lying about n ===\n\n";

  lab::SweepSpec spec;
  spec.graphs = {{"cycle", make_cycle(n)}};
  spec.regimes = {Regime::full()};
  spec.solvers = {"decomp/pretend_n"};
  // Handicap: run with 3/4 * log2(N) phases (instead of the w.h.p.
  // 10 log N), so the n-node graph sits right at the failure transition
  // and the improvement with N is visible in the fail-rate column.
  spec.params = {{"phases_per_logn", 0.75}};
  for (const double factor :
       {1.0, 16.0, static_cast<double>(n),
        static_cast<double>(n) * 256.0}) {
    const std::string name = "N=" + fmt(static_cast<double>(n) * factor, 0);
    // Small n can repeat a pretended N (16 == n); duplicate variants are a
    // spec error, so keep the first occurrence only.
    bool seen = false;
    for (const lab::ParamVariant& v : spec.variants) seen |= v.name == name;
    if (seen) continue;
    spec.variants.push_back({name, {{"pretend_factor", factor}}});
  }
  for (int t = 0; t < trials; ++t) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(t));
  }
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  struct Agg {
    int trials = 0;
    int failures = 0;
    int phases = 0;
    int rounds = 0;
    double bound = 0;
  };
  std::map<std::string, Agg> groups;
  for (const lab::RunRecord& r : result.records) {
    Agg& agg = groups[r.variant];
    ++agg.trials;
    if (!r.success) ++agg.failures;
    agg.phases = static_cast<int>(r.metric_or("phases", 0));
    agg.rounds = r.rounds;
    agg.bound = r.metric_or("failure_bound", 0);
  }
  Table table({"pretended N", "phases", "fail rate", "union bound",
               "rounds"});
  // Rows in swept (ascending-N) order, not the map's lexicographic one.
  for (const lab::ParamVariant& variant : spec.variants) {
    const Agg& agg = groups[variant.name];
    table.add_row({variant.name.substr(2), fmt(agg.phases),
                   fmt(static_cast<double>(agg.failures) /
                           std::max(1, agg.trials), 4),
                   fmt_sci(agg.bound), fmt(agg.rounds)});
  }
  table.print(std::cout);

  std::cout << "\nTheorem 4.3 arithmetic (time needed after the lie):\n";
  Table bounds({"n", "beta", "eps", "log2 T(N)", "T(N)",
                "vs 2^sqrt(log n)"});
  for (const double real_n : {1e4, 1e6, 1e9}) {
    for (const double beta : {2.5, 3.0, 4.0}) {
      const double log2T = lie_required_log2_time(real_n, beta, 0.5);
      const double ps92 = std::sqrt(std::log2(real_n));
      bounds.add_row({fmt_sci(real_n), fmt(beta, 1), "0.5",
                      fmt(log2T, 2), fmt_sci(std::pow(2.0, log2T)),
                      fmt(log2T / ps92, 3)});
    }
  }
  bounds.print(std::cout);
  std::cout << "\nTheorem 4.6: success 1 - 2^{-2^{log^eps N}} with eps=0.5 "
               "needs log2 N = " << fmt(lie_required_log2_n(1e6, 0.5), 1)
            << " for n = 1e6 -- still poly(log n) time after the lie.\n"
            << "paper: failure collapses with N while rounds grow only "
               "polylogarithmically; beta > 2 turns into deterministic "
               "2^{O(log^{1/beta} n)} << 2^{O(sqrt(log n))}.\n";
  return 0;
}
