// Experiment E8 (Theorems 4.3 / 4.6): derandomization by lying about n.
//
// Paper prediction: running the non-uniform EN algorithm with an inflated
// size parameter N makes its empirical failure rate collapse (the failure
// bound is ~ n * 2^{-10 log N}) while the round cost grows only with
// poly(log N); the bound calculators tabulate the 2^{O(log^{1/beta} n)}
// deterministic times the theorems trade this into.
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId n =
      static_cast<NodeId>(args.get_int("n", args.quick() ? 128 : 256));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 30 : 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 8));

  std::cout << "=== E8: Theorems 4.3/4.6 -- lying about n ===\n\n";
  const Graph g = make_cycle(n);

  Table table({"pretended N", "phases", "shift cap", "fail rate",
               "union bound", "rounds"});
  for (const std::uint64_t pretended :
       {static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(n) * 16,
        static_cast<std::uint64_t>(n) * n,
        static_cast<std::uint64_t>(n) * n * 256}) {
    // Handicap: run with 3/4 * log2(N) phases (instead of the w.h.p.
    // 10 log N), so the n-node graph sits right at the failure transition
    // and the improvement with N is visible in the fail-rate column.
    const int logN = ceil_log2(pretended);
    const int phases = std::max(1, 3 * logN / 4);
    int failures = 0;
    int rounds = 0;
    for (int t = 0; t < trials; ++t) {
      NodeRandomness rnd(Regime::full(),
                         seed + static_cast<std::uint64_t>(t));
      EnOptions options;
      options.phases = phases;
      options.shift_cap = 2 * logN + 16;
      const EnResult r = elkin_neiman_decomposition(g, rnd, options);
      if (!r.all_clustered) ++failures;
      rounds = r.rounds_charged;
    }
    // Union bound with the per-phase clustering probability >= 1/2.
    const double bound = std::min(
        1.0, static_cast<double>(n) *
                 std::pow(2.0, -static_cast<double>(phases)));
    table.add_row({fmt(pretended), fmt(phases), fmt(2 * logN + 16),
                   fmt(static_cast<double>(failures) / trials, 4),
                   fmt_sci(bound), fmt(rounds)});
  }
  table.print(std::cout);

  std::cout << "\nTheorem 4.3 arithmetic (time needed after the lie):\n";
  Table bounds({"n", "beta", "eps", "log2 T(N)", "T(N)",
                "vs 2^sqrt(log n)"});
  for (const double real_n : {1e4, 1e6, 1e9}) {
    for (const double beta : {2.5, 3.0, 4.0}) {
      const double log2T = lie_required_log2_time(real_n, beta, 0.5);
      const double ps92 = std::sqrt(std::log2(real_n));
      bounds.add_row({fmt_sci(real_n), fmt(beta, 1), "0.5",
                      fmt(log2T, 2), fmt_sci(std::pow(2.0, log2T)),
                      fmt(log2T / ps92, 3)});
    }
  }
  bounds.print(std::cout);
  std::cout << "\nTheorem 4.6: success 1 - 2^{-2^{log^eps N}} with eps=0.5 "
               "needs log2 N = " << fmt(lie_required_log2_n(1e6, 0.5), 1)
            << " for n = 1e6 -- still poly(log n) time after the lie.\n"
            << "paper: failure collapses with N while rounds grow only "
               "polylogarithmically; beta > 2 turns into deterministic "
               "2^{O(log^{1/beta} n)} << 2^{O(sqrt(log n))}.\n";
  return 0;
}
