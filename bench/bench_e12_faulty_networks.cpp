// Experiment E12 (robustness, docs/faults.md): classic randomized
// algorithms on unreliable networks -- message drop rate x randomness
// regime, the fault axis as a first-class sweep coordinate.
//
// Question: does scarce randomness degrade *gracefully* the same way full
// independence does when the wire starts eating messages? Each faulted
// cell reports a quality score (checker violation count; 0 = the output
// survived the faults intact) instead of pass/fail, so the table below is
// the quality/entropy tradeoff surface: rows are drop rates, columns are
// regimes, entries are mean violations and the randomness ledger.
//
// Expectation: quality degrades smoothly with the drop rate and the
// scarce-randomness columns track the full-independence column -- faults
// attack delivered messages, not the independence structure of the bits.
#include <iostream>
#include <map>
#include <vector>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 384));
  const int trials =
      static_cast<int>(args.get_int("trials", args.quick() ? 4 : 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));

  std::cout << "=== E12: Luby MIS on unreliable networks ===\n\n";
  lab::SweepSpec spec;
  for (auto& entry : make_zoo(scale, seed)) {
    if (entry.name == "gnp_sparse" || entry.name == "random_4regular") {
      spec.graphs.push_back(std::move(entry));
    }
  }
  spec.regimes = {
      Regime::full(),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
  };
  for (int t = 0; t < trials; ++t) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(t));
  }
  spec.solvers = {"mis/luby"};
  spec.faults = {FaultSpec::none()};
  for (const char* name : {"drop0.02", "drop0.05", "drop0.1", "drop0.2"}) {
    spec.faults.push_back(FaultSpec::parse(name).value());
  }
  spec.threads = static_cast<int>(args.get_int("threads", 0));

  const lab::SweepResult result = sweep(spec);

  // Aggregate the tradeoff surface by (fault, regime): mean violation
  // count, mean rounds, and the mean derived-bits ledger (the entropy side
  // of the tradeoff). Reliable cells score quality 0 here -- the checker
  // passed or the cell would be a failure, not a data point.
  struct Acc {
    double quality = 0, rounds = 0, bits = 0;
    int n = 0;
  };
  std::map<std::string, std::map<std::string, Acc>> surface;
  for (const lab::RunRecord& r : result.records) {
    if (r.skipped || !r.success) continue;
    Acc& acc = surface[r.fault.empty() ? "none" : r.fault][r.regime];
    acc.quality += r.quality < 0 ? 0.0 : static_cast<double>(r.quality);
    acc.rounds += r.rounds;
    acc.bits += static_cast<double>(r.derived_bits);
    acc.n += 1;
  }

  std::cout << "mean checker violations (mean rounds | mean derived bits):\n";
  for (const auto& [fault, by_regime] : surface) {
    std::cout << "  " << fault << ":\n";
    for (const auto& [regime, acc] : by_regime) {
      if (acc.n == 0) continue;
      std::cout << "    " << regime << "  quality="
                << fmt(acc.quality / acc.n, 2) << "  ("
                << fmt(acc.rounds / acc.n, 1) << " rounds | "
                << fmt(acc.bits / acc.n, 0) << " bits)\n";
    }
  }
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_failed << " failed, " << result.cells_skipped
            << " skipped, on " << result.threads_used << " thread(s) in "
            << fmt(result.wall_ms, 1) << " ms\n";
  std::cout << "expectation: violations grow with the drop rate; the "
               "scarce-randomness columns track full independence.\n";
  return 0;
}
