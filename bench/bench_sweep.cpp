// The lab's flagship bench: every registered solver swept over a graph zoo
// x regime x seed grid in one call, with the parallel runner timed against
// the single-threaded baseline, and the full record set emitted as
// BENCH_sweep.json for trend tracking.
//
//   ./bench_sweep [--scale=256] [--seeds=8] [--threads=0] [--quick]
//                 [--out=BENCH_sweep.json]
#include <fstream>
#include <iostream>
#include <thread>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 256));
  const int num_seeds = std::max(
      1, static_cast<int>(args.get_int("seeds", args.quick() ? 4 : 8)));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));
  const std::string out_path =
      args.get_string("out", "BENCH_sweep.json");

  std::cout << "=== lab sweep: " << registry().size() << " solvers, "
            << registry().problems().size() << " problems ===\n";
  for (const lab::Solver* solver : registry().solvers()) {
    std::cout << "  " << solver->name() << " -- " << solver->description()
              << "\n";
  }

  lab::SweepSpec spec;
  for (auto& entry : make_zoo(scale, seed)) {
    if (entry.name == "gnp_sparse" || entry.name == "grid" ||
        entry.name == "random_4regular") {
      spec.graphs.push_back(std::move(entry));
    }
  }
  spec.regimes = {
      Regime::full(),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
      Regime::shared_epsbias(4 * logn),
      // Per-cluster pooled randomness (Lemma 3.3 beacons): log n pools of
      // 128 log n bits each.
      Regime::pooled(logn, std::max(128, 128 * logn)),
  };
  for (int t = 0; t < num_seeds; ++t) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(t));
  }
  // At bench scales the CF default small-edge threshold exceeds every
  // hyperedge, which would skip the randomized marking entirely; lower it
  // so the k-wise path actually draws bits (only conflict_free/kwise reads
  // this knob).
  spec.params = {{"small_threshold", 8.0}};

  // Single-threaded baseline vs the pool (speedup needs >= 2 real cores;
  // the records themselves are identical either way).
  spec.threads = 1;
  const lab::SweepResult base = sweep(spec);
  spec.threads = static_cast<int>(args.get_int("threads", 0));
  const lab::SweepResult result = sweep(spec);

  std::cout << "\n";
  lab::summary_table(result).print(std::cout);
  const double speedup = result.wall_ms > 0 ? base.wall_ms / result.wall_ms
                                            : 1.0;
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_skipped << " regime-skipped, "
            << result.cells_failed << " failed\n"
            << "wall: " << fmt(base.wall_ms, 1) << " ms on 1 thread, "
            << fmt(result.wall_ms, 1) << " ms on " << result.threads_used
            << " threads (" << fmt(speedup, 2) << "x, "
            << std::thread::hardware_concurrency() << " hw threads)\n";

  std::ofstream out(out_path);
  lab::emit_json(result, out);
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << result.records.size() << " records to "
            << out_path << "\n";
  return result.cells_failed == 0 ? 0 : 1;
}
