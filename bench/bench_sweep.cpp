// The lab's flagship bench: every registered solver swept over a graph zoo
// x regime x seed grid in one call, with the parallel runner timed against
// the single-threaded baseline, and the full record set emitted as
// BENCH_sweep.json for trend tracking.
//
//   ./bench_sweep [--scale=256] [--seeds=8] [--threads=0] [--quick]
//                 [--out=BENCH_sweep.json]
//
// Durable mode (the sweep store's first client; see docs/store_format.md):
//
//   --store=DIR       stream records into a sharded on-disk store
//   --resume          restore completed cells from DIR instead of re-running
//   --claim           cooperative multi-process drain: claim lease ranges of
//                     the grid under DIR/claims/ so any number of
//                     bench_sweep processes share one store (each writing
//                     its own shard; see docs/service.md)
//   --owner=ID        unique claimer id for --claim (default pid-<pid>)
//   --claim-range=N   cells per claim lease (default 64)
//   --claim-ttl-ms=MS unchanged-lease window before a holder is presumed
//                     dead and its lease stolen (default 10000)
//   --cell-limit=N    stop after N executed cells (crash injection for the
//                     CI resume smoke test; the store stays resumable)
//   --deadline-ms=MS  per-cell wall-clock budget; overruns are recorded as
//                     failed with reason "deadline"
//   --lazy-graphs     build each zoo graph per cell from its factory
//                     (bounds memory on huge grids)
//   --bandwidths=A,B  sweep the per-message bandwidth cap as a grid axis
//                     (bits; 0 = the model default). Non-zero caps bind
//                     only CONGEST-model solvers; other solvers' cells are
//                     regime-style skipped.
//   --faults=A,B      sweep fault-injection specs as a grid axis
//                     (sim/faults.hpp canonical names: none | drop<p> |
//                     crash<f>@<cap> | skew<s>, joined with '+', e.g.
//                     --faults=none,drop0.05,drop0.02+crash0.1@8). Non-none
//                     specs bind only fault-supporting solvers (mis/luby,
//                     decomp/elkin_neiman -- forced onto the engine path);
//                     other solvers' faulted cells are regime-style
//                     skipped, and faulted cells are quality-scored
//                     instead of pass/fail checked (docs/faults.md).
//   --allow-failures  exit 0 even when cells failed (default: any failed
//                     cell makes the bench exit 1 after the summary)
//   --profile         print a per-(solver, regime) cell-time breakdown --
//                     cells, total ms, ms/cell, plus per-phase attribution
//                     (engine / draw / checker / graph build / store
//                     append), sorted by total time -- and write it as
//                     JSON (schema rlocal.profile/2) to --profile-out
//                     (default BENCH_profile.json). With --store a sidecar
//                     copy also lands in DIR/profile-<owner>.json, which
//                     rlocald ingests for its /profile endpoint
//                     (docs/service.md). The table is how a
//                     perf change is attributed: k-wise-heavy cells
//                     respond to the batched randomness plane,
//                     engine-backed cells to the message arena (see
//                     docs/perf.md).
//   --engine          set the engine=1 sweep param: solvers that support it
//                     (mis/luby, decomp/elkin_neiman) execute on the
//                     message-passing engine instead of their centralized
//                     references, so engine rounds are metered on real
//                     wires -- and show up as engine_round spans under
//                     --trace. Changes the records (metered vs analytic
//                     provenance), so the CI byte-identity gate runs
//                     without it.
//   --trace=FILE      record a tracing session (src/obs/) over the whole
//                     run -- every sweep it performs, including the
//                     1-thread baseline when no --store is given -- and
//                     write Chrome trace-event JSON to FILE (open in
//                     Perfetto / chrome://tracing; docs/observability.md)
//   --trace-ring-kb=N per-thread trace ring size in KiB (default 4096;
//                     16 events/KiB -- a full ring drops oldest events
//                     and reports how many)
//
// With --store the 1-thread timing baseline is skipped: the store's frames
// are the artifact and a second full run would double every record's cost.
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "obs/obs.hpp"
#include "rnd/dispatch.hpp"
#include "service/claims.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace {

/// Per-(solver, regime) cell-time aggregate behind --profile. Resumed
/// records carry another process's wall time and are excluded, like the
/// gate's wall-time aggregates.
struct ProfileRow {
  std::string solver;
  std::string regime;
  int cells = 0;
  double total_ms = 0.0;
  // Phase attribution sums (rlocal.profile/2; lab::RunRecord::phases).
  // engine/draw/checker overlap solver time -- attribution, not a
  // partition; graph build and store append surround it.
  double graph_build_ms = 0.0;
  double solver_ms = 0.0;
  double checker_ms = 0.0;
  double engine_ms = 0.0;
  double draw_ms = 0.0;
  double store_append_ms = 0.0;
};

std::vector<ProfileRow> profile_rows(const rlocal::lab::SweepResult& result) {
  std::map<std::pair<std::string, std::string>, ProfileRow> agg;
  for (const rlocal::lab::RunRecord& r : result.records) {
    if (r.skipped || r.resumed) continue;
    ProfileRow& row = agg[{r.solver, r.regime}];
    row.solver = r.solver;
    row.regime = r.regime;
    row.cells += 1;
    row.total_ms += r.wall_ms;
    row.graph_build_ms += r.phases.graph_build_ms;
    row.solver_ms += r.phases.solver_ms;
    row.checker_ms += r.phases.checker_ms;
    row.engine_ms += r.phases.engine_ms;
    row.draw_ms += r.phases.draw_ms;
    row.store_append_ms += r.phases.store_append_ms;
  }
  std::vector<ProfileRow> rows;
  rows.reserve(agg.size());
  for (auto& [key, row] : agg) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              return a.total_ms > b.total_ms;
            });
  return rows;
}

void print_profile(const std::vector<ProfileRow>& rows, std::ostream& out) {
  std::size_t solver_width = 6;
  std::size_t regime_width = 6;
  for (const ProfileRow& row : rows) {
    solver_width = std::max(solver_width, row.solver.size());
    regime_width = std::max(regime_width, row.regime.size());
  }
  out << "\n[profile] cell-time breakdown (executed cells only; rnd backend: "
      << rlocal::rnd::backend_name(rlocal::rnd::active_backend())
      << "; engine/draw/check attribute within solver time)\n"
      << std::left << std::setw(static_cast<int>(solver_width)) << "solver"
      << "  " << std::setw(static_cast<int>(regime_width)) << "regime"
      << std::right << "  " << std::setw(6) << "cells" << "  "
      << std::setw(10) << "total ms" << "  " << std::setw(10) << "ms/cell"
      << "  " << std::setw(9) << "engine" << "  " << std::setw(9) << "draw"
      << "  " << std::setw(9) << "check" << "  " << std::setw(9) << "build"
      << "  " << std::setw(9) << "append" << "\n";
  for (const ProfileRow& row : rows) {
    out << std::left << std::setw(static_cast<int>(solver_width))
        << row.solver << "  " << std::setw(static_cast<int>(regime_width))
        << row.regime << std::right << "  " << std::setw(6) << row.cells
        << "  " << std::setw(10) << std::fixed << std::setprecision(2)
        << row.total_ms << "  " << std::setw(10)
        << (row.cells > 0 ? row.total_ms / row.cells : 0.0) << "  "
        << std::setw(9) << row.engine_ms << "  " << std::setw(9)
        << row.draw_ms << "  " << std::setw(9) << row.checker_ms << "  "
        << std::setw(9) << row.graph_build_ms << "  " << std::setw(9)
        << row.store_append_ms << "\n";
  }
  out.unsetf(std::ios::fixed);
}

bool write_profile_json(const std::vector<ProfileRow>& rows,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  // The backend is stamped per row (not once at the top) so rows stay
  // self-describing when profile JSONs from different machines are
  // concatenated or diffed row-wise across runs.
  const std::string backend =
      rlocal::rnd::backend_name(rlocal::rnd::active_backend());
  rlocal::JsonWriter w(out);
  w.begin_object();
  // /2 adds the per-phase attribution sums; every /1 field is kept with
  // its old meaning so /1 readers' code paths keep working on the common
  // subset (compare_sweep.py reads either).
  w.field("schema", "rlocal.profile/2");
  w.key("rows");
  w.begin_array();
  for (const ProfileRow& row : rows) {
    w.begin_object();
    w.field("solver", row.solver);
    w.field("regime", row.regime);
    w.field("rnd_backend", backend);
    w.field("cells", row.cells);
    w.field("total_ms", row.total_ms);
    w.field("ms_per_cell", row.cells > 0 ? row.total_ms / row.cells : 0.0);
    w.field("graph_build_ms", row.graph_build_ms);
    w.field("solver_ms", row.solver_ms);
    w.field("checker_ms", row.checker_ms);
    w.field("engine_ms", row.engine_ms);
    w.field("draw_ms", row.draw_ms);
    w.field("store_append_ms", row.store_append_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const NodeId scale =
      static_cast<NodeId>(args.get_int("scale", args.quick() ? 96 : 256));
  const int num_seeds = std::max(
      1, static_cast<int>(args.get_int("seeds", args.quick() ? 4 : 8)));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int logn = ceil_log2(static_cast<std::uint64_t>(scale));
  const std::string out_path =
      args.get_string("out", "BENCH_sweep.json");
  const std::string store_dir = args.get_string("store", "");
  const bool resume = args.has("resume");
  const bool claim = args.has("claim");
  if ((resume || claim) && store_dir.empty()) {
    std::cerr << "error: --" << (resume ? "resume" : "claim")
              << " requires --store=DIR\n";
    return 2;
  }
  if (resume && claim) {
    std::cerr << "error: --claim already resumes (done ranges are never "
                 "re-run); drop --resume\n";
    return 2;
  }

  std::cout << "=== lab sweep: " << registry().size() << " solvers, "
            << registry().problems().size() << " problems ===\n";
  for (const lab::Solver* solver : registry().solvers()) {
    std::cout << "  " << solver->name() << " -- " << solver->description()
              << "\n";
  }

  lab::SweepSpec spec;
  for (auto& entry : args.has("lazy-graphs") ? make_zoo_lazy(scale, seed)
                                             : make_zoo(scale, seed)) {
    if (entry.name == "gnp_sparse" || entry.name == "grid" ||
        entry.name == "random_4regular") {
      spec.graphs.push_back(std::move(entry));
    }
  }
  spec.regimes = {
      Regime::full(),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
      Regime::shared_epsbias(4 * logn),
      // Per-cluster pooled randomness (Lemma 3.3 beacons): log n pools of
      // 128 log n bits each.
      Regime::pooled(logn, std::max(128, 128 * logn)),
  };
  for (int t = 0; t < num_seeds; ++t) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(t));
  }
  // At bench scales the CF default small-edge threshold exceeds every
  // hyperedge, which would skip the randomized marking entirely; lower it
  // so the k-wise path actually draws bits (only conflict_free/kwise reads
  // this knob).
  spec.params = {{"small_threshold", 8.0}};
  if (args.has("engine")) spec.params["engine"] = 1.0;
  // Comma-separated bandwidth axis, e.g. --bandwidths=0,64,16. Bad tokens
  // are a user error, not a crash (the other flags go through CliArgs).
  if (const std::string raw = args.get_string("bandwidths", "");
      !raw.empty()) {
    std::size_t start = 0;
    while (start <= raw.size()) {
      const std::size_t comma = raw.find(',', start);
      const std::string token =
          raw.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
      if (!token.empty()) {
        int bandwidth = 0;
        std::size_t parsed = 0;
        try {
          bandwidth = std::stoi(token, &parsed);
        } catch (const std::exception&) {
          parsed = 0;  // reported below, with the token text
        }
        // Reject trailing garbage ("128kb") and negatives here with a
        // clean message; run_sweep's own checks (duplicates) are already
        // routed to exit 2 by the catch around the sweep call.
        if (parsed != token.size() || bandwidth < 0) {
          std::cerr << "error: --bandwidths token '" << token
                    << "' is not a non-negative int\n";
          return 2;
        }
        spec.bandwidths.push_back(bandwidth);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  // Comma-separated fault axis, e.g. --faults=none,drop0.05,crash0.2@8.
  // FaultSpec::parse owns the grammar; a bad token is a user error with the
  // grammar echoed back, not a crash.
  if (const std::string raw = args.get_string("faults", ""); !raw.empty()) {
    std::size_t start = 0;
    while (start <= raw.size()) {
      const std::size_t comma = raw.find(',', start);
      const std::string token =
          raw.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
      if (!token.empty()) {
        const std::optional<FaultSpec> fault = FaultSpec::parse(token);
        if (!fault.has_value()) {
          std::cerr << "error: --faults token '" << token
                    << "' is not a fault spec (none | drop<p> | "
                       "crash<f>@<cap> | skew<s>, joined with '+')\n";
          return 2;
        }
        spec.faults.push_back(*fault);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  spec.cell_deadline_ms = args.get_double("deadline-ms", 0.0);
  spec.max_cells = static_cast<int>(args.get_int("cell-limit", 0));
  spec.threads = static_cast<int>(args.get_int("threads", 0));

  const std::string trace_path = args.get_string("trace", "");
  const auto trace_ring_kb =
      static_cast<std::size_t>(args.get_int("trace-ring-kb", 4096));
  if (!trace_path.empty()) obs::Tracer::enable(trace_ring_kb);
  // Latency histograms are always on for the bench binary: they never touch
  // records (byte-identity is a store property) and their enabled cost is
  // two clock reads per hot span (docs/observability.md).
  obs::Histogram::enable();

  lab::SweepResult result;
  double baseline_ms = 0.0;
  try {
    if (store_dir.empty()) {
      // Single-threaded baseline vs the pool (speedup needs >= 2 real
      // cores; the records themselves are identical either way).
      lab::SweepSpec baseline = spec;
      baseline.threads = 1;
      baseline_ms = sweep(baseline).wall_ms;
      result = sweep(spec);
    } else {
      lab::StoreOptions store_options;
      store_options.dir = store_dir;
      store_options.resume = resume;
      store_options.claim = claim;
      store_options.claim_owner = args.get_string("owner", "");
      store_options.claim_range_cells =
          static_cast<std::uint64_t>(args.get_int("claim-range", 0));
      store_options.claim_ttl_ms =
          static_cast<std::uint64_t>(args.get_int("claim-ttl-ms", 0));
      result = lab::run_sweep(spec, store_options);
    }
  } catch (const std::exception& e) {
    // Store/spec problems (missing manifest, fingerprint mismatch, corrupt
    // shards) are user-facing errors, not crashes.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (!trace_path.empty()) {
    // Disable first so the drain sees quiescent rings (worker threads have
    // joined inside sweep(); disabling stops any later emit racing it).
    obs::Tracer::disable();
    std::ofstream trace_out(trace_path);
    obs::Tracer::write_chrome_trace(trace_out);
    if (!trace_out) {
      std::cerr << "error: could not write " << trace_path << "\n";
      return 2;
    }
    // Trace diagnostics go to stderr: stdout carries the summary table and
    // is routinely piped/parsed.
    std::cerr << "wrote trace to " << trace_path << " ("
              << obs::Tracer::dropped_events()
              << " events dropped by full rings; raise --trace-ring-kb if "
                 "nonzero)\n";
  }

  std::cout << "\n";
  lab::summary_table(result).print(std::cout);
  std::cout << "\ncells: " << result.cells_run << " run, "
            << result.cells_resumed << " resumed, " << result.cells_skipped
            << " regime-skipped, " << result.cells_failed << " failed\n";
  if (result.cells_failed > 0) {
    // Surface the first failure inline so a red CI run names the offending
    // cell without anyone grepping the store.
    for (const lab::RunRecord& r : result.records) {
      if (r.skipped || (r.error.empty() && r.checker_passed)) continue;
      std::cout << "first failure: " << r.solver << " on " << r.graph
                << " under " << r.regime << " (seed " << r.seed << "): "
                << (r.error.empty() ? "checker failed" : r.error) << "\n";
      break;
    }
  }
  if (store_dir.empty()) {
    const double speedup =
        result.wall_ms > 0 ? baseline_ms / result.wall_ms : 1.0;
    std::cout << "wall: " << fmt(baseline_ms, 1) << " ms on 1 thread, "
              << fmt(result.wall_ms, 1) << " ms on " << result.threads_used
              << " threads (" << fmt(speedup, 2) << "x, "
              << std::thread::hardware_concurrency() << " hw threads)\n";
  } else {
    std::cout << "wall: " << fmt(result.wall_ms, 1) << " ms on "
              << result.threads_used << " threads; store: " << store_dir
              << (resume ? " (resumed)" : claim ? " (claimed drain)" : "")
              << "\n";
  }

  if (args.has("profile")) {
    const std::vector<ProfileRow> rows = profile_rows(result);
    print_profile(rows, std::cout);
    const std::string profile_path =
        args.get_string("profile-out", "BENCH_profile.json");
    if (!write_profile_json(rows, profile_path)) {
      std::cerr << "error: could not write " << profile_path << "\n";
      return 2;
    }
    std::cout << "wrote profile breakdown to " << profile_path << "\n";
    if (!store_dir.empty()) {
      // Sidecar copy inside the store so rlocald's /profile can serve the
      // phase attribution: record frames deliberately never carry phase
      // data (byte-identity), so the daemon reads these per-owner files
      // instead. The name never matches the shard-*.jsonl glob, keeping
      // store readers and --diff oblivious.
      std::string owner = args.get_string("owner", "");
      if (owner.empty()) owner = "pid-" + std::to_string(::getpid());
      const std::string sidecar = store_dir + "/profile-" +
                                  service::sanitize_owner(owner) + ".json";
      if (!write_profile_json(rows, sidecar)) {
        std::cerr << "error: could not write " << sidecar << "\n";
        return 2;
      }
    }
  }

  std::ofstream out(out_path);
  lab::emit_json(result, out);
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << result.records.size() << " records to "
            << out_path << "\n";
  if (result.cells_failed > 0 && args.has("allow-failures")) {
    std::cout << "ignoring " << result.cells_failed
              << " failed cells (--allow-failures)\n";
    return 0;
  }
  return result.cells_failed == 0 ? 0 : 1;
}
