// rlocal_top -- a dependency-free terminal dashboard over a running rlocald
// (docs/service.md). Polls /progress, /eta, /workers and /stragglers and
// renders per-store progress bars, the fleet's worker table, straggler
// callouts and the completion forecast.
//
//   ./rlocal_top --port=PORT [--host=127.0.0.1] [--interval-ms=1000]
//                [--once] [--retries=5]
//
// --once renders a single frame without the ANSI screen clear and exits
// (exit 1 when the daemon is unreachable) -- the CI smoke mode. Without it
// the dashboard redraws every interval until interrupted. Unreachable
// daemons are retried --retries times with exponential backoff before the
// frame is declared lost, so a dashboard started a moment before rlocald
// finishes binding does not die on the first refused connect.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/cli.hpp"
#include "support/json.hpp"

namespace {

using rlocal::JsonValue;

/// One blocking GET; nullopt on connect/send failure. The server always
/// closes the connection after the response (the read-until-EOF contract
/// the in-repo HttpServer guarantees).
std::optional<std::string> http_get(const std::string& host, int port,
                                    const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// http_get with bounded retry: transient connect/read failures (daemon
/// still binding its port, a restart mid-poll) are retried with
/// exponential backoff (100ms, 200ms, ... doubling per attempt) instead of
/// tearing down the dashboard on the first refused loopback request. Only
/// after `attempts` consecutive failures does it give up, and then it says
/// so once with the full retry history rather than failing silently.
std::optional<std::string> http_get_retry(const std::string& host, int port,
                                          const std::string& target,
                                          int attempts) {
  auto backoff = std::chrono::milliseconds(100);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    std::optional<std::string> response = http_get(host, port, target);
    if (response.has_value()) return response;
    if (attempt == attempts) break;
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
  std::cerr << "rlocal_top: cannot reach " << host << ":" << port << target
            << " after " << attempts
            << " attempts (exponential backoff); is rlocald running and "
               "listening on this port?\n";
  return std::nullopt;
}

/// Parses a JSONL response body (one JSON object per line) after stripping
/// the HTTP header block; non-200 responses and torn lines yield nothing.
std::vector<JsonValue> jsonl_rows(const std::optional<std::string>& response) {
  std::vector<JsonValue> rows;
  if (!response.has_value()) return rows;
  if (response->find("HTTP/1.1 200") != 0) return rows;
  const std::size_t body_at = response->find("\r\n\r\n");
  if (body_at == std::string::npos) return rows;
  std::istringstream body(response->substr(body_at + 4));
  std::string line;
  while (std::getline(body, line)) {
    if (line.empty()) continue;
    if (std::optional<JsonValue> row = rlocal::json_try_parse(line);
        row.has_value() && row->is_object()) {
      rows.push_back(std::move(*row));
    }
  }
  return rows;
}

std::string bar(double pct, int width) {
  const int filled = static_cast<int>(
      std::lround(std::clamp(pct, 0.0, 100.0) / 100.0 * width));
  std::string out(static_cast<std::size_t>(filled), '#');
  out.append(static_cast<std::size_t>(width - filled), '.');
  return out;
}

std::string duration_text(double ms) {
  if (ms < 0) return "?";
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  if (ms < 1000) {
    out << ms << "ms";
  } else if (ms < 60'000) {
    out << ms / 1000.0 << "s";
  } else if (ms < 3'600'000) {
    out << ms / 60'000.0 << "m";
  } else {
    out << ms / 3'600'000.0 << "h";
  }
  return out.str();
}

/// Store names get long; the fingerprint prefix is the stable short handle.
std::string short_store(const JsonValue& row) {
  std::string fp = row.string_or("store", "");
  if (fp.empty()) fp = row.string_or("fingerprint", "?");
  return fp.size() > 12 ? fp.substr(0, 12) : fp;
}

void render(std::ostream& out, const std::string& host, int port,
            const std::vector<JsonValue>& progress,
            const std::vector<JsonValue>& etas,
            const std::vector<JsonValue>& workers,
            const std::vector<JsonValue>& stragglers) {
  out << "rlocal top -- " << host << ":" << port << "\n\n";

  out << "sweeps:\n";
  if (progress.empty()) out << "  (no stores attached)\n";
  for (const JsonValue& row : progress) {
    const double pct = row.number_or("pct_done", 0.0);
    out << "  " << short_store(row) << "  [" << bar(pct, 30) << "] "
        << std::fixed << std::setprecision(1) << pct << "%  "
        << static_cast<std::uint64_t>(row.number_or("run_cells", 0)) << "/"
        << static_cast<std::uint64_t>(row.number_or("total_cells", 0))
        << " cells";
    const auto failed =
        static_cast<std::uint64_t>(row.number_or("failed_cells", 0));
    if (failed > 0) out << "  FAILED=" << failed;
    out << "\n";
  }

  out << "\neta:\n";
  if (etas.empty()) out << "  (none)\n";
  for (const JsonValue& row : etas) {
    out << "  " << short_store(row) << "  remaining="
        << static_cast<std::uint64_t>(row.number_or("remaining_cells", 0))
        << "  workers="
        << static_cast<std::uint64_t>(row.number_or("active_workers", 0))
        << "  ms/cell=" << duration_text(row.number_or("ms_per_cell", -1.0))
        << "  eta=" << duration_text(row.number_or("eta_ms", -1.0)) << "\n";
  }

  out << "\nworkers:\n";
  out << "  " << std::left << std::setw(20) << "owner" << std::right
      << std::setw(8) << "active" << std::setw(8) << "done" << std::setw(10)
      << "cells" << std::setw(10) << "inflight" << std::setw(12) << "hb_age"
      << std::setw(12) << "ms/cell" << "  state\n";
  if (workers.empty()) out << "  (no workers observed)\n";
  for (const JsonValue& row : workers) {
    out << "  " << std::left << std::setw(20)
        << row.string_or("owner", "?") << std::right << std::setw(8)
        << static_cast<std::uint64_t>(row.number_or("ranges_active", 0))
        << std::setw(8)
        << static_cast<std::uint64_t>(row.number_or("ranges_done", 0))
        << std::setw(10)
        << static_cast<std::uint64_t>(row.number_or("cells_done", 0))
        << std::setw(10)
        << static_cast<std::uint64_t>(row.number_or("cells_in_flight", 0))
        << std::setw(12)
        << duration_text(row.number_or("heartbeat_age_ms", -1.0))
        << std::setw(12)
        << duration_text(row.number_or("ewma_ms_per_cell", -1.0)) << "  "
        << (row.bool_or("stale", false) ? "STALE" : "ok") << "\n";
  }

  out << "\nstragglers:\n";
  if (stragglers.empty()) out << "  (none)\n";
  for (const JsonValue& row : stragglers) {
    out << "  " << row.string_or("owner", "?") << " range "
        << static_cast<std::uint64_t>(row.number_or("range", 0)) << " ["
        << static_cast<std::uint64_t>(row.number_or("cells_begin", 0)) << ", "
        << static_cast<std::uint64_t>(row.number_or("cells_end", 0)) << ")  "
        << static_cast<std::uint64_t>(row.number_or("cells_remaining", 0))
        << " cells left, idle "
        << duration_text(row.number_or("age_ms", 0.0)) << " (threshold "
        << duration_text(row.number_or("threshold_ms", 0.0)) << ")\n";
  }
  out << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  const rlocal::CliArgs args(argc, argv);
  const int port = static_cast<int>(args.get_int("port", 0));
  if (port <= 0) {
    std::cerr << "usage: rlocal_top --port=PORT [--host=127.0.0.1]\n"
              << "                  [--interval-ms=1000] [--once]"
                 " [--retries=5]\n";
    return 2;
  }
  const std::string host = args.get_string("host", "127.0.0.1");
  const auto interval =
      std::chrono::milliseconds(std::max<std::int64_t>(
          50, args.get_int("interval-ms", 1000)));
  const bool once = args.has("once");
  const int attempts = static_cast<int>(std::clamp<std::int64_t>(
      args.get_int("retries", 5), 1, 20));

  for (;;) {
    const std::optional<std::string> progress_raw =
        http_get_retry(host, port, "/progress", attempts);
    if (!progress_raw.has_value()) {
      if (once) return 1;
      std::this_thread::sleep_for(interval);
      continue;
    }
    // The follow-up endpoints share the daemon we just reached; a failure
    // here is a race with shutdown, so one attempt each is enough and the
    // sections render as empty.
    const std::vector<JsonValue> progress = jsonl_rows(progress_raw);
    const std::vector<JsonValue> etas =
        jsonl_rows(http_get(host, port, "/eta"));
    const std::vector<JsonValue> workers =
        jsonl_rows(http_get(host, port, "/workers"));
    const std::vector<JsonValue> stragglers =
        jsonl_rows(http_get(host, port, "/stragglers"));

    std::ostringstream frame;
    render(frame, host, port, progress, etas, workers, stragglers);
    if (!once) std::cout << "\x1b[H\x1b[2J";  // home + clear, then redraw
    std::cout << frame.str();
    if (once) return 0;
    std::this_thread::sleep_for(interval);
  }
}
