// Frame codec for the sweep store: one RunRecord per JSONL line.
//
// A frame is a single compact JSON object terminated by '\n', written with
// a fixed key order and %.17g doubles so that encode(decode(frame)) is
// byte-identical -- the property the crash-resume tests and the CI smoke
// diff rely on. Optional fields follow lab::emit_json's conventions (empty
// variant/error and negative observables are omitted). The typed
// `RunRecord::artifact` payload does NOT survive the store (it is an
// in-process convenience); `resumed` is a read-side annotation and is never
// written.
//
// Each frame carries two store-level coordinates ahead of the record:
//   cell_index -- the cell's position in the sweep's deterministic grid
//                 enumeration (the merge key);
//   cell_seed  -- the 6-coordinate mixed master seed (lab::cell_seed,
//                 incl. the bandwidth axis), a redundant integrity check
//                 against grid drift.
//
// The record body includes the typed cost block (lab::RunRecord::cost,
// src/cost/) with a fixed key order and negative "not measured" scalars
// omitted, preserving the byte-identity property.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "lab/record.hpp"
#include "support/json.hpp"

namespace rlocal::store {

/// Writes one record's fields in the canonical fixed order (shared by
/// shard frames and lab::emit_json whole-run artifacts, so the two formats
/// diff cleanly). `include_wall_ms` gates the one nondeterministic field;
/// `include_resumed` additionally emits the read-side "resumed" marker
/// (whole-run artifacts only -- frames never persist it).
void write_record_fields(JsonWriter& w, const lab::RunRecord& r,
                         bool include_wall_ms, bool include_resumed = false);

struct StoredRecord {
  std::uint64_t cell_index = 0;
  std::uint64_t cell_seed = 0;
  lab::RunRecord record;
};

/// Serializes one frame, without the trailing newline.
std::string encode_frame(const StoredRecord& stored);

/// Parses one frame line (newline already stripped); nullopt on any
/// malformed input -- the torn-final-frame tolerance hook.
std::optional<StoredRecord> decode_frame(std::string_view line);

/// Canonical record spelling for comparisons: the frame body with the
/// store coordinates and, when `include_wall_ms` is false, the wall-clock
/// field dropped (wall time is the one legitimately nondeterministic
/// field, so byte-identity checks exclude it).
std::string canonical_record_json(const lab::RunRecord& record,
                                  bool include_wall_ms = false);

}  // namespace rlocal::store
