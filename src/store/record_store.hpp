// RecordStore: the sweep lab's durable, resumable record persistence.
//
// Layout of a store directory (full spec in docs/store_format.md):
//
//   manifest.json   -- store identity: schema tag, the canonical SweepSpec
//                      fingerprint (store/fingerprint.hpp), total storable
//                      cell count, advisory completion count, and a
//                      human-facing spec echo. Rewritten atomically
//                      (tmp + rename) on finalize.
//   shard-<k>.jsonl -- append-only record frames (store/record_io.hpp),
//                      one shard per worker thread, fsync'd per frame so a
//                      crash loses at most the frames in flight.
//
// Crash tolerance: a torn final frame (partial line, or a complete line
// that does not decode) is silently dropped on read and truncated away
// before appending -- the affected cell is simply re-run on resume. A valid
// frame *after* an invalid one is real corruption and throws.
//
// Concurrency: each ShardWriter owns its file and must be used by a single
// thread (the sweep gives one shard per worker); readers never lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/record_io.hpp"

namespace rlocal::store {

// /3: frames may carry the fault coordinate, the quality score and the
// cost block's faults section, and the manifest echoes the fault axis
// (docs/faults.md). Reliable cells serialize none of the new fields, so /3
// frames of a no-fault grid are byte-identical to /2 frames -- only the
// manifest tag moves. /2: typed cost block + bandwidth coordinate (ISSUE
// 4). Pre-/3 stores cannot be resumed (matching the /1 -> /2 precedent).
inline constexpr const char* kStoreSchema = "rlocal.store/3";

struct StoreManifest {
  std::string fingerprint;  ///< 16-hex canonical spec fingerprint
  /// Storable cells in the grid (non-skipped; skipped cells are free to
  /// recompute and are never persisted).
  std::uint64_t total_cells = 0;
  /// Advisory: updated on finalize only. After a crash the truth is the
  /// shards themselves (read_all), never this count.
  std::uint64_t completed_cells = 0;
  // Human-facing spec echo (the fingerprint is authoritative).
  std::vector<std::string> solvers;
  std::vector<std::string> graphs;
  std::vector<std::string> regimes;
  std::vector<std::string> variants;
  std::vector<int> bandwidths;  ///< bandwidth axis; empty = implicit {0}
  /// Fault axis (canonical FaultSpec names, "none" for the reliable
  /// coordinate); empty = implicit {none}.
  std::vector<std::string> faults;
  std::vector<std::uint64_t> seeds;
  double cell_deadline_ms = 0;
  /// Randomness backend active when the store was created (rnd/dispatch.hpp
  /// name, e.g. "portable" or "pclmul"); "" when the store predates the
  /// field. Informational provenance only -- every backend draws
  /// byte-identical values, so it is deliberately NOT part of the
  /// fingerprint and never blocks a resume on different hardware.
  std::string rnd_backend;
};

class RecordStore {
 public:
  /// Single-thread append handle for one shard file. Opens in append mode
  /// after truncating any torn tail; every append is written and fsync'd
  /// before returning, so a frame that append() returned from survives any
  /// later crash.
  class ShardWriter {
   public:
    ShardWriter(ShardWriter&& other) noexcept;
    ShardWriter& operator=(ShardWriter&& other) noexcept;
    ShardWriter(const ShardWriter&) = delete;
    ShardWriter& operator=(const ShardWriter&) = delete;
    ~ShardWriter();

    void append(const StoredRecord& stored);

   private:
    friend class RecordStore;
    ShardWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
    std::string path_;
    int fd_ = -1;
  };

  /// Creates `dir` (recursively) as a fresh store: existing shard files are
  /// removed and a new manifest written. Destroys any previous run's
  /// records in that directory -- resuming instead is StoreOptions::resume.
  static RecordStore create(const std::string& dir, StoreManifest manifest);

  /// Opens an existing store; throws InvariantError when the directory has
  /// no parseable manifest.
  static RecordStore open(const std::string& dir);

  /// True when `dir` contains a store manifest.
  static bool exists(const std::string& dir);

  const std::string& dir() const { return dir_; }
  const StoreManifest& manifest() const { return manifest_; }

  /// Merges every shard back into grid order (sorted by cell_index,
  /// deduplicated last-write-wins). Tolerates one torn tail per shard.
  std::vector<StoredRecord> read_all() const;

  /// Opens shard `index` ("shard-<index>.jsonl") for appending.
  ShardWriter shard_writer(int index) const;

  /// Opens shard "shard-<name>.jsonl" for appending. Multi-process drains
  /// (service/claims.hpp) name shards by claim owner so concurrent writers
  /// never collide; `name` must be non-empty [A-Za-z0-9_.-].
  ShardWriter shard_writer(const std::string& name) const;

  /// Rewrites the manifest with the final completion count (atomic).
  void finalize(std::uint64_t completed_cells);

 private:
  RecordStore(std::string dir, StoreManifest manifest)
      : dir_(std::move(dir)), manifest_(std::move(manifest)) {}

  void write_manifest() const;

  std::string dir_;
  StoreManifest manifest_;
};

}  // namespace rlocal::store
