// Umbrella header for the sweep persistence subsystem: the sharded JSONL
// RecordStore, the frame codec, and the canonical SweepSpec fingerprint.
//
//   #include "store/store.hpp"
//
//   rlocal::lab::StoreOptions store{"out/sweep_store", /*resume=*/true};
//   auto result = rlocal::lab::run_sweep(spec, store);  // durable + resumed
//
//   auto records = rlocal::store::RecordStore::open("out/sweep_store")
//                      .read_all();                     // merged grid order
//
// Format specification: docs/store_format.md.
#pragma once

#include "store/fingerprint.hpp"
#include "store/record_io.hpp"
#include "store/record_store.hpp"
