#include "store/record_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"

namespace rlocal::store {
namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "manifest.json";
constexpr const char* kShardPrefix = "shard-";
constexpr const char* kShardSuffix = ".jsonl";

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw InvariantError("sweep store: " + what + " '" + path +
                       "': " + std::strerror(errno));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RLOCAL_CHECK(in.good(), "sweep store: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) fail_errno("open for fsync", path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail_errno("fsync", path);
  }
  ::close(fd);
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Splits a shard's bytes into decoded frames. Only a torn *tail* is
/// tolerated: the valid prefix ends at the first line that is incomplete
/// (no trailing '\n') or undecodable; a decodable frame after that point
/// means the shard was corrupted some other way and throws.
struct ShardScan {
  std::vector<StoredRecord> frames;
  std::size_t valid_prefix_bytes = 0;  ///< offset a writer may append at
};

ShardScan scan_shard(const std::string& path, const std::string& bytes) {
  ShardScan scan;
  std::size_t line_start = 0;
  bool tail_torn = false;
  while (line_start < bytes.size()) {
    const std::size_t newline = bytes.find('\n', line_start);
    const bool complete = newline != std::string::npos;
    const std::string_view line(bytes.data() + line_start,
                                (complete ? newline : bytes.size()) -
                                    line_start);
    std::optional<StoredRecord> frame =
        complete ? decode_frame(line) : std::nullopt;
    if (frame.has_value()) {
      RLOCAL_CHECK(!tail_torn, "sweep store: valid frame after a corrupt "
                               "one in '" + path + "'");
      scan.frames.push_back(std::move(*frame));
      scan.valid_prefix_bytes = newline + 1;
    } else if (!line.empty()) {
      tail_torn = true;  // dropped; the cell will simply be re-run
    }
    if (!complete) break;
    line_start = newline + 1;
  }
  return scan;
}

std::vector<std::string> shard_paths(const std::string& dir) {
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kShardPrefix, 0) == 0 &&
        name.size() > std::strlen(kShardSuffix) &&
        name.compare(name.size() - std::strlen(kShardSuffix),
                     std::strlen(kShardSuffix), kShardSuffix) == 0) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

void write_manifest_json(std::ostream& out, const StoreManifest& manifest) {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", kStoreSchema);
  w.field("fingerprint", manifest.fingerprint);
  w.field("total_cells", manifest.total_cells);
  w.field("completed_cells", manifest.completed_cells);
  if (!manifest.rnd_backend.empty()) {
    w.field("rnd_backend", manifest.rnd_backend);
  }
  w.key("spec");
  w.begin_object();
  const auto string_array = [&w](const char* key,
                                 const std::vector<std::string>& items) {
    w.key(key);
    w.begin_array();
    for (const std::string& item : items) w.value(item);
    w.end_array();
  };
  string_array("solvers", manifest.solvers);
  string_array("graphs", manifest.graphs);
  string_array("regimes", manifest.regimes);
  string_array("variants", manifest.variants);
  w.key("bandwidth_bits");
  w.begin_array();
  for (const int bandwidth : manifest.bandwidths) w.value(bandwidth);
  w.end_array();
  // Written only when the axis was spelled out: a default (implicit
  // reliable-network) grid's manifest carries no faults key at all, in the
  // same spirit as the frames omitting the fault coordinate.
  if (!manifest.faults.empty()) string_array("faults", manifest.faults);
  w.key("seeds");
  w.begin_array();
  for (const std::uint64_t seed : manifest.seeds) w.value(seed);
  w.end_array();
  w.field("cell_deadline_ms", manifest.cell_deadline_ms);
  w.end_object();
  w.end_object();
  out << '\n';
}

StoreManifest parse_manifest(const std::string& path, const std::string& text) {
  const JsonValue root = json_parse(text);  // throws with offset info
  RLOCAL_CHECK(root.is_object(), "sweep store: manifest '" + path +
                                     "' is not a JSON object");
  RLOCAL_CHECK(root.string_or("schema", "") == kStoreSchema,
               "sweep store: manifest '" + path + "' has schema '" +
                   root.string_or("schema", "<missing>") + "', expected '" +
                   kStoreSchema + "'");
  StoreManifest manifest;
  manifest.fingerprint = root.string_or("fingerprint", "");
  RLOCAL_CHECK(!manifest.fingerprint.empty(),
               "sweep store: manifest '" + path + "' has no fingerprint");
  const JsonValue* total = root.find("total_cells");
  if (total != nullptr && total->is_number()) {
    manifest.total_cells = total->as_uint64();
  }
  const JsonValue* completed = root.find("completed_cells");
  if (completed != nullptr && completed->is_number()) {
    manifest.completed_cells = completed->as_uint64();
  }
  manifest.rnd_backend = root.string_or("rnd_backend", "");
  if (const JsonValue* spec = root.find("spec");
      spec != nullptr && spec->is_object()) {
    const auto strings = [spec](const char* key) {
      std::vector<std::string> out;
      if (const JsonValue* array = spec->find(key);
          array != nullptr && array->is_array()) {
        for (const JsonValue& item : array->as_array()) {
          if (item.is_string()) out.push_back(item.as_string());
        }
      }
      return out;
    };
    manifest.solvers = strings("solvers");
    manifest.graphs = strings("graphs");
    manifest.regimes = strings("regimes");
    manifest.variants = strings("variants");
    manifest.faults = strings("faults");
    if (const JsonValue* bandwidths = spec->find("bandwidth_bits");
        bandwidths != nullptr && bandwidths->is_array()) {
      for (const JsonValue& bandwidth : bandwidths->as_array()) {
        if (bandwidth.is_number()) {
          manifest.bandwidths.push_back(
              static_cast<int>(bandwidth.as_int64()));
        }
      }
    }
    if (const JsonValue* seeds = spec->find("seeds");
        seeds != nullptr && seeds->is_array()) {
      for (const JsonValue& seed : seeds->as_array()) {
        if (seed.is_number()) manifest.seeds.push_back(seed.as_uint64());
      }
    }
    manifest.cell_deadline_ms = spec->number_or("cell_deadline_ms", 0.0);
  }
  return manifest;
}

}  // namespace

RecordStore::ShardWriter::ShardWriter(ShardWriter&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

RecordStore::ShardWriter& RecordStore::ShardWriter::operator=(
    ShardWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

RecordStore::ShardWriter::~ShardWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void RecordStore::ShardWriter::append(const StoredRecord& stored) {
  RLOCAL_CHECK(fd_ >= 0, "sweep store: append on a moved-from ShardWriter");
  const std::string line = encode_frame(stored) + '\n';
  write_all(fd_, line.data(), line.size(), path_);
  {
    // The fsync dominates append latency on most filesystems, so it gets
    // its own span; the counters feed /metrics' durability rates.
    obs::ObsSpan span("store", "shard_fsync");
    if (::fsync(fd_) != 0) fail_errno("fsync", path_);
  }
  static obs::Counter& records = obs::counter("rlocal_records_written_total");
  static obs::Counter& fsyncs = obs::counter("rlocal_store_fsync_total");
  records.add();
  fsyncs.add();
}

RecordStore RecordStore::create(const std::string& dir,
                                StoreManifest manifest) {
  RLOCAL_CHECK(!dir.empty(), "sweep store: directory must not be empty");
  fs::create_directories(dir);
  // Fresh start: a previous run's shards in this directory would otherwise
  // be merged into the new run's record set.
  for (const std::string& shard : shard_paths(dir)) fs::remove(shard);
  RecordStore store(dir, std::move(manifest));
  store.write_manifest();
  return store;
}

RecordStore RecordStore::open(const std::string& dir) {
  const std::string path = (fs::path(dir) / kManifestName).string();
  RLOCAL_CHECK(fs::exists(path), "sweep store: no manifest at '" + path +
                                     "' (nothing to resume)");
  return RecordStore(dir, parse_manifest(path, read_file(path)));
}

bool RecordStore::exists(const std::string& dir) {
  return fs::exists(fs::path(dir) / kManifestName);
}

std::vector<StoredRecord> RecordStore::read_all() const {
  std::map<std::uint64_t, StoredRecord> merged;  // grid order
  for (const std::string& path : shard_paths(dir_)) {
    ShardScan scan = scan_shard(path, read_file(path));
    for (StoredRecord& frame : scan.frames) {
      merged[frame.cell_index] = std::move(frame);  // last-write-wins
    }
  }
  std::vector<StoredRecord> out;
  out.reserve(merged.size());
  for (auto& [index, frame] : merged) out.push_back(std::move(frame));
  return out;
}

RecordStore::ShardWriter RecordStore::shard_writer(int index) const {
  RLOCAL_CHECK(index >= 0, "sweep store: shard index must be >= 0");
  return shard_writer(std::to_string(index));
}

RecordStore::ShardWriter RecordStore::shard_writer(
    const std::string& name) const {
  RLOCAL_CHECK(!name.empty(), "sweep store: shard name must not be empty");
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '.' ||
                    ch == '-';
    RLOCAL_CHECK(ok, "sweep store: shard name '" + name +
                         "' has characters outside [A-Za-z0-9_.-]");
  }
  const std::string path =
      (fs::path(dir_) / (kShardPrefix + name + kShardSuffix)).string();
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) fail_errno("open", path);
  // Truncate a torn tail so appended frames never fuse with partial bytes.
  std::size_t keep = 0;
  if (fs::exists(path)) {
    keep = scan_shard(path, read_file(path)).valid_prefix_bytes;
  }
  if (::ftruncate(fd, static_cast<off_t>(keep)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    fail_errno("truncate", path);
  }
  return ShardWriter(path, fd);
}

void RecordStore::finalize(std::uint64_t completed_cells) {
  manifest_.completed_cells = completed_cells;
  write_manifest();
}

void RecordStore::write_manifest() const {
  const std::string path = (fs::path(dir_) / kManifestName).string();
  // Pid- and call-qualified tmp: concurrent finalizes from a claimed drain
  // (other processes, or claimer threads within one) must not share a
  // scratch file -- one's rename would yank it out from under the other.
  // The rename itself is atomic either way.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(++tmp_counter);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    RLOCAL_CHECK(out.good(), "sweep store: cannot write '" + tmp + "'");
    write_manifest_json(out, manifest_);
    out.flush();
    RLOCAL_CHECK(out.good(), "sweep store: short write to '" + tmp + "'");
  }
  fsync_path(tmp, /*directory=*/false);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  RLOCAL_CHECK(!ec, "sweep store: rename '" + tmp + "' -> '" + path +
                        "': " + ec.message());
  fsync_path(dir_, /*directory=*/true);
}

}  // namespace rlocal::store
