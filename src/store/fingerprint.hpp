// Canonical SweepSpec fingerprint: a 64-bit digest of everything that
// determines a sweep's record set -- the resolved solver list, each graph's
// full structure (not just its name), regime names (pool-table regimes
// already fold their table into the name), seeds, params, the variant axis,
// keep_unsupported, and the per-cell deadline. Execution knobs that cannot
// change the records (threads, max_cells) are deliberately excluded, so a
// run may be resumed with a different worker count.
//
// The fingerprint gates resume: a store written under one spec refuses to
// accept records for another (see store/record_store.hpp). It is the
// content-addressing rule documented in docs/store_format.md -- change the
// serialization here and every existing store becomes unreadable on
// purpose.
#pragma once

#include <cstdint>
#include <string>

#include "lab/registry.hpp"
#include "lab/sweep.hpp"

namespace rlocal::store {

/// Digest of one graph's structure: node count, adjacency, identifiers.
std::uint64_t graph_fingerprint(const Graph& g);

/// Digest of the whole sweep grid. Empty spec.solvers resolves to every
/// solver in `registry` (the same rule run_sweep applies), so the
/// fingerprint is stable across registry growth only when solvers are
/// pinned explicitly. Lazy zoo entries are built once here and dropped.
std::uint64_t sweep_fingerprint(const lab::Registry& registry,
                                const lab::SweepSpec& spec);

/// Canonical 16-digit lower-case hex spelling used inside manifests.
std::string fingerprint_hex(std::uint64_t fingerprint);

}  // namespace rlocal::store
