#include "store/fingerprint.hpp"

#include <cstdio>

namespace rlocal::store {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// Running FNV-1a digest. Word feeds are byte-decomposed little-endian so
/// the digest is platform-independent.
class Digest {
 public:
  void feed_byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= kFnvPrime;
  }
  void feed(std::string_view text) {
    for (const char ch : text) feed_byte(static_cast<unsigned char>(ch));
    feed_byte(0xFF);  // separator: feed("ab"),feed("c") != feed("a"),feed("bc")
  }
  void feed(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      feed_byte(static_cast<unsigned char>(word >> (8 * i)));
    }
  }
  void feed(double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    feed(std::string_view(buf));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace

std::uint64_t graph_fingerprint(const Graph& g) {
  Digest digest;
  digest.feed(static_cast<std::uint64_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    digest.feed(g.id(v));
    for (const NodeId u : g.neighbors(v)) {
      digest.feed(static_cast<std::uint64_t>(u));
    }
    digest.feed_byte(0xFE);  // row separator
  }
  return digest.value();
}

std::uint64_t sweep_fingerprint(const lab::Registry& registry,
                                const lab::SweepSpec& spec) {
  Digest digest;
  // /2 adds the bandwidth axis (and implies cost-block frames); bumping the
  // tag retires every /1-era store from resume on purpose -- their frames
  // carry no cost blocks, so mixing them into a /3 record set would produce
  // records downstream validation rejects.
  digest.feed("rlocal.sweep_fingerprint/2");

  digest.feed("solvers");
  if (spec.solvers.empty()) {
    for (const std::string& name : registry.solver_names()) digest.feed(name);
  } else {
    for (const std::string& name : spec.solvers) digest.feed(name);
  }

  digest.feed("graphs");
  for (const ZooEntry& entry : spec.graphs) {
    digest.feed(entry.name);
    if (entry.factory && entry.graph.num_nodes() == 0) {
      const Graph built = entry.factory();
      digest.feed(graph_fingerprint(built));
    } else {
      digest.feed(graph_fingerprint(entry.graph));
    }
  }

  digest.feed("regimes");
  for (const Regime& regime : spec.regimes) digest.feed(regime.name());

  digest.feed("seeds");
  for (const std::uint64_t seed : spec.seeds) digest.feed(seed);

  digest.feed("params");
  for (const auto& [key, value] : spec.params) {  // std::map: sorted
    digest.feed(key);
    digest.feed(value);
  }

  digest.feed("variants");
  for (const lab::ParamVariant& variant : spec.variants) {
    digest.feed(variant.name);
    for (const auto& [key, value] : variant.params) {
      digest.feed(key);
      digest.feed(value);
    }
  }

  // Resolved like run_sweep resolves it: an empty axis is the single
  // implicit coordinate 0, so spelling the default explicitly fingerprints
  // identically (the record sets are identical).
  digest.feed("bandwidths");
  if (spec.bandwidths.empty()) {
    digest.feed(static_cast<std::uint64_t>(0));
  } else {
    for (const int bandwidth : spec.bandwidths) {
      digest.feed(static_cast<std::uint64_t>(bandwidth));
    }
  }

  // The fault axis is fed only when non-default (spelled out and not
  // exactly {none}): the implicit reliable network must fingerprint like
  // the axis never existed, so every pre-fault-plane store keeps resuming.
  // Spelling {none} explicitly is likewise the identical record set.
  const bool default_faults =
      spec.faults.empty() ||
      (spec.faults.size() == 1 && !spec.faults[0].enabled());
  if (!default_faults) {
    digest.feed("faults");
    for (const FaultSpec& fault : spec.faults) digest.feed(fault.name());
  }

  digest.feed("policy");
  digest.feed(static_cast<std::uint64_t>(spec.keep_unsupported ? 1 : 0));
  digest.feed(spec.cell_deadline_ms);

  return digest.value();
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

}  // namespace rlocal::store
