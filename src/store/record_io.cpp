#include "store/record_io.hpp"

#include <algorithm>
#include <climits>
#include <sstream>

#include "support/assert.hpp"
#include "support/json.hpp"

namespace rlocal::store {

/// The one definition of the frame's record fields (fixed order; see file
/// comment of record_io.hpp). emit_json in lab/emit.cpp reuses it for
/// whole-run artifacts (with the read-side "resumed" marker included).
void write_record_fields(JsonWriter& w, const lab::RunRecord& r,
                         bool include_wall_ms, bool include_resumed) {
  w.field("solver", r.solver);
  w.field("problem", r.problem);
  w.field("graph", r.graph);
  w.field("regime", r.regime);
  if (!r.variant.empty()) w.field("variant", r.variant);
  if (r.bandwidth_bits > 0) w.field("bandwidth_bits", r.bandwidth_bits);
  // The fault coordinate is "" on the reliable grid, so no-fault frames
  // stay byte-identical to their pre-/3 encoding (docs/faults.md).
  if (!r.fault.empty()) w.field("fault", r.fault);
  w.field("seed", r.seed);
  if (r.skipped) {
    w.field("skipped", true);
    return;
  }
  // Restored-from-store cells carry their original run's observables and
  // wall time; the marker lets downstream aggregation (the CI regression
  // gate) exclude them from per-process timing totals. Never persisted in
  // frames -- it describes how *this* process obtained the record.
  if (include_resumed && r.resumed) w.field("resumed", true);
  w.field("success", r.success);
  w.field("checker_passed", r.checker_passed);
  if (!r.error.empty()) w.field("error", r.error);
  if (r.colors >= 0) w.field("colors", r.colors);
  if (r.iterations >= 0) w.field("iterations", r.iterations);
  if (r.diameter >= 0) w.field("diameter", r.diameter);
  w.field("objective", r.objective);
  // Quality (violation count) exists only on faulted cells; -1 = unset, so
  // reliable frames never carry the key.
  if (r.quality >= 0) w.field("quality", r.quality);
  w.field("shared_seed_bits", r.shared_seed_bits);
  w.field("derived_bits", r.derived_bits);
  if (include_wall_ms) w.field("wall_ms", r.wall_ms);
  // The typed cost block (src/cost/): fixed key order, negatives ("not
  // measured") omitted, so encode(decode(frame)) stays byte-identical.
  // Replaces the pre-/3 top-level "rounds" observable.
  if (r.cost.populated) {
    w.key("cost");
    w.begin_object();
    w.field("model", cost::cost_model_name(r.cost.model));
    if (r.cost.rounds >= 0) w.field("rounds", r.cost.rounds);
    if (r.cost.messages >= 0) w.field("messages", r.cost.messages);
    if (r.cost.total_bits >= 0) w.field("total_bits", r.cost.total_bits);
    if (r.cost.max_message_bits > 0) {
      w.field("max_message_bits", r.cost.max_message_bits);
    }
    w.field("bandwidth_bits", r.cost.bandwidth_bits);
    if (r.cost.engine_runs > 0) w.field("engine_runs", r.cost.engine_runs);
    if (r.cost.msgs_per_round_p50 >= 0) {
      w.field("msgs_p50", r.cost.msgs_per_round_p50);
      w.field("msgs_p95", r.cost.msgs_per_round_p95);
      w.field("msgs_max", r.cost.msgs_per_round_max);
    }
    // Faulted cells always carry the block (even all-zero: "ran under a
    // fault schedule that happened to fire nothing" is itself data);
    // reliable cells never do.
    if (r.cost.faults_active) {
      w.key("faults");
      w.begin_object();
      w.field("dropped_messages", r.cost.faults_dropped_messages);
      w.field("dropped_bits", r.cost.faults_dropped_bits);
      w.field("crashed_nodes", r.cost.faults_crashed_nodes);
      w.field("skewed_deliveries", r.cost.faults_skewed_deliveries);
      w.end_object();
    }
    w.end_object();
  }
  if (!r.metrics.empty()) {
    w.key("metrics");
    w.begin_object();
    for (const auto& [key, value] : r.metrics) w.field(key, value);
    w.end_object();
  }
}

std::string encode_frame(const StoredRecord& stored) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.field("cell_index", stored.cell_index);
  w.field("cell_seed", stored.cell_seed);
  write_record_fields(w, stored.record, /*include_wall_ms=*/true);
  w.end_object();
  return out.str();
}

std::optional<StoredRecord> decode_frame(std::string_view line) {
  const std::optional<JsonValue> parsed = json_try_parse(line);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const JsonValue& v = *parsed;
  const JsonValue* cell_index = v.find("cell_index");
  const JsonValue* cell_seed = v.find("cell_seed");
  const JsonValue* seed = v.find("seed");
  if (cell_index == nullptr || !cell_index->is_number() ||
      cell_seed == nullptr || !cell_seed->is_number() || seed == nullptr ||
      !seed->is_number()) {
    return std::nullopt;
  }
  StoredRecord stored;
  lab::RunRecord& r = stored.record;
  try {
    stored.cell_index = cell_index->as_uint64();
    stored.cell_seed = cell_seed->as_uint64();
    r.seed = seed->as_uint64();
    r.solver = v.string_or("solver", "");
    r.problem = v.string_or("problem", "");
    r.graph = v.string_or("graph", "");
    r.regime = v.string_or("regime", "");
    r.variant = v.string_or("variant", "");
    if (r.solver.empty() || r.graph.empty() || r.regime.empty()) {
      return std::nullopt;
    }
    r.skipped = v.bool_or("skipped", false);
    if (r.skipped) return stored;
    r.success = v.bool_or("success", false);
    r.checker_passed = v.bool_or("checker_passed", false);
    r.error = v.string_or("error", "");
    r.colors = static_cast<int>(v.number_or("colors", -1));
    r.bandwidth_bits = static_cast<int>(v.number_or("bandwidth_bits", 0));
    r.fault = v.string_or("fault", "");
    r.iterations = static_cast<int>(v.number_or("iterations", -1));
    r.diameter = static_cast<int>(v.number_or("diameter", -1));
    r.objective = v.number_or("objective", 0.0);
    r.quality = static_cast<std::int64_t>(v.number_or("quality", -1));
    const JsonValue* shared_bits = v.find("shared_seed_bits");
    const JsonValue* derived_bits = v.find("derived_bits");
    if (shared_bits == nullptr || !shared_bits->is_number() ||
        derived_bits == nullptr || !derived_bits->is_number()) {
      return std::nullopt;
    }
    r.shared_seed_bits = shared_bits->as_uint64();
    r.derived_bits = derived_bits->as_uint64();
    r.wall_ms = v.number_or("wall_ms", 0.0);
    if (const JsonValue* block = v.find("cost");
        block != nullptr && block->is_object()) {
      const std::string model = block->string_or("model", "");
      if (model.empty()) return std::nullopt;
      r.cost.model = cost::cost_model_from_name(model);  // throws -> torn
      r.cost.populated = true;
      r.cost.rounds =
          static_cast<std::int64_t>(block->number_or("rounds", -1));
      r.cost.messages =
          static_cast<std::int64_t>(block->number_or("messages", -1));
      r.cost.total_bits =
          static_cast<std::int64_t>(block->number_or("total_bits", -1));
      r.cost.max_message_bits =
          static_cast<int>(block->number_or("max_message_bits", 0));
      r.cost.bandwidth_bits =
          static_cast<int>(block->number_or("bandwidth_bits", 0));
      r.cost.engine_runs =
          static_cast<int>(block->number_or("engine_runs", 0));
      r.cost.msgs_per_round_p50 =
          static_cast<std::int64_t>(block->number_or("msgs_p50", -1));
      r.cost.msgs_per_round_p95 =
          static_cast<std::int64_t>(block->number_or("msgs_p95", -1));
      r.cost.msgs_per_round_max =
          static_cast<std::int64_t>(block->number_or("msgs_max", -1));
      if (const JsonValue* faults = block->find("faults");
          faults != nullptr && faults->is_object()) {
        r.cost.faults_active = true;
        r.cost.faults_dropped_messages = static_cast<std::int64_t>(
            faults->number_or("dropped_messages", 0));
        r.cost.faults_dropped_bits =
            static_cast<std::int64_t>(faults->number_or("dropped_bits", 0));
        r.cost.faults_crashed_nodes = static_cast<std::int64_t>(
            faults->number_or("crashed_nodes", 0));
        r.cost.faults_skewed_deliveries = static_cast<std::int64_t>(
            faults->number_or("skewed_deliveries", 0));
      }
      // Mirror for the legacy observable (summary tables of resumed runs).
      r.rounds = r.cost.rounds < 0
                     ? -1
                     : static_cast<int>(std::min<std::int64_t>(
                           r.cost.rounds, INT_MAX));
    }
    if (const JsonValue* metrics = v.find("metrics");
        metrics != nullptr && metrics->is_object()) {
      for (const auto& [key, value] : metrics->as_object()) {
        if (!value.is_number()) return std::nullopt;
        r.metrics[key] = value.as_double();
      }
    }
  } catch (const InvariantError&) {
    // A field present with the wrong shape (e.g. fractional cell_index):
    // treat as a torn/corrupt frame, not a crash.
    return std::nullopt;
  }
  return stored;
}

std::string canonical_record_json(const lab::RunRecord& record,
                                  bool include_wall_ms) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  write_record_fields(w, record, include_wall_ms);
  w.end_object();
  return out.str();
}

}  // namespace rlocal::store
