#include "store/record_io.hpp"

#include <sstream>

#include "support/assert.hpp"
#include "support/json.hpp"

namespace rlocal::store {
namespace {

/// The one definition of the frame's record fields (fixed order; see file
/// comment of record_io.hpp). emit_json in lab/emit.cpp mirrors this shape
/// for whole-run artifacts.
void write_record_fields(JsonWriter& w, const lab::RunRecord& r,
                         bool include_wall_ms) {
  w.field("solver", r.solver);
  w.field("problem", r.problem);
  w.field("graph", r.graph);
  w.field("regime", r.regime);
  if (!r.variant.empty()) w.field("variant", r.variant);
  w.field("seed", r.seed);
  if (r.skipped) {
    w.field("skipped", true);
    return;
  }
  w.field("success", r.success);
  w.field("checker_passed", r.checker_passed);
  if (!r.error.empty()) w.field("error", r.error);
  if (r.colors >= 0) w.field("colors", r.colors);
  if (r.rounds >= 0) w.field("rounds", r.rounds);
  if (r.iterations >= 0) w.field("iterations", r.iterations);
  if (r.diameter >= 0) w.field("diameter", r.diameter);
  w.field("objective", r.objective);
  w.field("shared_seed_bits", r.shared_seed_bits);
  w.field("derived_bits", r.derived_bits);
  if (include_wall_ms) w.field("wall_ms", r.wall_ms);
  if (!r.metrics.empty()) {
    w.key("metrics");
    w.begin_object();
    for (const auto& [key, value] : r.metrics) w.field(key, value);
    w.end_object();
  }
}

}  // namespace

std::string encode_frame(const StoredRecord& stored) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.field("cell_index", stored.cell_index);
  w.field("cell_seed", stored.cell_seed);
  write_record_fields(w, stored.record, /*include_wall_ms=*/true);
  w.end_object();
  return out.str();
}

std::optional<StoredRecord> decode_frame(std::string_view line) {
  const std::optional<JsonValue> parsed = json_try_parse(line);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const JsonValue& v = *parsed;
  const JsonValue* cell_index = v.find("cell_index");
  const JsonValue* cell_seed = v.find("cell_seed");
  const JsonValue* seed = v.find("seed");
  if (cell_index == nullptr || !cell_index->is_number() ||
      cell_seed == nullptr || !cell_seed->is_number() || seed == nullptr ||
      !seed->is_number()) {
    return std::nullopt;
  }
  StoredRecord stored;
  lab::RunRecord& r = stored.record;
  try {
    stored.cell_index = cell_index->as_uint64();
    stored.cell_seed = cell_seed->as_uint64();
    r.seed = seed->as_uint64();
    r.solver = v.string_or("solver", "");
    r.problem = v.string_or("problem", "");
    r.graph = v.string_or("graph", "");
    r.regime = v.string_or("regime", "");
    r.variant = v.string_or("variant", "");
    if (r.solver.empty() || r.graph.empty() || r.regime.empty()) {
      return std::nullopt;
    }
    r.skipped = v.bool_or("skipped", false);
    if (r.skipped) return stored;
    r.success = v.bool_or("success", false);
    r.checker_passed = v.bool_or("checker_passed", false);
    r.error = v.string_or("error", "");
    r.colors = static_cast<int>(v.number_or("colors", -1));
    r.rounds = static_cast<int>(v.number_or("rounds", -1));
    r.iterations = static_cast<int>(v.number_or("iterations", -1));
    r.diameter = static_cast<int>(v.number_or("diameter", -1));
    r.objective = v.number_or("objective", 0.0);
    const JsonValue* shared_bits = v.find("shared_seed_bits");
    const JsonValue* derived_bits = v.find("derived_bits");
    if (shared_bits == nullptr || !shared_bits->is_number() ||
        derived_bits == nullptr || !derived_bits->is_number()) {
      return std::nullopt;
    }
    r.shared_seed_bits = shared_bits->as_uint64();
    r.derived_bits = derived_bits->as_uint64();
    r.wall_ms = v.number_or("wall_ms", 0.0);
    if (const JsonValue* metrics = v.find("metrics");
        metrics != nullptr && metrics->is_object()) {
      for (const auto& [key, value] : metrics->as_object()) {
        if (!value.is_number()) return std::nullopt;
        r.metrics[key] = value.as_double();
      }
    }
  } catch (const InvariantError&) {
    // A field present with the wrong shape (e.g. fractional cell_index):
    // treat as a torn/corrupt frame, not a crash.
    return std::nullopt;
  }
  return stored;
}

std::string canonical_record_json(const lab::RunRecord& record,
                                  bool include_wall_ms) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  write_record_fields(w, record, include_wall_ms);
  w.end_object();
  return out.str();
}

}  // namespace rlocal::store
