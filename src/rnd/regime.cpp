#include "rnd/regime.hpp"

#include <cmath>

#include "support/math.hpp"

namespace rlocal {

std::string Regime::name() const {
  switch (kind) {
    case RegimeKind::kFull:
      return "full";
    case RegimeKind::kKWise:
      return "kwise(" + std::to_string(k) + ")";
    case RegimeKind::kSharedKWise:
      return "shared_kwise(" + std::to_string(shared_bits) + "b)";
    case RegimeKind::kSharedEpsBias:
      return "shared_epsbias(" + std::to_string(shared_bits) + "b)";
    case RegimeKind::kAllZeros:
      return "all_zeros";
    case RegimeKind::kAllOnes:
      return "all_ones";
  }
  return "?";
}

NodeRandomness::NodeRandomness(const Regime& regime, std::uint64_t master_seed)
    : regime_(regime), master_seed_(master_seed) {
  switch (regime_.kind) {
    case RegimeKind::kFull:
    case RegimeKind::kAllZeros:
    case RegimeKind::kAllOnes:
      break;
    case RegimeKind::kKWise: {
      RLOCAL_CHECK(regime_.k >= 1, "k-wise regime requires k >= 1");
      kwise_.emplace(KWiseGenerator::from_seed(regime_.k, 64, master_seed));
      break;
    }
    case RegimeKind::kSharedKWise: {
      RLOCAL_CHECK(regime_.shared_bits >= 128,
                   "shared k-wise regime requires >= 128 bits (2 GF(2^64) "
                   "coefficients); use shared_epsbias below that");
      const int k = regime_.shared_bits / 64;
      PrngBitSource seed(master_seed);
      kwise_.emplace(k, 64, seed);
      shared_seed_bits_ = seed.bits_consumed();
      break;
    }
    case RegimeKind::kSharedEpsBias: {
      RLOCAL_CHECK(regime_.shared_bits >= 4,
                   "shared eps-bias regime requires >= 4 bits");
      const int s = std::min(63, regime_.shared_bits / 2);
      PrngBitSource seed(master_seed);
      epsbias_.emplace(s, seed);
      // Nominal entropy is 2s; rejection consumes more raw PRNG bits but no
      // extra entropy is attributed to the regime.
      shared_seed_bits_ = epsbias_->nominal_seed_bits();
      break;
    }
  }
}

std::uint64_t NodeRandomness::pack(std::uint64_t node, std::uint64_t stream,
                                   int c) {
  RLOCAL_CHECK(node < kMaxNode, "node exceeds randomness packing range");
  RLOCAL_CHECK(stream < kMaxStream, "stream exceeds randomness packing range");
  RLOCAL_CHECK(c >= 0 && c < (kMaxBitsPerDraw >> 6),
               "chunk exceeds randomness packing range");
  return (node << 32) | (stream << 6) | static_cast<std::uint64_t>(c);
}

std::uint64_t NodeRandomness::chunk_impl(std::uint64_t node,
                                         std::uint64_t stream, int c) {
  const std::uint64_t point = pack(node, stream, c);
  switch (regime_.kind) {
    case RegimeKind::kFull:
      return mix3(master_seed_, point, 0x72616E646F6D6E65ULL);
    case RegimeKind::kKWise:
    case RegimeKind::kSharedKWise:
      return kwise_->value(point);
    case RegimeKind::kSharedEpsBias: {
      // Assemble 64 bits one LFSR index at a time (indices are the bit-level
      // packing (point << 6) | j, injective because point < 2^58).
      std::uint64_t word = 0;
      for (int j = 0; j < 64; ++j) {
        if (epsbias_->bit((point << 6) | static_cast<std::uint64_t>(j))) {
          word |= (1ULL << j);
        }
      }
      return word;
    }
    case RegimeKind::kAllZeros:
      return 0;
    case RegimeKind::kAllOnes:
      return ~0ULL;
  }
  RLOCAL_ASSERT(false);
}

std::uint64_t NodeRandomness::chunk(std::uint64_t node, std::uint64_t stream,
                                    int c) {
  derived_bits_ += 64;
  return chunk_impl(node, stream, c);
}

bool NodeRandomness::bit(std::uint64_t node, std::uint64_t stream, int j) {
  RLOCAL_CHECK(j >= 0 && j < kMaxBitsPerDraw, "bit index out of range");
  derived_bits_ += 1;
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    const std::uint64_t point = pack(node, stream, j >> 6);
    return epsbias_->bit((point << 6) | static_cast<std::uint64_t>(j & 63));
  }
  return ((chunk_impl(node, stream, j >> 6) >> (j & 63)) & 1ULL) != 0;
}

bool NodeRandomness::bernoulli(std::uint64_t node, std::uint64_t stream,
                               double p) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    // 20 assembled bits; quantization error 2^-20.
    std::uint64_t value = 0;
    for (int j = 0; j < 20; ++j) {
      if (bit(node, stream, j)) value |= (1ULL << j);
    }
    const auto threshold = static_cast<std::uint64_t>(
        std::ldexp(static_cast<long double>(p), 20));
    return value < threshold;
  }
  derived_bits_ += 64;
  const std::uint64_t word = chunk_impl(node, stream, 0);
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(p), 64));
  return word < threshold;
}

int NodeRandomness::geometric(std::uint64_t node, std::uint64_t stream,
                              int cap) {
  RLOCAL_CHECK(cap >= 1 && cap <= kMaxBitsPerDraw, "geometric cap invalid");
  for (int k = 1; k <= cap; ++k) {
    // Heads continue the run, the first tail stops it: Pr[X=k] = 2^-k.
    if (!bit(node, stream, k - 1)) return k;
  }
  return cap;
}

std::uint64_t pack_draw(std::uint64_t node, std::uint64_t stream, int chunk) {
  RLOCAL_CHECK(node < NodeRandomness::kMaxNode, "node exceeds packing range");
  RLOCAL_CHECK(stream < NodeRandomness::kMaxStream,
               "stream exceeds packing range");
  RLOCAL_CHECK(chunk >= 0 &&
                   chunk < (NodeRandomness::kMaxBitsPerDraw >> 6),
               "chunk exceeds packing range");
  return (node << 32) | (stream << 6) | static_cast<std::uint64_t>(chunk);
}

bool kwise_bernoulli_at(const KWiseGenerator& gen, std::uint64_t node,
                        std::uint64_t stream, double p) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(p), gen.m()));
  return gen.value(pack_draw(node, stream, 0)) < threshold;
}

int kwise_geometric_at(const KWiseGenerator& gen, std::uint64_t node,
                       std::uint64_t stream, int cap) {
  RLOCAL_CHECK(cap >= 1 && cap <= NodeRandomness::kMaxBitsPerDraw,
               "geometric cap invalid");
  for (int k = 1; k <= cap; ++k) {
    const std::uint64_t word =
        gen.value(pack_draw(node, stream, (k - 1) >> 6));
    if (((word >> ((k - 1) & 63)) & 1ULL) == 0) return k;
  }
  return cap;
}

}  // namespace rlocal
