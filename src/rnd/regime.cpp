#include "rnd/regime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/obs.hpp"
#include "support/math.hpp"

namespace rlocal {
namespace {
// Observability floor for the batch entry points: scalar draws are
// one-element batch calls (bit()/geometric()/bernoulli() wrap their batch
// forms), so unconditional spans/timers would pay clock reads per element
// on scalar-heavy paths. Below this element count a draw traces nothing and
// folds into the enclosing solver phase.
constexpr std::size_t kObsBatchFloor = 16;
}  // namespace

Regime Regime::pooled(std::vector<std::int32_t> table, int bits_per_pool) {
  RLOCAL_CHECK(!table.empty(), "pooled(table, bits) requires a non-empty "
                               "cluster-assignment table");
  RLOCAL_CHECK(bits_per_pool >= 1, "pooled(table, bits) requires bits >= 1");
  std::int32_t max_pool = -1;
  for (const std::int32_t p : table) {
    RLOCAL_CHECK(p >= 0, "pool table entries must be non-negative");
    max_pool = std::max(max_pool, p);
  }
  Regime regime;
  regime.kind = RegimeKind::kPooled;
  regime.num_pools = max_pool + 1;
  regime.pool_bits = bits_per_pool;
  regime.pool_table =
      std::make_shared<const std::vector<std::int32_t>>(std::move(table));
  return regime;
}

Regime Regime::with_pool_table(std::vector<std::int32_t> table) const {
  RLOCAL_CHECK(kind == RegimeKind::kPooled,
               "with_pool_table only applies to the pooled regime");
  return pooled(std::move(table), pool_bits);
}

std::string Regime::name() const {
  switch (kind) {
    case RegimeKind::kFull:
      return "full";
    case RegimeKind::kKWise:
      return "kwise(" + std::to_string(k) + ")";
    case RegimeKind::kSharedKWise:
      return "shared_kwise(" + std::to_string(shared_bits) + "b)";
    case RegimeKind::kSharedEpsBias:
      return "shared_epsbias(" + std::to_string(shared_bits) + "b)";
    case RegimeKind::kPooled: {
      if (!pool_table) {
        return "pooled(" + std::to_string(num_pools) + "x" +
               std::to_string(pool_bits) + "b)";
      }
      // Table-bound regimes fold a content hash into the name: record keys
      // and per-cell sweep seeds are derived from name(), so two different
      // assignment tables must never alias (nor alias the round-robin
      // spelling).
      std::uint64_t hash = 0xCBF29CE484222325ULL;
      for (const std::int32_t pool : *pool_table) {
        hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(pool));
        hash *= 0x100000001B3ULL;
      }
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(hash));
      return "pooled(table#" + std::string(hex) + "," +
             std::to_string(num_pools) + "x" + std::to_string(pool_bits) +
             "b)";
    }
    case RegimeKind::kAllZeros:
      return "all_zeros";
    case RegimeKind::kAllOnes:
      return "all_ones";
  }
  return "?";
}

NodeRandomness::NodeRandomness(const Regime& regime, std::uint64_t master_seed)
    : regime_(regime), master_seed_(master_seed) {
  switch (regime_.kind) {
    case RegimeKind::kFull:
    case RegimeKind::kAllZeros:
    case RegimeKind::kAllOnes:
      break;
    case RegimeKind::kKWise: {
      RLOCAL_CHECK(regime_.k >= 1, "k-wise regime requires k >= 1");
      kwise_.emplace(KWiseGenerator::from_seed(regime_.k, 64, master_seed));
      break;
    }
    case RegimeKind::kSharedKWise: {
      RLOCAL_CHECK(regime_.shared_bits >= 128,
                   "shared k-wise regime requires >= 128 bits (2 GF(2^64) "
                   "coefficients); use shared_epsbias below that");
      const int k = regime_.shared_bits / 64;
      PrngBitSource seed(master_seed);
      kwise_.emplace(k, 64, seed);
      shared_seed_bits_ = seed.bits_consumed();
      break;
    }
    case RegimeKind::kSharedEpsBias: {
      RLOCAL_CHECK(regime_.shared_bits >= 4,
                   "shared eps-bias regime requires >= 4 bits");
      const int s = std::min(63, regime_.shared_bits / 2);
      PrngBitSource seed(master_seed);
      epsbias_.emplace(s, seed);
      // Nominal entropy is 2s; rejection consumes more raw PRNG bits but no
      // extra entropy is attributed to the regime.
      shared_seed_bits_ = epsbias_->nominal_seed_bits();
      break;
    }
    case RegimeKind::kPooled: {
      RLOCAL_CHECK(regime_.pool_bits >= 128,
                   "pooled regime requires >= 128 bits per pool (2 GF(2^64) "
                   "coefficients)");
      RLOCAL_CHECK(regime_.num_pools >= 1,
                   "pooled regime requires at least one pool");
      // Generators are created lazily per pool (see pool_generator), so the
      // seed ledger charges only the pools a run actually draws from.
      break;
    }
  }
}

std::int32_t NodeRandomness::pool_of(std::uint64_t node) const {
  RLOCAL_CHECK(regime_.kind == RegimeKind::kPooled,
               "pool_of is only defined for the pooled regime");
  if (regime_.pool_table) {
    const std::vector<std::int32_t>& table = *regime_.pool_table;
    RLOCAL_CHECK(node < table.size(),
                 "node outside the pooled regime's assignment table");
    return table[static_cast<std::size_t>(node)];
  }
  return static_cast<std::int32_t>(
      node % static_cast<std::uint64_t>(regime_.num_pools));
}

const KWiseGenerator& NodeRandomness::pool_generator(std::int32_t pool) {
  const auto it = pools_.find(pool);
  if (it != pools_.end()) return it->second;
  // One finite stream per pool: k*64 seed bits keyed by (master seed, pool),
  // independent across pools -- the Lemma 3.3 "whole cluster draws from one
  // gathered pool" model.
  const int k = regime_.pool_bits / 64;
  PrngBitSource seed(
      mix3(master_seed_, static_cast<std::uint64_t>(pool),
           0x706F6F6C65645FULL));
  const auto [inserted, ok] = pools_.emplace(pool, KWiseGenerator(k, 64, seed));
  RLOCAL_ASSERT(ok);
  shared_seed_bits_ += seed.bits_consumed();
  return inserted->second;
}

std::uint64_t NodeRandomness::pack(std::uint64_t node, std::uint64_t stream,
                                   int c) {
  RLOCAL_CHECK(node < kMaxNode, "node exceeds randomness packing range");
  RLOCAL_CHECK(stream < kMaxStream, "stream exceeds randomness packing range");
  RLOCAL_CHECK(c >= 0 && c < (kMaxBitsPerDraw >> 6),
               "chunk exceeds randomness packing range");
  return (node << 32) | (stream << 6) | static_cast<std::uint64_t>(c);
}

std::uint64_t NodeRandomness::chunk_impl(std::uint64_t node,
                                         std::uint64_t stream, int c) {
  const std::uint64_t point = pack(node, stream, c);
  switch (regime_.kind) {
    case RegimeKind::kFull:
      return mix3(master_seed_, point, 0x72616E646F6D6E65ULL);
    case RegimeKind::kKWise:
    case RegimeKind::kSharedKWise:
      return kwise_->value(point);
    case RegimeKind::kPooled:
      // All of a pool's nodes share one generator; the packing keeps their
      // evaluation points distinct, so draws inside a pool are spread over
      // the pool's single k-wise stream.
      return pool_generator(pool_of(node)).value(point);
    case RegimeKind::kSharedEpsBias: {
      // Assemble 64 bits one LFSR index at a time (indices are the bit-level
      // packing (point << 6) | j, injective because point < 2^58).
      std::uint64_t word = 0;
      for (int j = 0; j < 64; ++j) {
        if (epsbias_->bit((point << 6) | static_cast<std::uint64_t>(j))) {
          word |= (1ULL << j);
        }
      }
      return word;
    }
    case RegimeKind::kAllZeros:
      return 0;
    case RegimeKind::kAllOnes:
      return ~0ULL;
  }
  RLOCAL_ASSERT(false);
}

std::uint64_t NodeRandomness::chunk(std::uint64_t node, std::uint64_t stream,
                                    int c) {
  maybe_checkpoint();
  derived_bits_ += 64;
  return chunk_impl(node, stream, c);
}

bool NodeRandomness::bit(std::uint64_t node, std::uint64_t stream, int j) {
  std::uint8_t out = 0;
  bits_batch(std::span<const std::uint64_t>(&node, 1), stream, j,
             std::span<std::uint8_t>(&out, 1));
  return out != 0;
}

void NodeRandomness::batch_checkpoint(std::uint64_t draws) {
  // Count draws only while a checkpoint is armed, exactly like the scalar
  // maybe_checkpoint's short-circuit -- so batch and scalar draw histories
  // keep the same fire phase even when the hook is installed mid-run.
  if (!checkpoint_) return;
  const std::uint64_t boundaries_before = draw_calls_ / kCheckpointInterval;
  draw_calls_ += draws;
  const std::uint64_t fires =
      draw_calls_ / kCheckpointInterval - boundaries_before;
  for (std::uint64_t f = 0; f < fires; ++f) checkpoint_();
}

void NodeRandomness::gather_chunks(std::span<const std::uint64_t> nodes,
                                   std::uint64_t stream, int c,
                                   std::span<std::uint64_t> words) {
  const std::size_t count = nodes.size();
  RLOCAL_CHECK(words.size() >= count,
               "gather_chunks output span is shorter than the node span");
  if (count == 0) return;
  if (count == 1) {
    // Single-point gathers keep the scalar path's last-point memo warm
    // (chunk_impl routes through KWiseGenerator::value), so the thin scalar
    // wrappers retain their repeated-point O(1) behavior.
    words[0] = chunk_impl(nodes[0], stream, c);
    return;
  }
  switch (regime_.kind) {
    case RegimeKind::kFull: {
      // Per-point mixing has no cross-point batching win; share chunk_impl
      // so the derivation (salt, mix, packing) lives in exactly one place.
      for (std::size_t i = 0; i < count; ++i) {
        words[i] = chunk_impl(nodes[i], stream, c);
      }
      return;
    }
    case RegimeKind::kKWise:
    case RegimeKind::kSharedKWise: {
      batch_points_.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        batch_points_[i] = pack(nodes[i], stream, c);
      }
      kwise_->values(batch_points_, words);
      return;
    }
    case RegimeKind::kPooled: {
      // Group nodes by pool (first-appearance order, pools marked done with
      // -1) and run one values() pass per touched pool; the lazy
      // pool_generator charge makes the seed ledger identical to the scalar
      // loop's.
      batch_pool_.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        batch_pool_[i] = pool_of(nodes[i]);
      }
      for (std::size_t i = 0; i < count; ++i) {
        const std::int32_t pool = batch_pool_[i];
        if (pool < 0) continue;
        batch_points_.clear();
        batch_scatter_.clear();
        for (std::size_t j = i; j < count; ++j) {
          if (batch_pool_[j] != pool) continue;
          batch_points_.push_back(pack(nodes[j], stream, c));
          batch_scatter_.push_back(j);
          batch_pool_[j] = -1;
        }
        const KWiseGenerator& gen = pool_generator(pool);
        gen.values(batch_points_, batch_points_);  // in-place
        for (std::size_t j = 0; j < batch_scatter_.size(); ++j) {
          words[batch_scatter_[j]] = batch_points_[j];
        }
      }
      return;
    }
    case RegimeKind::kSharedEpsBias: {
      for (std::size_t i = 0; i < count; ++i) {
        words[i] = chunk_impl(nodes[i], stream, c);
      }
      return;
    }
    case RegimeKind::kAllZeros: {
      for (std::size_t i = 0; i < count; ++i) words[i] = 0;
      return;
    }
    case RegimeKind::kAllOnes: {
      for (std::size_t i = 0; i < count; ++i) words[i] = ~0ULL;
      return;
    }
  }
  RLOCAL_ASSERT(false);
}

void NodeRandomness::bits_batch(std::span<const std::uint64_t> nodes,
                                std::uint64_t stream, int j,
                                std::span<std::uint8_t> out) {
  RLOCAL_CHECK(j >= 0 && j < kMaxBitsPerDraw, "bit index out of range");
  RLOCAL_CHECK(out.size() >= nodes.size(),
               "bits_batch output span is shorter than the node span");
  const std::size_t count = nodes.size();
  obs::ObsSpan span(count >= kObsBatchFloor ? "rnd" : nullptr, "draw.bits");
  obs::PhaseTimer timer(obs::Phase::kDraw, count >= kObsBatchFloor);
  static obs::Histogram& bits_hist =
      obs::histogram("rlocal_span_latency_seconds{span=\"draw.bits\"}");
  static obs::Counter& bits_spans =
      obs::counter("rlocal_spans_total{span=\"draw.bits\"}");
  obs::LatencyTimer latency(bits_hist, bits_spans, count >= kObsBatchFloor);
  batch_checkpoint(count);
  derived_bits_ += count;
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t point = pack(nodes[i], stream, j >> 6);
      out[i] = epsbias_->bit((point << 6) |
                             static_cast<std::uint64_t>(j & 63))
                   ? 1
                   : 0;
    }
    return;
  }
  batch_words_.resize(count);
  gather_chunks(nodes, stream, j >> 6,
                std::span<std::uint64_t>(batch_words_.data(), count));
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint8_t>((batch_words_[i] >> (j & 63)) & 1ULL);
  }
}

void NodeRandomness::priority_batch(std::span<const std::uint64_t> nodes,
                                    std::uint64_t stream, int bits,
                                    std::span<std::uint64_t> out) {
  RLOCAL_CHECK(bits >= 1 && bits <= 64, "priority width must be in [1, 64]");
  RLOCAL_CHECK(out.size() >= nodes.size(),
               "priority_batch output span is shorter than the node span");
  const std::size_t count = nodes.size();
  obs::ObsSpan span(count >= kObsBatchFloor ? "rnd" : nullptr,
                    "draw.priority");
  obs::PhaseTimer timer(obs::Phase::kDraw, count >= kObsBatchFloor);
  static obs::Histogram& priority_hist =
      obs::histogram("rlocal_span_latency_seconds{span=\"draw.priority\"}");
  static obs::Counter& priority_spans =
      obs::counter("rlocal_spans_total{span=\"draw.priority\"}");
  obs::LatencyTimer latency(priority_hist, priority_spans,
                            count >= kObsBatchFloor);
  batch_checkpoint(count);
  derived_bits_ += 64 * static_cast<std::uint64_t>(count);
  gather_chunks(nodes, stream, 0, out);
  for (std::size_t i = 0; i < count; ++i) out[i] >>= (64 - bits);
}

void NodeRandomness::geometric_batch(std::span<const std::uint64_t> nodes,
                                     std::uint64_t stream, int cap,
                                     std::span<int> out) {
  RLOCAL_CHECK(cap >= 1 && cap <= kMaxBitsPerDraw, "geometric cap invalid");
  RLOCAL_CHECK(out.size() >= nodes.size(),
               "geometric_batch output span is shorter than the node span");
  const std::size_t count = nodes.size();
  obs::ObsSpan span(count >= kObsBatchFloor ? "rnd" : nullptr,
                    "draw.geometric");
  obs::PhaseTimer timer(obs::Phase::kDraw, count >= kObsBatchFloor);
  static obs::Histogram& geometric_hist =
      obs::histogram("rlocal_span_latency_seconds{span=\"draw.geometric\"}");
  static obs::Counter& geometric_spans =
      obs::counter("rlocal_spans_total{span=\"draw.geometric\"}");
  obs::LatencyTimer latency(geometric_hist, geometric_spans,
                            count >= kObsBatchFloor);
  std::uint64_t bits_examined = 0;
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    // One LFSR evaluation per examined bit, exactly like the scalar loop --
    // assembling whole 64-bit words would cost 64 evaluations where the
    // expected run needs two.
    for (std::size_t i = 0; i < count; ++i) {
      int result = cap;
      for (int k = 1; k <= cap; ++k) {
        const std::uint64_t point = pack(nodes[i], stream, (k - 1) >> 6);
        if (!epsbias_->bit((point << 6) |
                           static_cast<std::uint64_t>((k - 1) & 63))) {
          result = k;
          break;
        }
      }
      out[i] = result;
      bits_examined += static_cast<std::uint64_t>(result);
    }
  } else {
    batch_nodes_.assign(nodes.begin(), nodes.end());
    batch_index_.resize(count);
    for (std::size_t i = 0; i < count; ++i) batch_index_[i] = i;
    std::size_t active = count;
    for (int c = 0; active > 0; ++c) {
      const int lo = c * 64;  // first bit index covered by this chunk
      const int hi = std::min(cap, lo + 64);
      batch_words_.resize(active);
      gather_chunks(std::span<const std::uint64_t>(batch_nodes_.data(),
                                                   active),
                    stream, c,
                    std::span<std::uint64_t>(batch_words_.data(), active));
      std::size_t next = 0;
      for (std::size_t i = 0; i < active; ++i) {
        const std::uint64_t word = batch_words_[i];
        int result = 0;
        for (int k = lo + 1; k <= hi; ++k) {
          // Heads continue the run, the first tail stops it: Pr[X=k] = 2^-k.
          if (((word >> ((k - 1) & 63)) & 1ULL) == 0) {
            result = k;
            break;
          }
        }
        if (result == 0 && hi == cap) result = cap;  // all heads to the cap
        if (result != 0) {
          out[batch_index_[i]] = result;
          bits_examined += static_cast<std::uint64_t>(result);
        } else {
          // Still all-heads with bits left: stays active for chunk c + 1.
          batch_nodes_[next] = batch_nodes_[i];
          batch_index_[next] = batch_index_[i];
          ++next;
        }
      }
      active = next;
    }
  }
  batch_checkpoint(bits_examined);
  derived_bits_ += bits_examined;
}

bool NodeRandomness::bernoulli(std::uint64_t node, std::uint64_t stream,
                               double p) {
  std::uint8_t out = 0;
  bernoulli_batch(std::span<const std::uint64_t>(&node, 1), stream, p,
                  std::span<std::uint8_t>(&out, 1));
  return out != 0;
}

void NodeRandomness::bernoulli_batch(std::span<const std::uint64_t> nodes,
                                     std::uint64_t stream, double p,
                                     std::span<std::uint8_t> out) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  RLOCAL_CHECK(out.size() >= nodes.size(),
               "bernoulli_batch output span is shorter than the node span");
  const std::size_t count = nodes.size();
  obs::ObsSpan span(count >= kObsBatchFloor ? "rnd" : nullptr,
                    "draw.bernoulli");
  obs::PhaseTimer timer(obs::Phase::kDraw, count >= kObsBatchFloor);
  static obs::Histogram& bernoulli_hist =
      obs::histogram("rlocal_span_latency_seconds{span=\"draw.bernoulli\"}");
  static obs::Counter& bernoulli_spans =
      obs::counter("rlocal_spans_total{span=\"draw.bernoulli\"}");
  obs::LatencyTimer latency(bernoulli_hist, bernoulli_spans,
                            count >= kObsBatchFloor);
  if (p >= 1.0 || p <= 0.0) {
    // The scalar path checkpoints before the degenerate early-outs and
    // derives nothing; charge the same draw calls here.
    batch_checkpoint(count);
    for (std::size_t i = 0; i < count; ++i) out[i] = p >= 1.0 ? 1 : 0;
    return;
  }
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    // 20 assembled bits per coin; quantization error 2^-20. The scalar loop
    // makes 21 draw calls per node (the bernoulli entry + 20 bit draws).
    batch_checkpoint(21 * static_cast<std::uint64_t>(count));
    derived_bits_ += 20 * static_cast<std::uint64_t>(count);
    const auto threshold = static_cast<std::uint64_t>(
        std::ldexp(static_cast<long double>(p), 20));
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t value = 0;
      const std::uint64_t point = pack(nodes[i], stream, 0);
      for (int j = 0; j < 20; ++j) {
        if (epsbias_->bit((point << 6) | static_cast<std::uint64_t>(j))) {
          value |= (1ULL << j);
        }
      }
      out[i] = value < threshold ? 1 : 0;
    }
    return;
  }
  batch_checkpoint(count);
  derived_bits_ += 64 * static_cast<std::uint64_t>(count);
  batch_words_.resize(count);
  gather_chunks(nodes, stream, 0,
                std::span<std::uint64_t>(batch_words_.data(), count));
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(p), 64));
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = batch_words_[i] < threshold ? 1 : 0;
  }
}

int NodeRandomness::geometric(std::uint64_t node, std::uint64_t stream,
                              int cap) {
  int out = 0;
  geometric_batch(std::span<const std::uint64_t>(&node, 1), stream, cap,
                  std::span<int>(&out, 1));
  return out;
}

std::uint64_t pack_draw(std::uint64_t node, std::uint64_t stream, int chunk) {
  RLOCAL_CHECK(node < NodeRandomness::kMaxNode, "node exceeds packing range");
  RLOCAL_CHECK(stream < NodeRandomness::kMaxStream,
               "stream exceeds packing range");
  RLOCAL_CHECK(chunk >= 0 &&
                   chunk < (NodeRandomness::kMaxBitsPerDraw >> 6),
               "chunk exceeds packing range");
  return (node << 32) | (stream << 6) | static_cast<std::uint64_t>(chunk);
}

bool kwise_bernoulli_at(const KWiseGenerator& gen, std::uint64_t node,
                        std::uint64_t stream, double p) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(p), gen.m()));
  return gen.value(pack_draw(node, stream, 0)) < threshold;
}

int kwise_geometric_at(const KWiseGenerator& gen, std::uint64_t node,
                       std::uint64_t stream, int cap) {
  RLOCAL_CHECK(cap >= 1 && cap <= NodeRandomness::kMaxBitsPerDraw,
               "geometric cap invalid");
  for (int k = 1; k <= cap; ++k) {
    const std::uint64_t word =
        gen.value(pack_draw(node, stream, (k - 1) >> 6));
    if (((word >> ((k - 1) & 63)) & 1ULL) == 0) return k;
  }
  return cap;
}

}  // namespace rlocal
