#include "rnd/regime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/math.hpp"

namespace rlocal {

Regime Regime::pooled(std::vector<std::int32_t> table, int bits_per_pool) {
  RLOCAL_CHECK(!table.empty(), "pooled(table, bits) requires a non-empty "
                               "cluster-assignment table");
  RLOCAL_CHECK(bits_per_pool >= 1, "pooled(table, bits) requires bits >= 1");
  std::int32_t max_pool = -1;
  for (const std::int32_t p : table) {
    RLOCAL_CHECK(p >= 0, "pool table entries must be non-negative");
    max_pool = std::max(max_pool, p);
  }
  Regime regime;
  regime.kind = RegimeKind::kPooled;
  regime.num_pools = max_pool + 1;
  regime.pool_bits = bits_per_pool;
  regime.pool_table =
      std::make_shared<const std::vector<std::int32_t>>(std::move(table));
  return regime;
}

Regime Regime::with_pool_table(std::vector<std::int32_t> table) const {
  RLOCAL_CHECK(kind == RegimeKind::kPooled,
               "with_pool_table only applies to the pooled regime");
  return pooled(std::move(table), pool_bits);
}

std::string Regime::name() const {
  switch (kind) {
    case RegimeKind::kFull:
      return "full";
    case RegimeKind::kKWise:
      return "kwise(" + std::to_string(k) + ")";
    case RegimeKind::kSharedKWise:
      return "shared_kwise(" + std::to_string(shared_bits) + "b)";
    case RegimeKind::kSharedEpsBias:
      return "shared_epsbias(" + std::to_string(shared_bits) + "b)";
    case RegimeKind::kPooled: {
      if (!pool_table) {
        return "pooled(" + std::to_string(num_pools) + "x" +
               std::to_string(pool_bits) + "b)";
      }
      // Table-bound regimes fold a content hash into the name: record keys
      // and per-cell sweep seeds are derived from name(), so two different
      // assignment tables must never alias (nor alias the round-robin
      // spelling).
      std::uint64_t hash = 0xCBF29CE484222325ULL;
      for (const std::int32_t pool : *pool_table) {
        hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(pool));
        hash *= 0x100000001B3ULL;
      }
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(hash));
      return "pooled(table#" + std::string(hex) + "," +
             std::to_string(num_pools) + "x" + std::to_string(pool_bits) +
             "b)";
    }
    case RegimeKind::kAllZeros:
      return "all_zeros";
    case RegimeKind::kAllOnes:
      return "all_ones";
  }
  return "?";
}

NodeRandomness::NodeRandomness(const Regime& regime, std::uint64_t master_seed)
    : regime_(regime), master_seed_(master_seed) {
  switch (regime_.kind) {
    case RegimeKind::kFull:
    case RegimeKind::kAllZeros:
    case RegimeKind::kAllOnes:
      break;
    case RegimeKind::kKWise: {
      RLOCAL_CHECK(regime_.k >= 1, "k-wise regime requires k >= 1");
      kwise_.emplace(KWiseGenerator::from_seed(regime_.k, 64, master_seed));
      break;
    }
    case RegimeKind::kSharedKWise: {
      RLOCAL_CHECK(regime_.shared_bits >= 128,
                   "shared k-wise regime requires >= 128 bits (2 GF(2^64) "
                   "coefficients); use shared_epsbias below that");
      const int k = regime_.shared_bits / 64;
      PrngBitSource seed(master_seed);
      kwise_.emplace(k, 64, seed);
      shared_seed_bits_ = seed.bits_consumed();
      break;
    }
    case RegimeKind::kSharedEpsBias: {
      RLOCAL_CHECK(regime_.shared_bits >= 4,
                   "shared eps-bias regime requires >= 4 bits");
      const int s = std::min(63, regime_.shared_bits / 2);
      PrngBitSource seed(master_seed);
      epsbias_.emplace(s, seed);
      // Nominal entropy is 2s; rejection consumes more raw PRNG bits but no
      // extra entropy is attributed to the regime.
      shared_seed_bits_ = epsbias_->nominal_seed_bits();
      break;
    }
    case RegimeKind::kPooled: {
      RLOCAL_CHECK(regime_.pool_bits >= 128,
                   "pooled regime requires >= 128 bits per pool (2 GF(2^64) "
                   "coefficients)");
      RLOCAL_CHECK(regime_.num_pools >= 1,
                   "pooled regime requires at least one pool");
      // Generators are created lazily per pool (see pool_generator), so the
      // seed ledger charges only the pools a run actually draws from.
      break;
    }
  }
}

std::int32_t NodeRandomness::pool_of(std::uint64_t node) const {
  RLOCAL_CHECK(regime_.kind == RegimeKind::kPooled,
               "pool_of is only defined for the pooled regime");
  if (regime_.pool_table) {
    const std::vector<std::int32_t>& table = *regime_.pool_table;
    RLOCAL_CHECK(node < table.size(),
                 "node outside the pooled regime's assignment table");
    return table[static_cast<std::size_t>(node)];
  }
  return static_cast<std::int32_t>(
      node % static_cast<std::uint64_t>(regime_.num_pools));
}

const KWiseGenerator& NodeRandomness::pool_generator(std::int32_t pool) {
  const auto it = pools_.find(pool);
  if (it != pools_.end()) return it->second;
  // One finite stream per pool: k*64 seed bits keyed by (master seed, pool),
  // independent across pools -- the Lemma 3.3 "whole cluster draws from one
  // gathered pool" model.
  const int k = regime_.pool_bits / 64;
  PrngBitSource seed(
      mix3(master_seed_, static_cast<std::uint64_t>(pool),
           0x706F6F6C65645FULL));
  const auto [inserted, ok] = pools_.emplace(pool, KWiseGenerator(k, 64, seed));
  RLOCAL_ASSERT(ok);
  shared_seed_bits_ += seed.bits_consumed();
  return inserted->second;
}

std::uint64_t NodeRandomness::pack(std::uint64_t node, std::uint64_t stream,
                                   int c) {
  RLOCAL_CHECK(node < kMaxNode, "node exceeds randomness packing range");
  RLOCAL_CHECK(stream < kMaxStream, "stream exceeds randomness packing range");
  RLOCAL_CHECK(c >= 0 && c < (kMaxBitsPerDraw >> 6),
               "chunk exceeds randomness packing range");
  return (node << 32) | (stream << 6) | static_cast<std::uint64_t>(c);
}

std::uint64_t NodeRandomness::chunk_impl(std::uint64_t node,
                                         std::uint64_t stream, int c) {
  const std::uint64_t point = pack(node, stream, c);
  switch (regime_.kind) {
    case RegimeKind::kFull:
      return mix3(master_seed_, point, 0x72616E646F6D6E65ULL);
    case RegimeKind::kKWise:
    case RegimeKind::kSharedKWise:
      return kwise_->value(point);
    case RegimeKind::kPooled:
      // All of a pool's nodes share one generator; the packing keeps their
      // evaluation points distinct, so draws inside a pool are spread over
      // the pool's single k-wise stream.
      return pool_generator(pool_of(node)).value(point);
    case RegimeKind::kSharedEpsBias: {
      // Assemble 64 bits one LFSR index at a time (indices are the bit-level
      // packing (point << 6) | j, injective because point < 2^58).
      std::uint64_t word = 0;
      for (int j = 0; j < 64; ++j) {
        if (epsbias_->bit((point << 6) | static_cast<std::uint64_t>(j))) {
          word |= (1ULL << j);
        }
      }
      return word;
    }
    case RegimeKind::kAllZeros:
      return 0;
    case RegimeKind::kAllOnes:
      return ~0ULL;
  }
  RLOCAL_ASSERT(false);
}

std::uint64_t NodeRandomness::chunk(std::uint64_t node, std::uint64_t stream,
                                    int c) {
  maybe_checkpoint();
  derived_bits_ += 64;
  return chunk_impl(node, stream, c);
}

bool NodeRandomness::bit(std::uint64_t node, std::uint64_t stream, int j) {
  RLOCAL_CHECK(j >= 0 && j < kMaxBitsPerDraw, "bit index out of range");
  maybe_checkpoint();
  derived_bits_ += 1;
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    const std::uint64_t point = pack(node, stream, j >> 6);
    return epsbias_->bit((point << 6) | static_cast<std::uint64_t>(j & 63));
  }
  return ((chunk_impl(node, stream, j >> 6) >> (j & 63)) & 1ULL) != 0;
}

bool NodeRandomness::bernoulli(std::uint64_t node, std::uint64_t stream,
                               double p) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  maybe_checkpoint();
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  if (regime_.kind == RegimeKind::kSharedEpsBias) {
    // 20 assembled bits; quantization error 2^-20.
    std::uint64_t value = 0;
    for (int j = 0; j < 20; ++j) {
      if (bit(node, stream, j)) value |= (1ULL << j);
    }
    const auto threshold = static_cast<std::uint64_t>(
        std::ldexp(static_cast<long double>(p), 20));
    return value < threshold;
  }
  derived_bits_ += 64;
  const std::uint64_t word = chunk_impl(node, stream, 0);
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(p), 64));
  return word < threshold;
}

int NodeRandomness::geometric(std::uint64_t node, std::uint64_t stream,
                              int cap) {
  RLOCAL_CHECK(cap >= 1 && cap <= kMaxBitsPerDraw, "geometric cap invalid");
  for (int k = 1; k <= cap; ++k) {
    // Heads continue the run, the first tail stops it: Pr[X=k] = 2^-k.
    if (!bit(node, stream, k - 1)) return k;
  }
  return cap;
}

std::uint64_t pack_draw(std::uint64_t node, std::uint64_t stream, int chunk) {
  RLOCAL_CHECK(node < NodeRandomness::kMaxNode, "node exceeds packing range");
  RLOCAL_CHECK(stream < NodeRandomness::kMaxStream,
               "stream exceeds packing range");
  RLOCAL_CHECK(chunk >= 0 &&
                   chunk < (NodeRandomness::kMaxBitsPerDraw >> 6),
               "chunk exceeds packing range");
  return (node << 32) | (stream << 6) | static_cast<std::uint64_t>(chunk);
}

bool kwise_bernoulli_at(const KWiseGenerator& gen, std::uint64_t node,
                        std::uint64_t stream, double p) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(p), gen.m()));
  return gen.value(pack_draw(node, stream, 0)) < threshold;
}

int kwise_geometric_at(const KWiseGenerator& gen, std::uint64_t node,
                       std::uint64_t stream, int cap) {
  RLOCAL_CHECK(cap >= 1 && cap <= NodeRandomness::kMaxBitsPerDraw,
               "geometric cap invalid");
  for (int k = 1; k <= cap; ++k) {
    const std::uint64_t word =
        gen.value(pack_draw(node, stream, (k - 1) >> 6));
    if (((word >> ((k - 1) & 63)) & 1ULL) == 0) return k;
  }
  return cap;
}

}  // namespace rlocal
