#include "rnd/epsbias.hpp"

#include <bit>
#include <cmath>

namespace rlocal {

GF2m EpsBiasGenerator::draw_field(int s, BitSource& seed_source) {
  RLOCAL_CHECK(s >= 2 && s <= 63, "epsilon-bias degree must be in [2, 63]");
  // Rejection sampling over monic degree-s polynomials with constant term 1.
  // Irreducible density is ~1/s, so a generous attempt budget makes failure
  // astronomically unlikely; fall back to the canonical polynomial then.
  const int max_attempts = 64 * s;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::uint64_t low = seed_source.next_bits(s) | 1ULL;
    if (is_irreducible(s, low)) return GF2m(s, low);
  }
  return GF2m(s);
}

EpsBiasGenerator::EpsBiasGenerator(int s, BitSource& seed_source)
    : seed_bits_consumed_(seed_source.bits_consumed()),
      field_(draw_field(s, seed_source)),
      start_(0) {
  // A zero start state would make every output bit zero; redraw (costs one
  // bit of entropy in expectation, folded into the nominal 2s accounting).
  do {
    start_ = seed_source.next_bits(s);
  } while (start_ == 0);
  seed_bits_consumed_ = seed_source.bits_consumed() - seed_bits_consumed_;
}

EpsBiasGenerator EpsBiasGenerator::from_seed(int s,
                                             std::uint64_t master_seed) {
  PrngBitSource source(master_seed);
  return EpsBiasGenerator(s, source);
}

bool EpsBiasGenerator::bit(std::uint64_t index) const {
  // x^index mod f, then inner product with the start state.
  const std::uint64_t u = field_.pow(2, index);
  return (std::popcount(start_ & u) & 1) != 0;
}

double EpsBiasGenerator::bias_bound(std::uint64_t num_bits) const {
  if (num_bits <= 1) return 0.0;
  return static_cast<double>(num_bits - 1) *
         std::pow(2.0, -static_cast<double>(field_.degree()));
}

}  // namespace rlocal
