// Bit sources with consumption accounting. The paper treats randomness as a
// scarce resource; every draw in the library flows through a BitSource (or
// the NodeRandomness facade) so experiments can report exact bit counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rnd/prng.hpp"
#include "support/assert.hpp"

namespace rlocal {

/// Thrown when a finite bit source (e.g. gathered beacon bits) runs dry.
class BitsExhausted : public std::runtime_error {
 public:
  explicit BitsExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Abstract stream of random bits; tracks how many bits were consumed.
class BitSource {
 public:
  virtual ~BitSource() = default;

  bool next_bit() {
    ++consumed_;
    return draw();
  }

  /// Next `count` bits packed little-endian into a word (count in [0, 64]).
  std::uint64_t next_bits(int count);

  /// Geometric sample with Pr[X = k] = 2^-k for k >= 1, truncated at `cap`
  /// (flip coins until the first tail; if `cap` heads come up first, return
  /// cap). Consumes min(X, cap) bits, mirroring Lemma 3.3's accounting.
  int geometric(int cap);

  std::uint64_t bits_consumed() const { return consumed_; }

 protected:
  virtual bool draw() = 0;

 private:
  std::uint64_t consumed_ = 0;
};

/// Unbounded pseudo-random bits (models the standard unbounded-randomness
/// assumption).
class PrngBitSource final : public BitSource {
 public:
  explicit PrngBitSource(std::uint64_t seed) : rng_(seed) {}

 protected:
  bool draw() override {
    if (available_ == 0) {
      buffer_ = rng_();
      available_ = 64;
    }
    const bool bit = (buffer_ & 1ULL) != 0;
    buffer_ >>= 1;
    --available_;
    return bit;
  }

 private:
  Xoshiro256 rng_;
  std::uint64_t buffer_ = 0;
  int available_ = 0;
};

/// Finite supply of pre-gathered bits (e.g. a cluster's beacon bits in
/// Lemma 3.2/3.3); throws BitsExhausted when over-drawn.
class FixedBitSource final : public BitSource {
 public:
  explicit FixedBitSource(std::vector<bool> bits) : bits_(std::move(bits)) {}

  std::uint64_t remaining() const { return bits_.size() - position_; }

 protected:
  bool draw() override {
    if (position_ >= bits_.size()) {
      throw BitsExhausted("FixedBitSource: out of bits after " +
                          std::to_string(bits_.size()));
    }
    return bits_[position_++];
  }

 private:
  std::vector<bool> bits_;
  std::size_t position_ = 0;
};

/// Adversarial constant source for failure-injection tests.
class ConstantBitSource final : public BitSource {
 public:
  explicit ConstantBitSource(bool value) : value_(value) {}

 protected:
  bool draw() override { return value_; }

 private:
  bool value_;
};

}  // namespace rlocal
