// Internal interface between KWiseGenerator and its evaluation backends
// (src/rnd/dispatch.hpp selects one at runtime; docs/randomness.md states
// the contract every backend must meet: byte-identical outputs to the
// portable shift/xor path for every field degree and point set).
//
// The PCLMUL kernels live in kwise_pclmul.cpp, the only translation unit
// compiled with the SIMD flags (-mpclmul -msse4.1, CMake option
// RLOCAL_SIMD). When the flags are off -- or the target is not x86-64 --
// that file still defines these symbols: kwise_pclmul_compiled() reports
// false and the kernels throw, so dispatch never has to link-time-detect
// anything.
#pragma once

#include <cstdint>
#include <span>

namespace rlocal::detail {

/// The field constants a backend needs, copied out of GF2m so the kernel
/// translation unit does not depend on the class layout.
struct Gf2KernelParams {
  int m = 64;                ///< field degree, in [2, 64]
  std::uint64_t low = 0;     ///< reduction polynomial below x^m
  std::uint64_t mask = 0;    ///< (1 << m) - 1 (all-ones at m = 64)
  std::uint64_t mu_low = 0;  ///< GF2m::barrett_mu_low()
};

/// True when this binary contains the PCLMUL kernels (a compile-time fact;
/// whether the *CPU* can run them is rnd::backend_available's job).
bool kwise_pclmul_compiled();

/// a * b in GF(2^m) via carry-less multiply + exact Barrett reduction.
/// Identical results to GF2m::mul for all in-field a, b.
std::uint64_t gf2_mul_pclmul(const Gf2KernelParams& field, std::uint64_t a,
                             std::uint64_t b);

/// The PCLMUL evaluation kernel behind KWiseGenerator::values: 8
/// interleaved Horner chains (three carry-less multiplies per GF(2^m)
/// product), remainder evaluated one chain at a time with the same
/// arithmetic. Precondition: coefficients non-empty, out.size() >=
/// points.size(); out-of-field points throw like the portable path.
void kwise_values_pclmul(const Gf2KernelParams& field,
                         std::span<const std::uint64_t> coefficients,
                         std::span<const std::uint64_t> points,
                         std::span<std::uint64_t> out);

}  // namespace rlocal::detail
