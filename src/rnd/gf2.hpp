// Arithmetic in GF(2^m) for m in [2, 64], used by the k-wise independent
// generator (polynomial evaluation over the field) and the AGHP small-bias
// generator (LFSR over GF(2)[x]).
//
// Field elements are packed into uint64_t; the reduction polynomial is
// f(x) = x^m + low(x) where `low` stores the coefficients below x^m.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace rlocal {

class GF2m {
 public:
  /// Constructs the field with the lexicographically-smallest irreducible
  /// reduction polynomial of degree m (found once and cached per m).
  explicit GF2m(int m);

  /// Constructs with an explicit reduction polynomial low part; the caller
  /// asserts irreducibility (used by the small-bias generator, which draws
  /// a random irreducible polynomial as part of its seed).
  GF2m(int m, std::uint64_t low_poly);

  int degree() const { return m_; }
  std::uint64_t low_poly() const { return low_; }
  std::uint64_t mask() const { return mask_; }

  /// Barrett helper for carry-less-multiply backends: the low m bits of
  /// mu = floor(x^(2m) / f). Since f = x^m + low, mu = x^m + this value, so
  /// the full quotient never needs more than 64 stored bits even at m = 64.
  /// Reducing a product P (deg <= 2m-2) is then exact in two folds:
  ///   qhat = P >> m;  q = qhat ^ ((qhat * mu_low) >> m);
  ///   P mod f = (P ^ q*low) & mask          (q << m has no bits below m).
  std::uint64_t barrett_mu_low() const { return mu_low_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const { return a ^ b; }

  /// Carryless multiplication mod the reduction polynomial.
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;

  /// Multiplication by x (one LFSR step).
  std::uint64_t mulx(std::uint64_t a) const {
    const bool carry = (a >> (m_ - 1)) & 1ULL;
    a = (a << 1) & mask_;
    return carry ? (a ^ low_) : a;
  }

  std::uint64_t pow(std::uint64_t base, std::uint64_t exp) const;

  /// x^exp mod f, supporting huge exponents given as 2^`log2_exp`.
  std::uint64_t x_pow_pow2(int log2_exp) const;

 private:
  int m_;
  std::uint64_t low_;
  std::uint64_t mask_;
  std::uint64_t mu_low_;
};

/// True iff x^m + low is irreducible over GF(2) (Rabin's test).
bool is_irreducible(int m, std::uint64_t low);

/// The cached lexicographically-smallest irreducible low part for degree m.
std::uint64_t smallest_irreducible_low(int m);

}  // namespace rlocal
