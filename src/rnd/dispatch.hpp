// Runtime selection of the k-wise evaluation backend (docs/randomness.md).
//
// Every backend produces byte-identical draws (the BatchedDraws identity
// suite is the oracle), so selection is purely a performance decision:
//
//   kPortable -- branchless shift/xor GF(2^m) arithmetic, 4-wide Horner
//                interleave. Always compiled, runs anywhere.
//   kPclmul   -- PCLMULQDQ carry-less multiply + exact Barrett reduction,
//                8-wide Horner interleave (src/rnd/kwise_pclmul.cpp).
//                Needs the RLOCAL_SIMD build flags and a CPU with the
//                PCLMULQDQ + SSE4.1 bits.
//
// Resolution order, decided once per process and cheap to consult on every
// KWiseGenerator::values call:
//
//   1. force_backend(b)            -- test/API override, checked available;
//   2. RLOCAL_RND_BACKEND env var  -- "portable" / "pclmul" force that
//      backend (first use throws InvariantError if it is unavailable, so a
//      CI leg forcing SIMD fails loudly rather than silently falling back),
//      "auto"/unset pick the best available;
//   3. best available              -- kPclmul when the binary and CPU both
//      support it, else kPortable.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace rlocal::rnd {

enum class Backend {
  kPortable = 0,
  kPclmul = 1,
};

/// Stable lowercase name ("portable", "pclmul") -- the spelling accepted by
/// RLOCAL_RND_BACKEND and stamped into profile rows and store manifests.
const char* backend_name(Backend backend);

/// Inverse of backend_name; nullopt for unknown spellings ("auto" is not a
/// backend -- callers handle it before parsing).
std::optional<Backend> parse_backend_name(std::string_view name);

/// The binary contains this backend's code (a build-configuration fact).
bool backend_compiled(Backend backend);

/// backend_compiled and the running CPU supports it; kPortable is always
/// available.
bool backend_available(Backend backend);

/// Every available backend, kPortable first (so it is never empty and the
/// first entry is always a valid comparison baseline).
std::vector<Backend> available_backends();

/// The backend KWiseGenerator::values uses right now (see resolution order
/// above). May throw InvariantError on first use when RLOCAL_RND_BACKEND
/// names an unknown or unavailable backend.
Backend active_backend();

/// Overrides the active backend (wins over the env var) after checking
/// availability; throws InvariantError for an unavailable backend and
/// changes nothing. Draws are byte-identical across backends, so flipping
/// this mid-run affects wall time only.
void force_backend(Backend backend);

/// Removes the force_backend override, returning to env/auto resolution.
void clear_backend_override();

}  // namespace rlocal::rnd
