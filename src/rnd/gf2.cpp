#include "rnd/gf2.hpp"

#include <array>

namespace rlocal {

namespace {

using Poly128 = unsigned __int128;

int poly_degree(Poly128 p) {
  int d = -1;
  while (p != 0) {
    ++d;
    p >>= 1;
  }
  return d;
}

Poly128 poly_mod(Poly128 a, Poly128 b) {
  RLOCAL_ASSERT(b != 0);
  const int db = poly_degree(b);
  int da = poly_degree(a);
  while (da >= db) {
    a ^= b << (da - db);
    da = poly_degree(a);
  }
  return a;
}

Poly128 poly_gcd(Poly128 a, Poly128 b) {
  while (b != 0) {
    const Poly128 r = poly_mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

std::array<int, 6> prime_divisors(int m) {
  std::array<int, 6> primes{};
  int count = 0;
  int x = m;
  for (int p = 2; p * p <= x; ++p) {
    if (x % p == 0) {
      primes[static_cast<std::size_t>(count++)] = p;
      while (x % p == 0) x /= p;
    }
  }
  if (x > 1) primes[static_cast<std::size_t>(count++)] = x;
  for (int i = count; i < 6; ++i) primes[static_cast<std::size_t>(i)] = 0;
  return primes;
}

}  // namespace

GF2m::GF2m(int m) : GF2m(m, smallest_irreducible_low(m)) {}

GF2m::GF2m(int m, std::uint64_t low_poly) : m_(m), low_(low_poly) {
  RLOCAL_CHECK(m >= 2 && m <= 64, "GF2m degree must be in [2, 64]");
  mask_ = (m == 64) ? ~0ULL : ((1ULL << m) - 1);
  RLOCAL_CHECK((low_poly & ~mask_) == 0, "low polynomial exceeds degree");
  RLOCAL_CHECK((low_poly & 1ULL) == 1ULL,
               "reduction polynomial needs constant term 1");
  // mu_low = floor(low * x^m / f): together with the implicit x^m term this
  // is floor(x^(2m) / f), the Barrett constant of the clmul backends. Note
  // x^(2m) itself would not fit Poly128 at m = 64; the identity
  // x^(2m) = f * x^m + low * x^m sidesteps that.
  const Poly128 f = (static_cast<Poly128>(1) << m) | static_cast<Poly128>(low_);
  Poly128 rem = static_cast<Poly128>(low_) << m;
  Poly128 quotient = 0;
  for (int d = poly_degree(rem); d >= m; d = poly_degree(rem)) {
    quotient ^= static_cast<Poly128>(1) << (d - m);
    rem ^= f << (d - m);
  }
  mu_low_ = static_cast<std::uint64_t>(quotient);
}

std::uint64_t GF2m::mul(std::uint64_t a, std::uint64_t b) const {
  std::uint64_t result = 0;
  while (b != 0) {
    if (b & 1ULL) result ^= a;
    b >>= 1;
    a = mulx(a);
  }
  return result;
}

std::uint64_t GF2m::pow(std::uint64_t base, std::uint64_t exp) const {
  std::uint64_t result = 1;
  while (exp != 0) {
    if (exp & 1ULL) result = mul(result, base);
    base = mul(base, base);
    exp >>= 1;
  }
  return result;
}

std::uint64_t GF2m::x_pow_pow2(int log2_exp) const {
  RLOCAL_CHECK(log2_exp >= 0, "exponent log must be non-negative");
  std::uint64_t s = 2;  // the polynomial "x"
  for (int i = 0; i < log2_exp; ++i) s = mul(s, s);
  return s;
}

bool is_irreducible(int m, std::uint64_t low) {
  if ((low & 1ULL) == 0) return false;  // divisible by x
  const GF2m field(m, low);
  // Rabin: x^(2^m) == x mod f, and for each prime q | m,
  // gcd(x^(2^(m/q)) - x, f) == 1.
  if (field.x_pow_pow2(m) != 2) return false;
  const Poly128 f =
      (static_cast<Poly128>(1) << m) | static_cast<Poly128>(low);
  for (const int q : prime_divisors(m)) {
    if (q == 0) break;
    const std::uint64_t h = field.x_pow_pow2(m / q) ^ 2ULL;
    if (h == 0) return false;  // x^(2^(m/q)) == x -> nontrivial factor
    if (poly_gcd(f, static_cast<Poly128>(h)) != 1) return false;
  }
  return true;
}

std::uint64_t smallest_irreducible_low(int m) {
  RLOCAL_CHECK(m >= 2 && m <= 64, "degree must be in [2, 64]");
  static std::array<std::uint64_t, 65> cache{};  // 0 = not yet computed
  auto& slot = cache[static_cast<std::size_t>(m)];
  if (slot != 0) return slot;
  for (std::uint64_t low = 1;; low += 2) {
    if (is_irreducible(m, low)) {
      slot = low;
      return low;
    }
  }
}

}  // namespace rlocal
