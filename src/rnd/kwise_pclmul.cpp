// PCLMULQDQ backend for the GF(2^m) k-wise generator (see
// kwise_backend.hpp for the contract, docs/randomness.md for the math).
//
// A GF(2^m) product is computed as one 64x64 -> 128 carry-less multiply
// followed by an exact polynomial Barrett reduction (two more carry-less
// multiplies, no correction step: polynomial division has no carries, so
// with mu = floor(x^(2m)/f) the estimated quotient is the true quotient
// for any product of degree <= 2m-2). That replaces the portable path's
// per-set-bit shift/xor loop with three constant-time clmuls, and eight
// Horner chains are interleaved so the ~7-cycle clmul latencies overlap
// across lanes instead of serializing within one.
//
// This is the only translation unit compiled with -mpclmul -msse4.1; every
// entry point is reached strictly behind rnd::backend_available(kPclmul)'s
// cpuid check (dispatch.cpp), so no illegal instruction can execute on a
// CPU without the extensions.
#include "rnd/kwise_backend.hpp"

#include "support/assert.hpp"

#if defined(RLOCAL_SIMD_PCLMUL) && (defined(__x86_64__) || defined(_M_X64))

#include <smmintrin.h>  // SSE4.1: _mm_extract_epi64
#include <wmmintrin.h>  // PCLMUL: _mm_clmulepi64_si128

namespace rlocal::detail {

bool kwise_pclmul_compiled() { return true; }

namespace {

struct U128 {
  std::uint64_t lo, hi;
};

inline U128 clmul64(std::uint64_t a, std::uint64_t b) {
  const __m128i p = _mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(a)),
      _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00);
  return {static_cast<std::uint64_t>(_mm_cvtsi128_si64(p)),
          static_cast<std::uint64_t>(_mm_extract_epi64(p, 1))};
}

inline std::uint64_t clmul64_lo(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(a)),
      _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00)));
}

/// p mod f for deg(p) <= 2m-2, exact Barrett (see GF2m::barrett_mu_low).
/// kM64 hoists the m = 64 shifts (a 64-bit shift by m would be UB there,
/// and m = 64 is the draw funnel's only field, so it gets the short path).
template <bool kM64>
inline std::uint64_t barrett_reduce(const Gf2KernelParams& f, U128 p) {
  std::uint64_t qhat, q;
  if constexpr (kM64) {
    qhat = p.hi;
  } else {
    qhat = (p.lo >> f.m) | (p.hi << (64 - f.m));
  }
  const U128 t = clmul64(qhat, f.mu_low);
  if constexpr (kM64) {
    q = qhat ^ t.hi;
  } else {
    q = qhat ^ ((t.lo >> f.m) | (t.hi << (64 - f.m)));
  }
  // q*f = (q << m) ^ q*low; the shifted half has no bits below x^m, so only
  // q*low reaches the masked remainder.
  return (p.lo ^ clmul64_lo(q, f.low)) & f.mask;
}

template <bool kM64>
inline std::uint64_t mul(const Gf2KernelParams& f, std::uint64_t a,
                         std::uint64_t b) {
  return barrett_reduce<kM64>(f, clmul64(a, b));
}

template <bool kM64>
void values_kernel(const Gf2KernelParams& f,
                   std::span<const std::uint64_t> coefficients,
                   std::span<const std::uint64_t> points,
                   std::span<std::uint64_t> out) {
  constexpr std::size_t kLanes = 8;
  const std::size_t count = points.size();
  const std::size_t k = coefficients.size();
  const std::uint64_t top = coefficients.back();
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    std::uint64_t x[kLanes], acc[kLanes];
    std::uint64_t oob = 0;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      x[lane] = points[i + lane];
      oob |= x[lane];
      acc[lane] = top;
    }
    RLOCAL_CHECK((oob & ~f.mask) == 0, "evaluation point exceeds field size");
    for (std::size_t c = k - 1; c-- > 0;) {
      // All eight products are issued before any reduction consumes one:
      // the three-clmul dependency chain of a single lane is latency-bound,
      // and this ordering is what lets the other lanes fill it.
      U128 prod[kLanes];
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        prod[lane] = clmul64(acc[lane], x[lane]);
      }
      const std::uint64_t coeff = coefficients[c];
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        acc[lane] = barrett_reduce<kM64>(f, prod[lane]) ^ coeff;
      }
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      out[i + lane] = acc[lane];
    }
  }
  for (; i < count; ++i) {
    const std::uint64_t x = points[i];
    RLOCAL_CHECK((x & ~f.mask) == 0, "evaluation point exceeds field size");
    std::uint64_t acc = top;
    for (std::size_t c = k - 1; c-- > 0;) {
      acc = mul<kM64>(f, acc, x) ^ coefficients[c];
    }
    out[i] = acc;
  }
}

}  // namespace

std::uint64_t gf2_mul_pclmul(const Gf2KernelParams& field, std::uint64_t a,
                             std::uint64_t b) {
  return field.m == 64 ? mul<true>(field, a, b) : mul<false>(field, a, b);
}

void kwise_values_pclmul(const Gf2KernelParams& field,
                         std::span<const std::uint64_t> coefficients,
                         std::span<const std::uint64_t> points,
                         std::span<std::uint64_t> out) {
  RLOCAL_ASSERT(!coefficients.empty());
  RLOCAL_ASSERT(out.size() >= points.size());
  if (field.m == 64) {
    values_kernel<true>(field, coefficients, points, out);
  } else {
    values_kernel<false>(field, coefficients, points, out);
  }
}

}  // namespace rlocal::detail

#else  // PCLMUL not compiled in: report so, and make any call a clean error.

namespace rlocal::detail {

bool kwise_pclmul_compiled() { return false; }

std::uint64_t gf2_mul_pclmul(const Gf2KernelParams&, std::uint64_t,
                             std::uint64_t) {
  RLOCAL_CHECK(false, "pclmul backend is not compiled into this binary");
}

void kwise_values_pclmul(const Gf2KernelParams&,
                         std::span<const std::uint64_t>,
                         std::span<const std::uint64_t>,
                         std::span<std::uint64_t>) {
  RLOCAL_CHECK(false, "pclmul backend is not compiled into this binary");
}

}  // namespace rlocal::detail

#endif
