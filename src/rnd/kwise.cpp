#include "rnd/kwise.hpp"

#include <bit>
#include <cmath>

#include "obs/counters.hpp"
#include "rnd/dispatch.hpp"
#include "rnd/kwise_backend.hpp"

namespace rlocal {

KWiseGenerator::KWiseGenerator(int k, int m, BitSource& seed_source)
    : field_(m) {
  RLOCAL_CHECK(k >= 1, "k must be >= 1");
  coefficients_.resize(static_cast<std::size_t>(k));
  for (auto& c : coefficients_) c = seed_source.next_bits(m);
}

KWiseGenerator KWiseGenerator::from_seed(int k, int m,
                                         std::uint64_t master_seed) {
  PrngBitSource source(master_seed);
  return KWiseGenerator(k, m, source);
}

std::uint64_t KWiseGenerator::value(std::uint64_t point) const {
  RLOCAL_CHECK((point & ~field_.mask()) == 0,
               "evaluation point exceeds field size");
  if (memo_enabled_ && memo_valid_ && memo_point_ == point) {
    return memo_value_;
  }
  // Horner evaluation: a_{k-1} x^{k-1} + ... + a_0.
  std::uint64_t acc = coefficients_.back();
  for (std::size_t i = coefficients_.size() - 1; i-- > 0;) {
    acc = field_.mul(acc, point) ^ coefficients_[i];
  }
  if (memo_enabled_) {
    memo_point_ = point;
    memo_value_ = acc;
    memo_valid_ = true;
  }
  return acc;
}

void KWiseGenerator::values(std::span<const std::uint64_t> points,
                            std::span<std::uint64_t> out) const {
  RLOCAL_CHECK(out.size() >= points.size(),
               "values() output span is shorter than the point span");
  // Backend dispatch (src/rnd/dispatch.hpp): one relaxed atomic load picks
  // the evaluation kernel. Both kernels compute the same polynomial over
  // the same field, so the produced bytes are identical -- the choice is
  // wall-time only (pinned by the BackendMatrix identity tests).
  if (rnd::active_backend() == rnd::Backend::kPclmul) {
    // Per-backend draw volume for /metrics: one count per evaluation point
    // (the label spelling matches rnd::backend_name).
    static obs::Counter& draws =
        obs::counter("rlocal_kwise_draws_total{backend=\"pclmul\"}");
    draws.add(points.size());
    const detail::Gf2KernelParams field{field_.degree(), field_.low_poly(),
                                        field_.mask(),
                                        field_.barrett_mu_low()};
    detail::kwise_values_pclmul(field, coefficients_, points, out);
    return;
  }
  {
    static obs::Counter& draws =
        obs::counter("rlocal_kwise_draws_total{backend=\"portable\"}");
    draws.add(points.size());
  }
  const std::size_t count = points.size();
  const std::size_t k = coefficients_.size();
  std::size_t i = 0;
  // Portable kernel: four interleaved Horner chains. A single GF(2^m)
  // product is a long *dependent* shift/xor chain (GF2m::mul), so
  // evaluating one point at a time leaves the core mostly stalled on it;
  // here each multiply step is a branchless fixed-trip loop over four
  // independent accumulators, so the four chains overlap. The arithmetic
  // is identical to value().
  for (; i + 4 <= count; i += 4) {
    const std::uint64_t x0 = points[i], x1 = points[i + 1];
    const std::uint64_t x2 = points[i + 2], x3 = points[i + 3];
    RLOCAL_CHECK(((x0 | x1 | x2 | x3) & ~field_.mask()) == 0,
                 "evaluation point exceeds field size");
    // Bits above the widest point of the block contribute nothing to any
    // lane, so the multiply loop stops there -- matching GF2m::mul's
    // early exit (draw points pack (node, stream, chunk) into the low
    // bits, so this is the common case, not an edge case).
    const int significant_bits = std::bit_width(x0 | x1 | x2 | x3);
    const std::uint64_t low = field_.low_poly();
    const std::uint64_t mask = field_.mask();
    const int msb = field_.degree() - 1;
    std::uint64_t a0 = coefficients_.back(), a1 = a0, a2 = a0, a3 = a0;
    for (std::size_t c = k - 1; c-- > 0;) {
      std::uint64_t r0 = 0, r1 = 0, r2 = 0, r3 = 0;
      std::uint64_t b0 = x0, b1 = x1, b2 = x2, b3 = x3;
      for (int j = 0; j < significant_bits; ++j) {
        // (0 - bit) is all-ones when the bit is set: both the "xor the
        // current a * x^j term" and the reduction step of x-multiplication
        // are masks, never branches -- point and carry bits are ~uniform,
        // so a branch here would mispredict half the time.
        r0 ^= (0 - (b0 & 1ULL)) & a0;
        r1 ^= (0 - (b1 & 1ULL)) & a1;
        r2 ^= (0 - (b2 & 1ULL)) & a2;
        r3 ^= (0 - (b3 & 1ULL)) & a3;
        b0 >>= 1;
        b1 >>= 1;
        b2 >>= 1;
        b3 >>= 1;
        a0 = ((a0 << 1) & mask) ^ (low & (0 - ((a0 >> msb) & 1ULL)));
        a1 = ((a1 << 1) & mask) ^ (low & (0 - ((a1 >> msb) & 1ULL)));
        a2 = ((a2 << 1) & mask) ^ (low & (0 - ((a2 >> msb) & 1ULL)));
        a3 = ((a3 << 1) & mask) ^ (low & (0 - ((a3 >> msb) & 1ULL)));
      }
      const std::uint64_t coeff = coefficients_[c];
      a0 = r0 ^ coeff;
      a1 = r1 ^ coeff;
      a2 = r2 ^ coeff;
      a3 = r3 ^ coeff;
    }
    out[i] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < count; ++i) {
    const std::uint64_t x = points[i];
    RLOCAL_CHECK((x & ~field_.mask()) == 0,
                 "evaluation point exceeds field size");
    std::uint64_t acc = coefficients_.back();
    for (std::size_t c = k - 1; c-- > 0;) {
      acc = field_.mul(acc, x) ^ coefficients_[c];
    }
    out[i] = acc;
  }
}

bool KWiseGenerator::bernoulli(std::uint64_t point, double p) const {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const int m = field_.degree();
  // threshold = floor(p * 2^m), computed in long double to stay exact for
  // m = 64.
  const long double scaled = std::ldexp(static_cast<long double>(p), m);
  const auto threshold = static_cast<std::uint64_t>(scaled);
  return value(point) < threshold;
}

}  // namespace rlocal
