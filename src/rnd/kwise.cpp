#include "rnd/kwise.hpp"

#include <cmath>

namespace rlocal {

KWiseGenerator::KWiseGenerator(int k, int m, BitSource& seed_source)
    : field_(m) {
  RLOCAL_CHECK(k >= 1, "k must be >= 1");
  coefficients_.resize(static_cast<std::size_t>(k));
  for (auto& c : coefficients_) c = seed_source.next_bits(m);
}

KWiseGenerator KWiseGenerator::from_seed(int k, int m,
                                         std::uint64_t master_seed) {
  PrngBitSource source(master_seed);
  return KWiseGenerator(k, m, source);
}

std::uint64_t KWiseGenerator::value(std::uint64_t point) const {
  RLOCAL_CHECK((point & ~field_.mask()) == 0,
               "evaluation point exceeds field size");
  if (memo_enabled_ && memo_valid_ && memo_point_ == point) {
    return memo_value_;
  }
  // Horner evaluation: a_{k-1} x^{k-1} + ... + a_0.
  std::uint64_t acc = coefficients_.back();
  for (std::size_t i = coefficients_.size() - 1; i-- > 0;) {
    acc = field_.mul(acc, point) ^ coefficients_[i];
  }
  if (memo_enabled_) {
    memo_point_ = point;
    memo_value_ = acc;
    memo_valid_ = true;
  }
  return acc;
}

bool KWiseGenerator::bernoulli(std::uint64_t point, double p) const {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const int m = field_.degree();
  // threshold = floor(p * 2^m), computed in long double to stay exact for
  // m = 64.
  const long double scaled = std::ldexp(static_cast<long double>(p), m);
  const auto threshold = static_cast<std::uint64_t>(scaled);
  return value(point) < threshold;
}

}  // namespace rlocal
