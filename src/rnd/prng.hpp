// Deterministic PRNGs: SplitMix64 (seeding / hashing) and xoshiro256**
// (bulk generation). Both are standard public-domain designs, reimplemented
// here so the library has zero external dependencies and fully reproducible
// streams across platforms.
#pragma once

#include <array>
#include <cstdint>

namespace rlocal {

/// One SplitMix64 step: returns the mixed value and advances the state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1E3567B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless strong mix of up to three words -- used as a PRF to model
/// "fresh independent bits at (node, stream)" in the full-independence
/// regime, keyed by a master seed.
constexpr std::uint64_t mix3(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  std::uint64_t s = a;
  std::uint64_t x = splitmix64(s);
  s ^= b + 0x9E3779B97F4A7C15ULL;
  x ^= splitmix64(s);
  s ^= c + 0xD1B54A32D192ED03ULL;
  x ^= splitmix64(s);
  // Final avalanche.
  x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCDULL;
  x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  return x ^ (x >> 33);
}

/// xoshiro256** generator; satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rlocal
