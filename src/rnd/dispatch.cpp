#include "rnd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "rnd/kwise_backend.hpp"
#include "support/assert.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace rlocal::rnd {

namespace {

/// CPUID.1:ECX feature bits; both checked because the kernel TU uses
/// SSE4.1 extracts alongside the carry-less multiplies (every PCLMUL CPU
/// since Westmere has both, but the probe stays honest).
bool cpu_has_pclmul() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned kPclmulBit = 1u << 1;
  constexpr unsigned kSse41Bit = 1u << 19;
  return (ecx & kPclmulBit) != 0 && (ecx & kSse41Bit) != 0;
#else
  return false;
#endif
}

Backend best_available() {
  return backend_available(Backend::kPclmul) ? Backend::kPclmul
                                             : Backend::kPortable;
}

Backend resolve_from_env() {
  const char* raw = std::getenv("RLOCAL_RND_BACKEND");
  if (raw == nullptr) return best_available();
  const std::string_view requested(raw);
  if (requested.empty() || requested == "auto") return best_available();
  const std::optional<Backend> parsed = parse_backend_name(requested);
  RLOCAL_CHECK(parsed.has_value(),
               "RLOCAL_RND_BACKEND='" + std::string(requested) +
                   "' is not a backend (use auto, portable, or pclmul)");
  RLOCAL_CHECK(backend_available(*parsed),
               "RLOCAL_RND_BACKEND forces the " +
                   std::string(backend_name(*parsed)) +
                   " backend, which is " +
                   (backend_compiled(*parsed)
                        ? "not supported by this CPU"
                        : "not compiled into this binary"));
  return *parsed;
}

/// force_backend override; -1 = none. Atomic (not a mutex) because
/// active_backend sits on the values() hot path.
std::atomic<int> g_forced{-1};

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kPortable:
      return "portable";
    case Backend::kPclmul:
      return "pclmul";
  }
  RLOCAL_ASSERT(false);
}

std::optional<Backend> parse_backend_name(std::string_view name) {
  if (name == "portable") return Backend::kPortable;
  if (name == "pclmul") return Backend::kPclmul;
  return std::nullopt;
}

bool backend_compiled(Backend backend) {
  switch (backend) {
    case Backend::kPortable:
      return true;
    case Backend::kPclmul:
      return detail::kwise_pclmul_compiled();
  }
  RLOCAL_ASSERT(false);
}

bool backend_available(Backend backend) {
  if (backend == Backend::kPortable) return true;
  // cpuid is cheap but not free; the result cannot change within a process.
  static const bool has_pclmul = cpu_has_pclmul();
  return backend_compiled(backend) && has_pclmul;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> backends = {Backend::kPortable};
  if (backend_available(Backend::kPclmul)) {
    backends.push_back(Backend::kPclmul);
  }
  return backends;
}

Backend active_backend() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  // Magic-static: the env var is read and validated once per process, on
  // the first unforced draw (or probe).
  static const Backend resolved = resolve_from_env();
  return resolved;
}

void force_backend(Backend backend) {
  RLOCAL_CHECK(backend_available(backend),
               std::string("cannot force the ") + backend_name(backend) +
                   " backend: " +
                   (backend_compiled(backend)
                        ? "this CPU does not support it"
                        : "it is not compiled into this binary"));
  g_forced.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void clear_backend_override() {
  g_forced.store(-1, std::memory_order_relaxed);
}

}  // namespace rlocal::rnd
