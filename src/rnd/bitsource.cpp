#include "rnd/bitsource.hpp"

namespace rlocal {

std::uint64_t BitSource::next_bits(int count) {
  RLOCAL_CHECK(count >= 0 && count <= 64, "count must be in [0, 64]");
  std::uint64_t word = 0;
  for (int i = 0; i < count; ++i) {
    if (next_bit()) word |= (1ULL << i);
  }
  return word;
}

int BitSource::geometric(int cap) {
  RLOCAL_CHECK(cap >= 1, "geometric cap must be >= 1");
  for (int k = 1; k <= cap; ++k) {
    if (!next_bit()) return k;  // tail on flip k
  }
  return cap;
}

}  // namespace rlocal
