// Small-bias (epsilon-biased) sample space in the style of Naor-Naor [NN93]
// via the LFSR construction of Alon-Goldreich-Hastad-Peralta: the seed is a
// random irreducible polynomial f of degree s over GF(2) plus a random start
// state; bit i is the inner product <start, x^i mod f>.
//
// For N output bits the bias is at most (N-1)/2^s, so s = Theta(log n) seed
// bits give an n^{-Theta(1)}-biased space of poly(n) bits -- exactly the
// O(log n)-bits-of-shared-randomness regime of Lemma 3.4.
#pragma once

#include <cstdint>

#include "rnd/bitsource.hpp"
#include "rnd/gf2.hpp"

namespace rlocal {

class EpsBiasGenerator {
 public:
  /// Nominal seed entropy is 2s bits: s for the polynomial, s for the start
  /// state. The polynomial is drawn by rejection from `seed_source` (actual
  /// bits consumed may exceed s; see seed_bits_consumed()).
  EpsBiasGenerator(int s, BitSource& seed_source);

  static EpsBiasGenerator from_seed(int s, std::uint64_t master_seed);

  /// The i-th bit of the sample-space point selected by the seed.
  bool bit(std::uint64_t index) const;

  int s() const { return field_.degree(); }
  std::uint64_t nominal_seed_bits() const {
    return 2 * static_cast<std::uint64_t>(s());
  }
  std::uint64_t seed_bits_consumed() const { return seed_bits_consumed_; }

  /// Bias upper bound when using bits 0..num_bits-1.
  double bias_bound(std::uint64_t num_bits) const;

 private:
  // Declaration order matters: seed_bits_consumed_ captures the source's
  // counter before field_/start_ draw from it; the constructor body turns it
  // into the delta.
  std::uint64_t seed_bits_consumed_;
  GF2m field_;
  std::uint64_t start_;

  static GF2m draw_field(int s, BitSource& seed_source);
};

}  // namespace rlocal
