// Randomness regimes: the paper's three ways of making randomness scarce,
// plus the standard model and adversarial sources for failure injection.
//
//   kFull          -- unbounded fresh independent bits per node (standard)
//   kKWise         -- all bits in the network are exactly k-wise independent
//   kSharedKWise   -- `shared_bits` globally shared bits, expanded into a
//                     floor(bits/64)-wise independent family (AS04-style)
//   kSharedEpsBias -- `shared_bits` shared bits feeding an AGHP small-bias
//                     space (the NN93 route of Lemma 3.4)
//   kPooled        -- per-cluster pooled randomness (the Lemma 3.3 beacon
//                     setting): nodes map through a cluster-assignment table
//                     (or round-robin when none is given) and every node of
//                     a pool draws from that pool's single `pool_bits`-bit
//                     stream, expanded floor(pool_bits/64)-wise; pools are
//                     independent of each other
//   kAllZeros/kAllOnes -- adversarial constants for failure injection
//
// NodeRandomness is the facade all algorithms draw through: a deterministic
// function of (regime, master_seed, node, stream, bit index), so identical
// runs are bit-for-bit reproducible and engine-vs-reference cross-checks can
// share one stream. A ledger tracks derived bits so experiments can report
// exact randomness consumption.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rnd/epsbias.hpp"
#include "rnd/kwise.hpp"
#include "support/assert.hpp"

namespace rlocal {

enum class RegimeKind {
  kFull,
  kKWise,
  kSharedKWise,
  kSharedEpsBias,
  kPooled,
  kAllZeros,
  kAllOnes,
};

/// Cluster-assignment table for the pooled regime: entry v is the pool id of
/// node v (ids in [0, num_pools)). Shared so Regime stays cheap to copy
/// across sweep cells.
using PoolTable = std::shared_ptr<const std::vector<std::int32_t>>;

struct Regime {
  RegimeKind kind = RegimeKind::kFull;
  int k = 0;            ///< independence parameter (kKWise)
  int shared_bits = 0;  ///< global seed budget (shared regimes)
  int num_pools = 0;    ///< pool count (kPooled)
  int pool_bits = 0;    ///< seed bits per pool (kPooled)
  PoolTable pool_table;  ///< per-node pool id; empty -> node % num_pools

  static Regime full() { return {RegimeKind::kFull, 0, 0, 0, 0, nullptr}; }
  static Regime kwise(int k) {
    RLOCAL_CHECK(k >= 1, "kwise(k) requires k >= 1");
    return {RegimeKind::kKWise, k, 0, 0, 0, nullptr};
  }
  static Regime shared_kwise(int bits) {
    RLOCAL_CHECK(bits >= 1, "shared_kwise(bits) requires bits >= 1");
    return {RegimeKind::kSharedKWise, 0, bits, 0, 0, nullptr};
  }
  static Regime shared_epsbias(int bits) {
    RLOCAL_CHECK(bits >= 1, "shared_epsbias(bits) requires bits >= 1");
    return {RegimeKind::kSharedEpsBias, 0, bits, 0, 0, nullptr};
  }
  /// Pooled randomness with the round-robin assignment node % num_pools
  /// (graph-size agnostic, so pooled cells can ride generic sweep grids).
  static Regime pooled(int num_pools, int bits_per_pool) {
    RLOCAL_CHECK(num_pools >= 1, "pooled(p, bits) requires p >= 1");
    RLOCAL_CHECK(bits_per_pool >= 1, "pooled(p, bits) requires bits >= 1");
    return {RegimeKind::kPooled, 0, 0, num_pools, bits_per_pool, nullptr};
  }
  /// Pooled randomness with an explicit cluster-assignment table (e.g. the
  /// Lemma 3.2 owner map); entries must lie in [0, max+1).
  static Regime pooled(std::vector<std::int32_t> table, int bits_per_pool);
  /// Copy of this pooled regime with the assignment table replaced,
  /// keeping its bit budget -- a convenience for binding a generic pooled
  /// regime to clusters computed for one concrete graph (e.g. a Lemma 3.2
  /// owner map). Throws for non-pooled regimes.
  Regime with_pool_table(std::vector<std::int32_t> table) const;
  static Regime all_zeros() {
    return {RegimeKind::kAllZeros, 0, 0, 0, 0, nullptr};
  }
  static Regime all_ones() {
    return {RegimeKind::kAllOnes, 0, 0, 0, 0, nullptr};
  }

  std::string name() const;
};

class NodeRandomness {
 public:
  /// Limits of the injective (node, stream, bit) packing.
  static constexpr std::uint64_t kMaxNode = 1ULL << 26;
  static constexpr std::uint64_t kMaxStream = 1ULL << 26;
  static constexpr int kMaxBitsPerDraw = 1 << 12;

  NodeRandomness(const Regime& regime, std::uint64_t master_seed);

  /// The j-th random bit of draw `stream` at `node`.
  bool bit(std::uint64_t node, std::uint64_t stream, int j = 0);

  /// 64 random bits (chunk c of the draw).
  std::uint64_t chunk(std::uint64_t node, std::uint64_t stream, int c = 0);

  /// Bernoulli(p); resolution 2^-52 (2^-20 for the eps-bias regime, whose
  /// bits are assembled one field exponentiation at a time).
  bool bernoulli(std::uint64_t node, std::uint64_t stream, double p);

  /// Geometric with Pr[X=k] = 2^-k truncated at cap (<= kMaxBitsPerDraw).
  int geometric(std::uint64_t node, std::uint64_t stream, int cap);

  // --- Batched fast path -------------------------------------------------
  //
  // One call gathers a draw for MANY nodes of one stream: the (node, stream,
  // chunk) evaluation points are materialized together and routed through
  // KWiseGenerator::values (per-pool generators in the pooled regime), so
  // the GF(2^64) Horner chains of four points overlap instead of
  // serializing -- the dominant cost of k-wise-heavy sweep cells. Results
  // are byte-identical to the scalar loops (`out[i] == scalar(nodes[i])`),
  // and the ledger/draw-call accounting is charged once per batch in the
  // exact amounts the scalar loop would accumulate, so batch and scalar
  // runs produce identical records. The scalar bit()/geometric() above are
  // thin wrappers over single-element batches.
  //
  // Checkpoint semantics: a batch fires the installed checkpoint exactly as
  // many times as the equivalent scalar loop would (one fire per
  // kCheckpointInterval draw calls), coalesced at one point of the batch
  // instead of interleaved between draws -- a throwing checkpoint (deadline
  // expiry) therefore aborts the batch wholesale instead of a suffix. The
  // hook cannot observe values, so determinism of the produced draws is
  // untouched either way.

  /// out[i] = bit(nodes[i], stream, j), as 0/1 bytes.
  void bits_batch(std::span<const std::uint64_t> nodes, std::uint64_t stream,
                  int j, std::span<std::uint8_t> out);

  /// out[i] = bernoulli(nodes[i], stream, p), as 0/1 bytes -- the batched
  /// center-election coin of the epoch constructions (Theorems 3.6/3.7).
  void bernoulli_batch(std::span<const std::uint64_t> nodes,
                       std::uint64_t stream, double p,
                       std::span<std::uint8_t> out);

  /// out[i] = chunk(nodes[i], stream, 0) >> (64 - bits) -- the top-`bits`
  /// priority draw of Luby-style algorithms; bits in [1, 64].
  void priority_batch(std::span<const std::uint64_t> nodes,
                      std::uint64_t stream, int bits,
                      std::span<std::uint64_t> out);

  /// out[i] = geometric(nodes[i], stream, cap). Chunk c of every
  /// still-undecided node is gathered in one values() pass before the next
  /// chunk is touched, so a cap > 64 costs one extra batched evaluation per
  /// 64 all-heads bits instead of one Horner chain per bit.
  void geometric_batch(std::span<const std::uint64_t> nodes,
                       std::uint64_t stream, int cap, std::span<int> out);

  const Regime& regime() const { return regime_; }

  /// Bits of true (seed) randomness the regime consumed; 0 for kFull/kKWise
  /// means "unbounded model" (per-node fresh bits / an abstract k-wise
  /// family) -- see derived_bits() for usage counts. For the pooled regime
  /// this grows the first time each pool is drawn from, by the bits its
  /// generator actually consumes (floor(pool_bits/64) GF(2^64)
  /// coefficients, i.e. pool_bits rounded down to a multiple of 64 --
  /// the same bits-actually-consumed convention as the shared regimes), so
  /// the ledger charges exactly the pools a run touched.
  std::uint64_t shared_seed_bits() const { return shared_seed_bits_; }

  /// Number of derived bits handed to algorithms so far.
  std::uint64_t derived_bits() const { return derived_bits_; }

  /// Pooled-regime accounting: pools drawn from so far (0 otherwise).
  int pools_touched() const { return static_cast<int>(pools_.size()); }

  /// The pool `node` draws through (kPooled only; checked).
  std::int32_t pool_of(std::uint64_t node) const;

  /// Installs a cooperative checkpoint invoked once every
  /// kCheckpointInterval draw calls. Every randomized algorithm's inner
  /// loop passes through a draw, so this is where a sweep's per-cell
  /// deadline (lab::RunContext) reaches long-running library code without
  /// the rnd layer knowing about the lab: the hook may throw (e.g.
  /// DeadlineExpired) and the draw never happens. The hook cannot observe
  /// or change drawn values, so determinism is untouched.
  void set_checkpoint(std::function<void()> checkpoint) {
    checkpoint_ = std::move(checkpoint);
  }
  static constexpr std::uint64_t kCheckpointInterval = 64;

 private:
  Regime regime_;
  std::uint64_t master_seed_;
  std::uint64_t shared_seed_bits_ = 0;
  std::uint64_t derived_bits_ = 0;
  std::function<void()> checkpoint_;
  std::uint64_t draw_calls_ = 0;

  /// Called at every public draw entry point, before the draw.
  void maybe_checkpoint() {
    if (checkpoint_ && (++draw_calls_ % kCheckpointInterval) == 0) {
      checkpoint_();
    }
  }
  /// Batch equivalent: advances the draw-call counter by `draws` and fires
  /// the checkpoint once per kCheckpointInterval boundary crossed -- the
  /// same number of fires the scalar loop's maybe_checkpoint() would make.
  void batch_checkpoint(std::uint64_t draws);
  std::optional<KWiseGenerator> kwise_;
  std::optional<EpsBiasGenerator> epsbias_;
  /// Lazily instantiated per-pool generators (kPooled).
  std::map<std::int32_t, KWiseGenerator> pools_;
  // Reused batch scratch (points / per-node pool ids / geometric work
  // lists); member buffers so steady-state batches allocate nothing.
  std::vector<std::uint64_t> batch_points_;   ///< gather_chunks: eval points
  std::vector<std::uint64_t> batch_words_;    ///< gathered 64-bit chunks
  std::vector<std::int32_t> batch_pool_;      ///< gather_chunks: pool ids
  std::vector<std::size_t> batch_scatter_;    ///< gather_chunks: pool scatter
  std::vector<std::uint64_t> batch_nodes_;    ///< geometric: active nodes
  std::vector<std::size_t> batch_index_;      ///< geometric: active -> out

  static std::uint64_t pack(std::uint64_t node, std::uint64_t stream, int c);
  std::uint64_t chunk_impl(std::uint64_t node, std::uint64_t stream, int c);
  /// words[i] = chunk_impl(nodes[i], stream, c) for the whole span; no
  /// ledger/checkpoint side effects (callers charge per public batch).
  void gather_chunks(std::span<const std::uint64_t> nodes,
                     std::uint64_t stream, int c,
                     std::span<std::uint64_t> words);
  const KWiseGenerator& pool_generator(std::int32_t pool);
};

/// The injective (node, stream, chunk) -> evaluation-point packing used by
/// NodeRandomness, exposed so per-cluster generators (Theorem 3.7) can
/// address the same draw space.
std::uint64_t pack_draw(std::uint64_t node, std::uint64_t stream, int chunk);

/// Bernoulli(p) / truncated-geometric draws addressed by (node, stream) on
/// an explicit k-wise generator (used when each cluster holds its own
/// generator instead of one global regime).
bool kwise_bernoulli_at(const KWiseGenerator& gen, std::uint64_t node,
                        std::uint64_t stream, double p);
int kwise_geometric_at(const KWiseGenerator& gen, std::uint64_t node,
                       std::uint64_t stream, int cap);

}  // namespace rlocal
