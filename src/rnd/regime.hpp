// Randomness regimes: the paper's three ways of making randomness scarce,
// plus the standard model and adversarial sources for failure injection.
//
//   kFull          -- unbounded fresh independent bits per node (standard)
//   kKWise         -- all bits in the network are exactly k-wise independent
//   kSharedKWise   -- `shared_bits` globally shared bits, expanded into a
//                     floor(bits/64)-wise independent family (AS04-style)
//   kSharedEpsBias -- `shared_bits` shared bits feeding an AGHP small-bias
//                     space (the NN93 route of Lemma 3.4)
//   kAllZeros/kAllOnes -- adversarial constants for failure injection
//
// NodeRandomness is the facade all algorithms draw through: a deterministic
// function of (regime, master_seed, node, stream, bit index), so identical
// runs are bit-for-bit reproducible and engine-vs-reference cross-checks can
// share one stream. A ledger tracks derived bits so experiments can report
// exact randomness consumption.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "rnd/epsbias.hpp"
#include "rnd/kwise.hpp"
#include "support/assert.hpp"

namespace rlocal {

enum class RegimeKind {
  kFull,
  kKWise,
  kSharedKWise,
  kSharedEpsBias,
  kAllZeros,
  kAllOnes,
};

struct Regime {
  RegimeKind kind = RegimeKind::kFull;
  int k = 0;            ///< independence parameter (kKWise)
  int shared_bits = 0;  ///< global seed budget (shared regimes)

  static Regime full() { return {RegimeKind::kFull, 0, 0}; }
  static Regime kwise(int k) {
    RLOCAL_CHECK(k >= 1, "kwise(k) requires k >= 1");
    return {RegimeKind::kKWise, k, 0};
  }
  static Regime shared_kwise(int bits) {
    RLOCAL_CHECK(bits >= 1, "shared_kwise(bits) requires bits >= 1");
    return {RegimeKind::kSharedKWise, 0, bits};
  }
  static Regime shared_epsbias(int bits) {
    RLOCAL_CHECK(bits >= 1, "shared_epsbias(bits) requires bits >= 1");
    return {RegimeKind::kSharedEpsBias, 0, bits};
  }
  static Regime all_zeros() { return {RegimeKind::kAllZeros, 0, 0}; }
  static Regime all_ones() { return {RegimeKind::kAllOnes, 0, 0}; }

  std::string name() const;
};

class NodeRandomness {
 public:
  /// Limits of the injective (node, stream, bit) packing.
  static constexpr std::uint64_t kMaxNode = 1ULL << 26;
  static constexpr std::uint64_t kMaxStream = 1ULL << 26;
  static constexpr int kMaxBitsPerDraw = 1 << 12;

  NodeRandomness(const Regime& regime, std::uint64_t master_seed);

  /// The j-th random bit of draw `stream` at `node`.
  bool bit(std::uint64_t node, std::uint64_t stream, int j = 0);

  /// 64 random bits (chunk c of the draw).
  std::uint64_t chunk(std::uint64_t node, std::uint64_t stream, int c = 0);

  /// Bernoulli(p); resolution 2^-52 (2^-20 for the eps-bias regime, whose
  /// bits are assembled one field exponentiation at a time).
  bool bernoulli(std::uint64_t node, std::uint64_t stream, double p);

  /// Geometric with Pr[X=k] = 2^-k truncated at cap (<= kMaxBitsPerDraw).
  int geometric(std::uint64_t node, std::uint64_t stream, int cap);

  const Regime& regime() const { return regime_; }

  /// Bits of true (seed) randomness the regime consumed; 0 for kFull/kKWise
  /// means "unbounded model" (per-node fresh bits / an abstract k-wise
  /// family) -- see derived_bits() for usage counts.
  std::uint64_t shared_seed_bits() const { return shared_seed_bits_; }

  /// Number of derived bits handed to algorithms so far.
  std::uint64_t derived_bits() const { return derived_bits_; }

 private:
  Regime regime_;
  std::uint64_t master_seed_;
  std::uint64_t shared_seed_bits_ = 0;
  std::uint64_t derived_bits_ = 0;
  std::optional<KWiseGenerator> kwise_;
  std::optional<EpsBiasGenerator> epsbias_;

  static std::uint64_t pack(std::uint64_t node, std::uint64_t stream, int c);
  std::uint64_t chunk_impl(std::uint64_t node, std::uint64_t stream, int c);
};

/// The injective (node, stream, chunk) -> evaluation-point packing used by
/// NodeRandomness, exposed so per-cluster generators (Theorem 3.7) can
/// address the same draw space.
std::uint64_t pack_draw(std::uint64_t node, std::uint64_t stream, int chunk);

/// Bernoulli(p) / truncated-geometric draws addressed by (node, stream) on
/// an explicit k-wise generator (used when each cluster holds its own
/// generator instead of one global regime).
bool kwise_bernoulli_at(const KWiseGenerator& gen, std::uint64_t node,
                        std::uint64_t stream, double p);
int kwise_geometric_at(const KWiseGenerator& gen, std::uint64_t node,
                       std::uint64_t stream, int cap);

}  // namespace rlocal
