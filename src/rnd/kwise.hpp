// Exactly k-wise independent random values via a uniformly random
// degree-(k-1) polynomial over GF(2^m): evaluations at distinct points are
// jointly uniform for any k points [AS04, standard construction].
//
// Seed size is k*m bits, matching the paper's "O(k log n) fully independent
// bits yield poly(n) k-wise independent bits" accounting.
//
// Perf: value() memoizes the last evaluation point. Algorithms address
// draws as (node, stream, chunk) packings, and a node's bit/geometric draws
// hit the *same* point up to 64 times in a row (one Horner chain per bit
// without the memo) -- the dominant cost of k-wise sweep cells at large k.
// Since the coefficients are fixed at construction, caching the final value
// subsumes caching the point's power table. The memo makes concurrent
// value() calls on ONE instance racy; every call site owns its generator
// per cell/thread (NodeRandomness is per-cell), and set_memo_enabled(false)
// restores the stateless behavior (used by bench_micro_engine's
// before/after case).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rnd/bitsource.hpp"
#include "rnd/gf2.hpp"

namespace rlocal {

class KWiseGenerator {
 public:
  /// Draws the k coefficients (k*m bits) from `seed_source`.
  KWiseGenerator(int k, int m, BitSource& seed_source);

  /// Convenience: coefficients from a PRNG keyed by `master_seed`.
  static KWiseGenerator from_seed(int k, int m, std::uint64_t master_seed);

  /// Uniform m-bit value at evaluation point `point` (< 2^m). Any k distinct
  /// points give jointly independent uniform values. Repeated evaluation at
  /// the most recent point is O(1) (see the memo note in the file comment).
  std::uint64_t value(std::uint64_t point) const;

  /// Batch evaluation at many (typically *distinct*) points --
  /// `out[i] = value(points[i])`, with the Horner recurrences of several
  /// points interleaved so their GF(2^m) multiplication chains overlap
  /// instead of serializing (the last-point memo only helps *repeated*
  /// points; this is the distinct-point complement, see
  /// BM_KWiseDistinctPointDraws). The evaluation kernel is chosen by
  /// rnd::active_backend() -- portable branchless shift/xor (4-wide) or
  /// PCLMUL carry-less multiply (8-wide) -- and every backend produces
  /// byte-identical outputs (docs/randomness.md states the contract).
  /// Does not read or update the memo. `out` may be the *same* span as
  /// `points` (in-place evaluation); any other overlap is undefined --
  /// blocks of outputs are written before later points are read.
  void values(std::span<const std::uint64_t> points,
              std::span<std::uint64_t> out) const;

  /// Disables/enables the last-point memo (default: enabled). The produced
  /// values are identical either way; this only exists so benchmarks can
  /// measure the un-memoized cost.
  void set_memo_enabled(bool enabled) {
    memo_enabled_ = enabled;
    memo_valid_ = false;
  }

  bool bit(std::uint64_t point) const { return (value(point) & 1ULL) != 0; }

  /// Bernoulli(p) derived by thresholding the m-bit value; quantization
  /// error of p is at most 2^-m.
  bool bernoulli(std::uint64_t point, double p) const;

  int k() const { return static_cast<int>(coefficients_.size()); }
  int m() const { return field_.degree(); }
  std::uint64_t seed_bits() const {
    return static_cast<std::uint64_t>(k()) *
           static_cast<std::uint64_t>(m());
  }

 private:
  GF2m field_;
  std::vector<std::uint64_t> coefficients_;  // a_0 .. a_{k-1}
  // Last-point memo (mutable: value() is logically const -- a pure function
  // of (coefficients, point) -- and the memo never changes what it returns).
  bool memo_enabled_ = true;
  mutable bool memo_valid_ = false;
  mutable std::uint64_t memo_point_ = 0;
  mutable std::uint64_t memo_value_ = 0;
};

}  // namespace rlocal
