// Exactly k-wise independent random values via a uniformly random
// degree-(k-1) polynomial over GF(2^m): evaluations at distinct points are
// jointly uniform for any k points [AS04, standard construction].
//
// Seed size is k*m bits, matching the paper's "O(k log n) fully independent
// bits yield poly(n) k-wise independent bits" accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "rnd/bitsource.hpp"
#include "rnd/gf2.hpp"

namespace rlocal {

class KWiseGenerator {
 public:
  /// Draws the k coefficients (k*m bits) from `seed_source`.
  KWiseGenerator(int k, int m, BitSource& seed_source);

  /// Convenience: coefficients from a PRNG keyed by `master_seed`.
  static KWiseGenerator from_seed(int k, int m, std::uint64_t master_seed);

  /// Uniform m-bit value at evaluation point `point` (< 2^m). Any k distinct
  /// points give jointly independent uniform values.
  std::uint64_t value(std::uint64_t point) const;

  bool bit(std::uint64_t point) const { return (value(point) & 1ULL) != 0; }

  /// Bernoulli(p) derived by thresholding the m-bit value; quantization
  /// error of p is at most 2^-m.
  bool bernoulli(std::uint64_t point, double p) const;

  int k() const { return static_cast<int>(coefficients_.size()); }
  int m() const { return field_.degree(); }
  std::uint64_t seed_bits() const {
    return static_cast<std::uint64_t>(k()) *
           static_cast<std::uint64_t>(m());
  }

 private:
  GF2m field_;
  std::vector<std::uint64_t> coefficients_;  // a_0 .. a_{k-1}
};

}  // namespace rlocal
