// One-call pipelines named after the paper's results, wired with the
// paper's default parameters (scaled as documented in EXPERIMENTS.md where
// the asymptotic constants exceed bench-scale graphs). This is the
// recommended entry point for users reproducing a specific theorem; the
// underlying modules stay available for custom parameterizations.
#pragma once

#include <cstdint>

#include "decomp/beacons.hpp"
#include "decomp/elkin_neiman.hpp"
#include "decomp/one_bit.hpp"
#include "decomp/shared_congest.hpp"
#include "derand/brute_force.hpp"
#include "derand/lie.hpp"
#include "derand/shattering.hpp"
#include "graph/bipartite.hpp"
#include "problems/splitting.hpp"

namespace rlocal::theorems {

/// Theorem 3.1: one private bit per beacon, beacons within h hops of every
/// node => (O(log n), h poly(log n)) decomposition, congestion 1, CONGEST.
/// `bits_per_cluster <= 0` uses the Lemma 3.3 default.
OneBitResult theorem_3_1(const Graph& g, int h, std::uint64_t seed,
                         int bits_per_cluster = 0, int h_prime = 0);

/// Lemma 3.4: splitting with O(log n) bits of shared randomness, zero
/// rounds (via the Naor-Naor-style small-bias space).
SplittingResult lemma_3_4(const BipartiteGraph& h, std::uint64_t seed,
                          int shared_bits = 0);

/// Theorem 3.5: network decomposition with poly(log n) parameters using
/// poly(log n)-wise independent bits (constructively: EN under the k-wise
/// regime). `k <= 0` uses 2 * ceil(log2 n)^2.
EnResult theorem_3_5(const Graph& g, std::uint64_t seed, int k = 0);

/// Theorem 3.6: (O(log n), O(log^2 n)) decomposition, congestion 1,
/// poly(log n) CONGEST rounds, poly(log n) shared bits, no private
/// randomness. `shared_bits <= 0` uses 64 * 2 * ceil(log2 n)^2.
SharedCongestResult theorem_3_6(const Graph& g, std::uint64_t seed,
                                int shared_bits = 0,
                                const SharedCongestOptions& options = {});

/// Theorem 3.7: the beacon setting of Theorem 3.1, but with strong diameter
/// O(log^2 n) (no h factor).
OneBitResult theorem_3_7(const Graph& g, int h, std::uint64_t seed,
                         int bits_per_cluster = 0, int h_prime = 0);

/// Theorem 4.2: error-boosted decomposition via shattering.
ShatteringResult theorem_4_2(const Graph& g, std::uint64_t seed,
                             int base_phases = 0);

/// Lemma 4.1: exhaustive derandomization over a full graph family.
BruteForceResult lemma_4_1(const BruteForceOptions& options = {});

/// Theorems 4.3 / 4.6 are bound calculators plus the inflated runner; see
/// derand/lie.hpp (re-exported through this header).

}  // namespace rlocal::theorems
