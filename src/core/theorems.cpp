#include "core/theorems.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace rlocal::theorems {

namespace {
int logn_of(const Graph& g) {
  return log2n(static_cast<std::uint64_t>(std::max<NodeId>(2,
                                                           g.num_nodes())));
}
}  // namespace

OneBitResult theorem_3_1(const Graph& g, int h, std::uint64_t seed,
                         int bits_per_cluster, int h_prime) {
  const BeaconPlacement placement = place_beacons_greedy(g, h);
  PrngBitSource beacon_bits(seed);
  OneBitOptions options;
  options.bits_per_cluster = bits_per_cluster;
  options.h_prime = h_prime;
  return one_bit_decomposition(g, placement, beacon_bits, options);
}

SplittingResult lemma_3_4(const BipartiteGraph& h, std::uint64_t seed,
                          int shared_bits) {
  const int bits =
      shared_bits > 0
          ? shared_bits
          : 4 * log2n(static_cast<std::uint64_t>(std::max<std::int32_t>(
                    2, h.num_left() + h.num_right())));
  NodeRandomness rnd(Regime::shared_epsbias(bits), seed);
  return random_splitting(h, rnd);
}

EnResult theorem_3_5(const Graph& g, std::uint64_t seed, int k) {
  const int logn = logn_of(g);
  const int kk = k > 0 ? k : 2 * logn * logn;
  NodeRandomness rnd(Regime::kwise(kk), seed);
  return elkin_neiman_decomposition(g, rnd);
}

SharedCongestResult theorem_3_6(const Graph& g, std::uint64_t seed,
                                int shared_bits,
                                const SharedCongestOptions& options) {
  const int logn = logn_of(g);
  const int bits = shared_bits > 0 ? shared_bits : 64 * 2 * logn * logn;
  NodeRandomness rnd(Regime::shared_kwise(bits), seed);
  return shared_randomness_decomposition(g, rnd, options);
}

OneBitResult theorem_3_7(const Graph& g, int h, std::uint64_t seed,
                         int bits_per_cluster, int h_prime) {
  const BeaconPlacement placement = place_beacons_greedy(g, h);
  PrngBitSource beacon_bits(seed);
  OneBitOptions options;
  options.bits_per_cluster = bits_per_cluster;
  options.h_prime = h_prime;
  return one_bit_strong_decomposition(g, placement, beacon_bits, options);
}

ShatteringResult theorem_4_2(const Graph& g, std::uint64_t seed,
                             int base_phases) {
  NodeRandomness rnd(Regime::full(), seed);
  ShatteringOptions options;
  options.base_phases = base_phases;
  return boosted_decomposition(g, rnd, options);
}

BruteForceResult lemma_4_1(const BruteForceOptions& options) {
  return brute_force_derandomize_mis(options);
}

}  // namespace rlocal::theorems
