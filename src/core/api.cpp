#include "core/api.hpp"

namespace rlocal {

const char* version() { return "1.0.0"; }

DecomposeSummary decompose(const Graph& g, const Regime& regime,
                           std::uint64_t seed) {
  DecomposeSummary summary;
  switch (regime.kind) {
    case RegimeKind::kFull:
    case RegimeKind::kKWise: {
      NodeRandomness rnd(regime, seed);
      EnResult result = elkin_neiman_decomposition(g, rnd);
      summary.success = result.all_clustered;
      summary.colors = result.decomposition.num_colors;
      summary.rounds_charged = result.rounds_charged;
      summary.decomposition = std::move(result.decomposition);
      return summary;
    }
    case RegimeKind::kSharedKWise:
    case RegimeKind::kSharedEpsBias: {
      RLOCAL_CHECK(regime.kind == RegimeKind::kSharedKWise,
                   "shared eps-bias seeds are too short to drive the "
                   "Theorem 3.6 construction; use shared_kwise");
      NodeRandomness rnd(regime, seed);
      SharedCongestResult result =
          shared_randomness_decomposition(g, rnd);
      summary.success = result.all_clustered;
      summary.colors = result.decomposition.num_colors;
      summary.rounds_charged = result.rounds_charged;
      summary.decomposition = std::move(result.decomposition);
      return summary;
    }
    case RegimeKind::kAllZeros:
    case RegimeKind::kAllOnes:
      RLOCAL_CHECK(false,
                   "adversarial constant regimes are for failure-injection "
                   "tests, not decomposition");
  }
  RLOCAL_ASSERT(false);
}

}  // namespace rlocal
