#include "core/api.hpp"

#include <any>

namespace rlocal {
inline namespace v2 {

const char* version() { return "2.0.0"; }

lab::Registry& registry() { return lab::Registry::global(); }

lab::SweepResult sweep(const lab::SweepSpec& spec) {
  return lab::run_sweep(registry(), spec);
}

DecomposeSummary decompose(const Graph& g, const Regime& regime,
                           std::uint64_t seed) {
  const char* solver = nullptr;
  switch (regime.kind) {
    case RegimeKind::kFull:
    case RegimeKind::kKWise:
      solver = "decomp/elkin_neiman";
      break;
    case RegimeKind::kSharedKWise:
      solver = "decomp/shared_congest";
      break;
    case RegimeKind::kSharedEpsBias:
      RLOCAL_CHECK(false,
                   "shared eps-bias seeds are too short to drive the "
                   "Theorem 3.6 construction; use shared_kwise");
    case RegimeKind::kPooled:
      solver = "decomp/shared_congest";
      break;
    case RegimeKind::kAllZeros:
    case RegimeKind::kAllOnes:
      RLOCAL_CHECK(false,
                   "adversarial constant regimes are for failure-injection "
                   "tests, not decomposition");
  }
  RLOCAL_ASSERT(solver != nullptr);
  // Call the solver directly (not run_cell) so precondition violations keep
  // propagating as exceptions; the seed is passed through unmixed, making
  // the shim bit-for-bit compatible with the pre-lab implementation.
  lab::RunRecord record =
      registry().at(solver).run(g, regime, seed, /*params=*/{});
  DecomposeSummary summary;
  summary.success = record.success;
  // The shim bypasses run_cell (see above), so the record's cost block is
  // unfinalized; the decomposition solvers charge their rounds explicitly.
  summary.rounds_charged = static_cast<int>(record.cost.charged_rounds());
  auto* decomposition = std::any_cast<Decomposition>(&record.artifact);
  RLOCAL_ASSERT(decomposition != nullptr);
  summary.colors = decomposition->num_colors;
  summary.decomposition = std::move(*decomposition);
  return summary;
}

}  // namespace v2
}  // namespace rlocal
