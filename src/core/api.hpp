// Umbrella header: everything a library user needs.
//
//   #include "core/api.hpp"
//
//   rlocal::Graph g = rlocal::make_grid(32, 32);
//   rlocal::NodeRandomness rnd(rlocal::Regime::kwise(128), /*seed=*/1);
//   auto result = rlocal::elkin_neiman_decomposition(g, rnd);
//   auto report = rlocal::validate_decomposition(g, result.decomposition);
//
// or, theorem-shaped:
//
//   auto nd = rlocal::theorems::theorem_3_6(g, /*seed=*/1);
#pragma once

#include "core/theorems.hpp"
#include "decomp/ball_carving.hpp"
#include "decomp/cluster_graph.hpp"
#include "decomp/decomposition.hpp"
#include "decomp/ruling_set.hpp"
#include "derand/applications.hpp"
#include "derand/cond_exp.hpp"
#include "derand/slocal.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "problems/conflict_free.hpp"
#include "problems/mis.hpp"
#include "sim/engine.hpp"
#include "sim/programs/bfs_tree.hpp"
#include "sim/programs/flood.hpp"
#include "sim/programs/luby.hpp"
#include "sim/programs/top_two.hpp"
#include "support/math.hpp"

namespace rlocal {

/// Library version, bumped with releases.
const char* version();

/// Convenience: decompose `g` under the given randomness regime with the
/// algorithm matching the paper's setting for that regime
/// (full/k-wise -> Elkin-Neiman; shared seeds -> Theorem 3.6's CONGEST
/// construction). Throws InvariantError for the adversarial regimes.
struct DecomposeSummary {
  Decomposition decomposition;
  bool success = false;
  int colors = 0;
  int rounds_charged = 0;
};
DecomposeSummary decompose(const Graph& g, const Regime& regime,
                           std::uint64_t seed);

}  // namespace rlocal
