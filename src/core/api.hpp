// Umbrella header and versioned facade: everything a library user needs.
//
// Since API v2 the primary surface is the experiment lab -- a registry of
// solvers (problem x algorithm) swept over graph x regime x seed grids:
//
//   #include "core/api.hpp"
//
//   rlocal::lab::SweepSpec spec;
//   spec.graphs = {{"grid", rlocal::make_grid(32, 32)}};
//   spec.regimes = {rlocal::Regime::full(), rlocal::Regime::kwise(128)};
//   spec.seeds = {1, 2, 3, 4};
//   auto result = rlocal::sweep(spec);            // every registered solver
//   rlocal::lab::summary_table(result).print(std::cout);
//
// One-off cells go through the registry directly:
//
//   auto rec = rlocal::registry().run_cell("decomp/elkin_neiman", g, "g",
//                                          rlocal::Regime::kwise(128), 1);
//
// and theorem-shaped pipelines remain available:
//
//   auto nd = rlocal::theorems::theorem_3_6(g, /*seed=*/1);
//
// The pre-lab decompose() convenience survives as a deprecated shim over
// the registry and will be removed in a future major version.
#pragma once

#include "core/theorems.hpp"
#include "decomp/ball_carving.hpp"
#include "decomp/cluster_graph.hpp"
#include "decomp/decomposition.hpp"
#include "decomp/ruling_set.hpp"
#include "derand/applications.hpp"
#include "derand/cond_exp.hpp"
#include "derand/slocal.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lab/lab.hpp"
#include "problems/coloring.hpp"
#include "problems/conflict_free.hpp"
#include "problems/mis.hpp"
#include "sim/engine.hpp"
#include "sim/programs/bfs_tree.hpp"
#include "sim/programs/flood.hpp"
#include "sim/programs/luby.hpp"
#include "sim/programs/top_two.hpp"
#include "support/math.hpp"

namespace rlocal {

/// API generations. v2 introduced the lab (registry + sweeps); symbols live
/// in the inline namespace so existing `rlocal::` spellings keep working
/// while `rlocal::v2::` pins the generation explicitly.
inline namespace v2 {

/// Library version, bumped with releases.
const char* version();

/// Major API generation (mirrors the inline namespace).
inline constexpr int kApiVersionMajor = 2;

/// The process-wide solver registry, preloaded with every built-in solver.
lab::Registry& registry();

/// Runs a sweep against the global registry (see lab/sweep.hpp).
lab::SweepResult sweep(const lab::SweepSpec& spec);

/// Pre-lab convenience: decompose `g` under the given randomness regime
/// with the algorithm matching the paper's setting for that regime
/// (full/k-wise -> Elkin-Neiman; shared seeds -> Theorem 3.6's CONGEST
/// construction). Throws InvariantError for the adversarial regimes. Now a
/// thin shim over the registry's "decomp/*" solvers.
struct DecomposeSummary {
  Decomposition decomposition;
  bool success = false;
  int colors = 0;
  int rounds_charged = 0;
};
[[deprecated(
    "use registry().run_cell(\"decomp/elkin_neiman\" or "
    "\"decomp/shared_congest\", ...) or lab::run_sweep; decompose() will be "
    "removed in API v3")]]
DecomposeSummary decompose(const Graph& g, const Regime& regime,
                           std::uint64_t seed);

}  // namespace v2
}  // namespace rlocal
