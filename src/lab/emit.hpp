// Emitters turning sweep results into artifacts:
//
//  * emit_json  -- full-fidelity machine-readable dump ("rlocal.sweep/3"
//                  schema: typed per-record cost blocks, bandwidth axis)
//                  for trend tracking (BENCH_*.json) and offline analysis;
//                  record fields come from the store's canonical writer.
//  * summary_table -- per-(solver, graph, regime, variant, bandwidth)
//                  aggregate ASCII table -- observables, the randomness
//                  ledger, and metered msgs/bits -- the human-facing
//                  "paper table" view benches print.
#pragma once

#include <iosfwd>
#include <string>

#include "lab/sweep.hpp"
#include "support/table.hpp"

namespace rlocal::lab {

/// Writes the whole sweep (spec echo + per-cell records) as JSON.
void emit_json(const SweepResult& result, std::ostream& out);

/// One row per (solver, graph, regime): trials, checker pass rate, means of
/// the scalar observables and the randomness ledger. Skipped cells are
/// collapsed into a "skipped" marker row.
Table summary_table(const SweepResult& result);

}  // namespace rlocal::lab
