// Theorem-pipeline solvers: the paper's headline constructions wrapped in
// the Solver interface so they ride the same sweep grids as the pre-lab
// wrappers in solvers_builtin.cpp.
//
//   decomp/one_bit          -- Theorem 3.1 (Lemmas 3.2+3.3 beacon pipeline)
//   decomp/one_bit_strong   -- Theorem 3.7 (strong diameter from beacons)
//   decomp/beacon_cluster   -- Lemma 3.2 clustering observables alone
//   decomp/shattering       -- Theorem 4.2 success boosting
//   decomp/pretend_n        -- Theorems 4.3/4.6 lying-about-n runner
//   decomp/ball_carving     -- deterministic PS92/Gha19 stand-in
//   derand/brute_force      -- Lemma 4.1 exhaustive derandomization
//   mis/from_decomposition, coloring/from_decomposition -- the AGLP89/GKM17
//                              payoff: classics derandomized by a decomposition
//   mis/slocal_greedy, coloring/slocal_greedy -- SLOCAL executor baselines
//                              with *measured* locality
//   splitting/cond_exp      -- deterministic splitting by conditional
//                              expectations (the GKM17 base case)
//
// Beacon placements, like the derived instances of solvers_builtin.cpp, are
// a deterministic function of (graph, shape params) -- the adversary's
// choice, never the run seed. The beacons' random bits are the only coins
// of the one-bit pipelines and are drawn through the cell's regime (one bit
// per beacon), so the one-bit model composes with every scarce regime --
// including the pooled one, where a whole cluster's beacons share a stream.
#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "decomp/ball_carving.hpp"
#include "decomp/beacons.hpp"
#include "decomp/elkin_neiman.hpp"
#include "decomp/one_bit.hpp"
#include "derand/applications.hpp"
#include "derand/brute_force.hpp"
#include "derand/cond_exp.hpp"
#include "derand/lie.hpp"
#include "derand/shattering.hpp"
#include "derand/slocal.hpp"
#include "graph/algorithms.hpp"
#include "graph/bipartite.hpp"
#include "graph/generators.hpp"
#include "lab/registry.hpp"
#include "lab/solvers_common.hpp"
#include "problems/coloring.hpp"
#include "problems/mis.hpp"
#include "problems/splitting.hpp"
#include "rnd/bitsource.hpp"
#include "support/math.hpp"

namespace rlocal::lab {
namespace {

/// Dedicated stream id for the beacons' single private bits.
constexpr std::uint64_t kBeaconStream = 0x2B1Bu;  // "one-bit"

/// Each beacon's single private bit, drawn through the cell's regime
/// *addressed by the beacon's own node id*: under a pooled regime the
/// cluster-assignment table therefore applies to the beacon itself (a
/// cluster's beacons share their pool's stream), not to the draw order.
/// Materialized in placement order, matching gather_cluster_bits' exactly
/// one-draw-per-beacon contract; over-drawing throws BitsExhausted, which
/// run_cell surfaces as the cell's error.
FixedBitSource beacon_bits_from_regime(const BeaconPlacement& placement,
                                       NodeRandomness& rnd) {
  // One bits_batch over the whole placement instead of a scalar bit() per
  // beacon: identical values and ledger charges, one interleaved Horner
  // pass through the regime's generator(s).
  const std::size_t count = placement.beacons.size();
  std::vector<std::uint64_t> nodes(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i] = static_cast<std::uint64_t>(placement.beacons[i]);
  }
  std::vector<std::uint8_t> drawn(count);
  rnd.bits_batch(nodes, kBeaconStream, 0, drawn);
  std::vector<bool> bits(count);
  for (std::size_t i = 0; i < count; ++i) bits[i] = drawn[i] != 0;
  return FixedBitSource(std::move(bits));
}

/// Beacon placement from shape params: `placement` is a strategy id of the
/// placement registry (decomp/beacons.hpp) -- 0 deterministic greedy,
/// 1 adversarial_far, 2 random with `density` (repaired to cover),
/// 3 adversarial_clustered. Deterministic in (graph size, params): the
/// placement is the instance. The default is the dense one-bit-per-node
/// setting (random, density=1), which honors the theorems' bit-supply
/// hypothesis at bench scales; benches sweep the adversarial placements
/// explicitly (see beacon_placement_variants()).
BeaconPlacement placement_from_params(const Graph& g, int h,
                                      const ParamMap& params) {
  return place_beacons(
      param_int(params, "placement", 2), g, h, param(params, "density", 1.0),
      mix3(0xBEAC0Bu, static_cast<std::uint64_t>(g.num_nodes()),
           static_cast<std::uint64_t>(h)));
}

OneBitOptions one_bit_options_from_params(const ParamMap& params) {
  OneBitOptions options;
  options.bits_per_cluster = param_int(params, "bits_per_cluster", 0);
  // h_prime <= 0 selects the paper's 10kh separation (hypothesis holds by
  // construction; at bench scales it usually collapses the graph into
  // isolated clusters). Benches pass smaller values and *measure* the
  // shortfall instead.
  options.h_prime = param_int(params, "h_prime", 0);
  options.en_phases = param_int(params, "en_phases", 0);
  return options;
}

std::vector<NodeId> identity_order(const Graph& g) {
  std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  return order;
}

/// Shared run body of the two one-bit solvers. The deadline token is
/// checked between pipeline stages (placement -> beacon draws -> clustering)
/// so an expiring cell bails at the next stage boundary.
template <typename Pipeline>
RunRecord run_one_bit(const Graph& g, const Regime& regime,
                      std::uint64_t seed, const ParamMap& params,
                      const RunContext& ctx, const Pipeline& pipeline) {
  const int h = param_int(params, "h", 2);
  const BeaconPlacement placement = placement_from_params(g, h, params);
  ctx.check_deadline();
  NodeRandomness rnd = cell_randomness(regime, seed, ctx);
  FixedBitSource beacon_bits = beacon_bits_from_regime(placement, rnd);
  ctx.check_deadline();
  OneBitResult result =
      pipeline(g, placement, beacon_bits, one_bit_options_from_params(params));
  RunRecord record;
  record.cost.charge_rounds(result.rounds_charged);
  charge_congest_worst_case(record, g, result.rounds_charged);
  // The theorem's promise is conditional on Lemma 3.2's bit guarantee;
  // success reports "produced a total decomposition" and the hypothesis
  // shortfall is an observable of its own (E1/E5 tabulate it).
  record.metrics["hypothesis_met"] = result.exhausted_draws == 0 ? 1.0 : 0.0;
  record.metrics["beacons"] = static_cast<double>(placement.beacons.size());
  record.metrics["num_clusters"] = result.num_clusters;
  record.metrics["num_isolated"] = result.num_isolated;
  record.metrics["min_bits_gathered"] = result.min_bits_gathered;
  record.metrics["exhausted_draws"] = result.exhausted_draws;
  record.metrics["cluster_radius_bound"] = result.cluster_radius_bound;
  record.shared_seed_bits = rnd.shared_seed_bits();
  record.derived_bits = rnd.derived_bits();
  fill_decomposition_fields(g, std::move(result.decomposition),
                            result.all_clustered, record);
  return record;
}

class OneBitSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/one_bit"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Theorem 3.1 decomposition from one random bit per beacon "
           "(Lemmas 3.2+3.3); params: h, placement, density, h_prime, "
           "bits_per_cluster";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;  // the regime only supplies the beacons' bits
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    return run_one_bit(g, regime, seed, params, ctx,
                       [](const Graph& graph, const BeaconPlacement& p,
                          BitSource& bits, const OneBitOptions& options) {
                         return one_bit_decomposition(graph, p, bits,
                                                      options);
                       });
  }
};

class OneBitStrongSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/one_bit_strong"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Theorem 3.7 strong-diameter decomposition from per-cluster "
           "gathered beacon seeds; params as decomp/one_bit";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    return run_one_bit(g, regime, seed, params, ctx,
                       [](const Graph& graph, const BeaconPlacement& p,
                          BitSource& bits, const OneBitOptions& options) {
                         return one_bit_strong_decomposition(graph, p, bits,
                                                             options);
                       });
  }
};

class BeaconClusterSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/beacon_cluster"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Lemma 3.2 deterministic beacon clustering: ruling-set clusters "
           "with gathered-bit observables; params: h, placement, density, "
           "h_prime, bits_per_cluster";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const int h = param_int(params, "h", 2);
    const BeaconPlacement placement = placement_from_params(g, h, params);
    const int logn =
        log2n(static_cast<std::uint64_t>(std::max<NodeId>(2, g.num_nodes())));
    const int k = param_int(params, "bits_per_cluster", 2 * logn * logn);
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    FixedBitSource beacon_bits = beacon_bits_from_regime(placement, rnd);
    const BitGatheringResult gather = gather_cluster_bits(
        g, placement, k, beacon_bits, param_int(params, "h_prime", 0));

    RunRecord record;
    // Lemma 3.2's guarantee: every non-isolated cluster holds >= k bits.
    const bool has_non_isolated =
        std::find(gather.isolated.begin(), gather.isolated.end(), false) !=
        gather.isolated.end();
    record.success =
        !has_non_isolated || gather.min_bits_non_isolated >= k;
    record.checker_passed = timed_checker([&] {
      return check_partition(g, gather) && placement_covers(g, placement);
    });
    record.cost.charge_rounds(gather.rounds_charged);
    charge_congest_worst_case(record, g, gather.rounds_charged);
    record.objective = static_cast<double>(gather.centers.size());
    record.metrics["hypothesis_met"] = record.success ? 1.0 : 0.0;
    record.metrics["beacons"] = static_cast<double>(placement.beacons.size());
    record.metrics["num_clusters"] =
        static_cast<double>(gather.centers.size());
    record.metrics["min_bits_gathered"] = gather.min_bits_non_isolated;
    record.metrics["cluster_radius_bound"] = gather.cluster_radius_bound;
    record.metrics["h_prime_used"] = gather.h_prime;
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    return record;
  }

 private:
  /// Structural Lemma 3.2 validation: owners form a partition into clusters
  /// rooted at ruling-set centers, with consistent BFS distances.
  static bool check_partition(const Graph& g,
                              const BitGatheringResult& gather) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    if (gather.owner.size() != n || gather.dist.size() != n) return false;
    std::vector<bool> is_center(n, false);
    for (const NodeId c : gather.centers) {
      if (c < 0 || static_cast<std::size_t>(c) >= n) return false;
      is_center[static_cast<std::size_t>(c)] = true;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId o = gather.owner[static_cast<std::size_t>(v)];
      if (o < 0 || !is_center[static_cast<std::size_t>(o)]) return false;
      const std::int32_t d = gather.dist[static_cast<std::size_t>(v)];
      if (d < 0 || d > gather.cluster_radius_bound) return false;
      if (is_center[static_cast<std::size_t>(v)] &&
          (o != v || d != 0)) {
        return false;
      }
    }
    return true;
  }
};

class ShatteringSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/shattering"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Theorem 4.2 error-boosted decomposition (EN base + shattering + "
           "deterministic finish); params: base_phases, shift_cap";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    ShatteringOptions options;
    options.base_phases = param_int(params, "base_phases", 0);
    options.en.shift_cap = param_int(params, "shift_cap", 0);
    ShatteringResult result = boosted_decomposition(g, rnd, options);
    RunRecord record;
    record.cost.charge_rounds(result.total_rounds);
    charge_congest_worst_case(record, g, result.total_rounds);
    record.metrics["base_complete"] = result.base_complete ? 1.0 : 0.0;
    record.metrics["base_rounds"] = result.base_rounds;
    record.metrics["leftover_nodes"] = result.leftover_nodes;
    record.metrics["leftover_components"] = result.leftover_components;
    record.metrics["max_leftover_component"] = result.max_leftover_component;
    record.metrics["separated_set_size"] = result.separated_set_size;
    record.metrics["ruling_set_size"] = result.ruling_set_size;
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    fill_decomposition_fields(g, std::move(result.decomposition),
                              result.success, record);
    return record;
  }
};

class PretendNSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/pretend_n"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Theorems 4.3/4.6: EN with every parameter computed from an "
           "inflated N = n * pretend_factor; params: pretend_factor, "
           "phases_per_logn (10 = w.h.p., <1 probes the failure "
           "transition), shift_cap";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const double factor = param(params, "pretend_factor", 16.0);
    RLOCAL_CHECK(factor >= 1.0, "pretend_factor must be >= 1");
    const auto n = static_cast<std::uint64_t>(std::max<NodeId>(2,
                                                               g.num_nodes()));
    const auto pretended = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(n) * factor));
    const int logN = ceil_log2(pretended);
    const double per_logn = param(params, "phases_per_logn", 10.0);
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    EnOptions options;
    options.phases = std::max(
        1, static_cast<int>(std::llround(per_logn * logN)));
    options.shift_cap = param_int(params, "shift_cap", 2 * logN + 16);
    EnResult result = elkin_neiman_decomposition(g, rnd, options);
    RunRecord record;
    record.cost.charge_rounds(result.rounds_charged);
    record.cost.charge_messages(result.analytic_messages,
                                result.analytic_bits);
    record.iterations = result.phases_used;
    record.metrics["pretended_n"] = static_cast<double>(pretended);
    record.metrics["phases"] = options.phases;
    record.metrics["max_shift"] = result.max_shift;
    // Union bound with per-phase clustering probability >= 1/2.
    record.metrics["failure_bound"] = std::min(
        1.0, static_cast<double>(n) *
                 std::pow(2.0, -static_cast<double>(options.phases)));
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    fill_decomposition_fields(g, std::move(result.decomposition),
                              result.all_clustered, record);
    return record;
  }
};

class BallCarvingSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/ball_carving"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Deterministic sequential ball-carving decomposition (the "
           "PS92/Gha19 stand-in; consumes no randomness)";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kSequentialSLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap&,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    BallCarvingResult result = ball_carving_decomposition(g);
    RunRecord record;
    record.metrics["phases"] = result.phases;
    record.metrics["max_ball_radius"] = result.max_ball_radius;
    fill_decomposition_fields(g, std::move(result.decomposition),
                              /*all_clustered=*/true, record);
    return record;
  }
};

class BruteForceSolver final : public Solver {
 public:
  std::string name() const override { return "derand/brute_force"; }
  std::string problem() const override { return "derand"; }
  std::string description() const override {
    return "Lemma 4.1 union-bound derandomization, enumerated exactly over "
           "every labelled graph on <= max_n nodes (the cell graph only "
           "scales nothing -- the family is the instance); params: max_n, "
           "bits_per_id, round_budget";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // exhaustive enumeration: no coins at all
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kOracle;
  }
  RunRecord run(const Graph&, const Regime&, std::uint64_t,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    BruteForceOptions options;
    options.max_n = param_int(params, "max_n", 3);
    options.bits_per_id = param_int(params, "bits_per_id", 2);
    options.round_budget = param_int(params, "round_budget", 2);
    RLOCAL_CHECK(options.max_n >= 1 && options.max_n <= 4,
                 "brute force is exhaustive; max_n must be in [1, 4]");
    RLOCAL_CHECK(options.bits_per_id * options.max_n <= 16,
                 "seed-assignment space exceeds 2^16; shrink bits_per_id");
    const BruteForceResult result = brute_force_derandomize_mis(options);
    RunRecord record;
    record.success = result.derandomizable;
    // Independent check: a reported perfect seed must indeed succeed on
    // family members we can rebuild here (the extremes: complete + path).
    record.checker_passed = result.derandomizable && timed_checker([&] {
                              return witness_checks_out(result, options);
                            });
    record.objective = static_cast<double>(result.perfect_seeds);
    record.metrics["graphs_in_family"] =
        static_cast<double>(result.graphs_in_family);
    record.metrics["seed_assignments"] =
        static_cast<double>(result.seed_assignments);
    record.metrics["perfect_seeds"] =
        static_cast<double>(result.perfect_seeds);
    record.metrics["worst_failures"] =
        static_cast<double>(result.worst_failures);
    record.metrics["mean_failure_fraction"] = result.mean_failure_fraction;
    return record;
  }

 private:
  static bool witness_checks_out(const BruteForceResult& result,
                                 const BruteForceOptions& options) {
    if (result.witness_seed.empty()) return false;
    const auto n = static_cast<NodeId>(options.max_n);
    return fixed_priority_mis_succeeds(make_complete(n), result.witness_seed,
                                       options.round_budget) &&
           fixed_priority_mis_succeeds(make_path(n), result.witness_seed,
                                       options.round_budget);
  }
};

class MisFromDecompositionSolver final : public Solver {
 public:
  std::string name() const override { return "mis/from_decomposition"; }
  std::string problem() const override { return "mis"; }
  std::string description() const override {
    return "Deterministic MIS driven by the ball-carving decomposition "
           "(the AGLP89/GKM17 color-by-color scheme; consumes no "
           "randomness)";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic
  }
  cost::CostModel cost_model() const override {
    // Color-by-color with whole-cluster gathers: LOCAL-size messages.
    return cost::CostModel::kLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap&,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const BallCarvingResult carving = ball_carving_decomposition(g);
    const DecompositionMisResult result =
        mis_from_decomposition(g, carving.decomposition);
    RunRecord record;
    record.success = true;
    record.checker_passed = timed_checker(
        [&] { return is_maximal_independent_set(g, result.in_mis); });
    record.cost.charge_rounds(result.rounds_charged);
    int mis_size = 0;
    for (const bool b : result.in_mis) mis_size += b ? 1 : 0;
    record.objective = mis_size;
    record.metrics["mis_size"] = mis_size;
    record.metrics["decomposition_colors"] =
        carving.decomposition.num_colors;
    record.artifact = result.in_mis;
    return record;
  }
};

class ColoringFromDecompositionSolver final : public Solver {
 public:
  std::string name() const override { return "coloring/from_decomposition"; }
  std::string problem() const override { return "coloring"; }
  std::string description() const override {
    return "Deterministic (Delta+1)-coloring driven by the ball-carving "
           "decomposition (consumes no randomness)";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap&,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const BallCarvingResult carving = ball_carving_decomposition(g);
    const DecompositionColoringResult result =
        coloring_from_decomposition(g, carving.decomposition);
    RunRecord record;
    record.success = true;
    record.checker_passed = timed_checker([&] {
      return is_valid_coloring(g, result.color, g.max_degree() + 1);
    });
    record.cost.charge_rounds(result.rounds_charged);
    int used = 0;
    for (const int c : result.color) used = std::max(used, c + 1);
    record.colors = used;
    record.objective = used;
    record.artifact = result.color;
    return record;
  }
};

class SlocalMisSolver final : public Solver {
 public:
  std::string name() const override { return "mis/slocal_greedy"; }
  std::string problem() const override { return "mis"; }
  std::string description() const override {
    return "Greedy MIS through the SLOCAL executor with measured locality "
           "(GKM17 model; deterministic, ascending-id order)";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kSequentialSLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap&,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const SlocalResult result = slocal_greedy_mis(g, identity_order(g));
    std::vector<bool> in_mis(static_cast<std::size_t>(g.num_nodes()));
    int mis_size = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      in_mis[static_cast<std::size_t>(v)] =
          result.state[static_cast<std::size_t>(v)] == 1;
      mis_size += in_mis[static_cast<std::size_t>(v)] ? 1 : 0;
    }
    RunRecord record;
    record.success = true;
    record.checker_passed = timed_checker([&] {
                              return is_maximal_independent_set(g, in_mis);
                            }) &&
                            result.locality <= 1;
    record.objective = mis_size;
    record.metrics["mis_size"] = mis_size;
    record.metrics["locality"] = result.locality;
    record.artifact = in_mis;
    return record;
  }
};

class SlocalColoringSolver final : public Solver {
 public:
  std::string name() const override { return "coloring/slocal_greedy"; }
  std::string problem() const override { return "coloring"; }
  std::string description() const override {
    return "Greedy (Delta+1)-coloring through the SLOCAL executor with "
           "measured locality (deterministic, ascending-id order)";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kSequentialSLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap&,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const SlocalResult result = slocal_greedy_coloring(g, identity_order(g));
    std::vector<int> color(static_cast<std::size_t>(g.num_nodes()));
    int used = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      color[static_cast<std::size_t>(v)] =
          static_cast<int>(result.state[static_cast<std::size_t>(v)]);
      used = std::max(used, color[static_cast<std::size_t>(v)] + 1);
    }
    RunRecord record;
    record.success = true;
    record.checker_passed = timed_checker([&] {
                              return is_valid_coloring(g, color,
                                                       g.max_degree() + 1);
                            }) &&
                            result.locality <= 1;
    record.colors = used;
    record.objective = used;
    record.metrics["locality"] = result.locality;
    record.artifact = color;
    return record;
  }
};

class CondExpSplittingSolver final : public Solver {
 public:
  std::string name() const override { return "splitting/cond_exp"; }
  std::string problem() const override { return "splitting"; }
  std::string description() const override {
    return "Deterministic splitting by conditional expectations (GKM17 "
           "derandomization engine); instance derived from n exactly as "
           "splitting/random, params: degree, window";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kSequentialSLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const auto n = static_cast<std::int32_t>(g.num_nodes());
    const int degree = param_int(params, "degree",
                                 4 * log2n(static_cast<std::uint64_t>(n)));
    // Identical derivation to splitting/random, so the two solvers face the
    // same instance in a shared sweep.
    const BipartiteGraph h =
        param_int(params, "window", 0) != 0
            ? make_window_splitting_instance(n, n, degree)
            : make_random_splitting_instance(
                  n, n, degree,
                  mix3(0x5EEDu, static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(degree)));
    const CondExpSplittingResult result =
        conditional_expectation_splitting(h);
    RunRecord record;
    record.success = result.violations == 0;
    // The method's guarantee: estimator never increases, so initial < 1
    // forces zero violations; re-count independently.
    const int recounted = timed_checker(
        [&] { return count_splitting_violations(h, result.red); });
    record.checker_passed =
        recounted == result.violations &&
        (result.initial_estimate >= 1.0 || recounted == 0);
    record.objective = result.violations;
    record.metrics["violations"] = result.violations;
    record.metrics["initial_estimate"] = result.initial_estimate;
    record.metrics["final_estimate"] = result.final_estimate;
    record.metrics["constraint_degree"] = h.min_left_degree();
    record.artifact = result.red;
    return record;
  }
};

}  // namespace

std::vector<ParamVariant> beacon_placement_variants(
    const ParamMap& extra, const std::string& name_prefix) {
  std::vector<ParamVariant> variants;
  for (const PlacementStrategyInfo& info : beacon_placement_registry()) {
    ParamVariant variant;
    variant.name = name_prefix + info.name;
    variant.params = extra;
    variant.params["placement"] = static_cast<double>(info.id);
    variants.push_back(std::move(variant));
  }
  return variants;
}

void register_pipeline_solvers(Registry& registry) {
  registry.add(std::make_unique<OneBitSolver>());
  registry.add(std::make_unique<OneBitStrongSolver>());
  registry.add(std::make_unique<BeaconClusterSolver>());
  registry.add(std::make_unique<ShatteringSolver>());
  registry.add(std::make_unique<PretendNSolver>());
  registry.add(std::make_unique<BallCarvingSolver>());
  registry.add(std::make_unique<BruteForceSolver>());
  registry.add(std::make_unique<MisFromDecompositionSolver>());
  registry.add(std::make_unique<ColoringFromDecompositionSolver>());
  registry.add(std::make_unique<SlocalMisSolver>());
  registry.add(std::make_unique<SlocalColoringSolver>());
  registry.add(std::make_unique<CondExpSplittingSolver>());
}

}  // namespace rlocal::lab
