// Sweep: run a solver x graph x regime x variant x seed grid through the
// registry on a thread pool, producing one RunRecord per cell.
//
// Determinism: every cell derives its own master seed from
// (user seed, solver name, graph name, regime name, variant name) with an
// FNV-1a/mix3 chain, so results are a pure function of the spec --
// independent of thread count, scheduling, and cell order. Records come
// back in grid order (solver-major, then graph, regime, variant, seed).
//
// Parallelism: cells are independent (each builds its own NodeRandomness),
// so the pool is a simple shared atomic cursor over the cell list.
// `threads <= 0` uses std::thread::hardware_concurrency().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "lab/registry.hpp"
#include "sim/faults.hpp"

namespace rlocal::lab {

/// One named parameter set of the sweep's variant axis. Variant params are
/// laid over SweepSpec::params (variant wins on key collisions), so the
/// spec-level map carries the shared defaults and each variant the knob it
/// varies -- the paper's "same grid, one knob swept" experiment shape.
struct ParamVariant {
  std::string name;
  ParamMap params;
};

struct SweepSpec {
  /// Named graphs (reuses the generator zoo's entry type). Entries whose
  /// `lazy()` is true are rebuilt from their factory once per cell and
  /// dropped as soon as the cell's record is produced, so huge grids never
  /// hold more than one instance per worker in RAM.
  std::vector<ZooEntry> graphs;
  std::vector<Regime> regimes;
  std::vector<std::uint64_t> seeds;
  /// Registry names to run; empty means every registered solver. Unknown
  /// names throw InvariantError before anything runs.
  std::vector<std::string> solvers;
  ParamMap params;
  /// Parameter-set axis; empty means one implicit variant ("", params).
  /// Duplicate variant names throw InvariantError before anything runs.
  std::vector<ParamVariant> variants;
  /// Bandwidth axis (bits per message handed to engine-backed CONGEST
  /// runs); empty means one implicit coordinate 0 = "the model's default
  /// cap". Non-zero coordinates bind only bandwidth-bound (CONGEST-model)
  /// solvers -- other solvers' non-zero cells are skipped exactly like
  /// unsupported regimes. Negative or duplicate entries throw.
  std::vector<int> bandwidths;
  /// Fault-injection axis (sim/faults.hpp): each coordinate subjects
  /// engine-backed runs to a deterministic, seed-derived fault schedule.
  /// Empty means one implicit FaultSpec::none() coordinate = "the reliable
  /// network" -- it contributes nothing to cell seeds or the fingerprint,
  /// so pre-fault-axis grids stay byte-identical. Non-none coordinates bind
  /// only fault-supporting (engine-backed) solvers; other solvers' faulted
  /// cells are skipped exactly like unsupported regimes. Out-of-range or
  /// duplicate (by canonical name) entries throw.
  std::vector<FaultSpec> faults;
  int threads = 0;  ///< worker count; <= 0 -> hardware_concurrency
  /// Unsupported (solver, regime) cells: false drops them (counted in
  /// cells_skipped), true keeps a RunRecord with skipped = true.
  bool keep_unsupported = false;
  /// Per-cell wall-clock budget in milliseconds; <= 0 means none. The
  /// budget is cooperative: Solver::run receives a RunContext whose
  /// check_deadline() throws at the solver's next checkpoint, and the cell
  /// is recorded as failed with reason "deadline" (the sweep continues).
  /// Part of the spec fingerprint -- it can change which records exist.
  double cell_deadline_ms = 0;
  /// Stop claiming new cells after this many have been *executed* in this
  /// process (resumed and skipped cells are free); 0 means unlimited. The
  /// crash-injection knob behind `bench_sweep --cell-limit` and the CI
  /// resume smoke test: a truncated sweep plus a store is resumable.
  int max_cells = 0;
};

/// Attaches a durable on-disk record store (src/store/) to a sweep.
struct StoreOptions {
  StoreOptions() = default;
  /// The common two-knob spelling, `StoreOptions{dir, resume}`; the claim
  /// fields below are set member-wise by callers that drain cooperatively.
  StoreOptions(std::string dir_, bool resume_ = false)
      : dir(std::move(dir_)), resume(resume_) {}

  std::string dir;  ///< store directory (created if absent)
  /// false: start fresh (existing shards in `dir` are truncated);
  /// true: verify the manifest's spec fingerprint, restore every completed
  /// cell from the shards (RunRecord::resumed), and run only the rest.
  bool resume = false;
  /// Cooperative multi-process drain (src/service/claims.hpp): join or
  /// create the store (never truncating an existing one), then claim lease
  /// ranges of the grid instead of racing an in-process cursor, so N
  /// independent processes drain one sweep concurrently. Claiming is
  /// inherently resumable -- done ranges are never re-run -- and mutually
  /// exclusive with `resume`. The result holds only the cells this process
  /// materialized; the full record set is the store (read_all).
  bool claim = false;
  /// Unique claimer id for lease files and shard names; "" derives
  /// "pid-<pid>". In-process workers append "-w<worker>".
  std::string claim_owner;
  std::uint64_t claim_range_cells = 0;  ///< cells per lease; 0 -> 64
  /// Stale-lease observation window (ms); 0 -> 10s. See ClaimOptions.
  std::uint64_t claim_ttl_ms = 0;
};

struct SweepResult {
  /// Grid order, deterministic. A truncated run (SweepSpec::max_cells)
  /// contains only the materialized prefix of each worker's claims; a
  /// resumed run contains restored records (resumed = true) in place.
  std::vector<RunRecord> records;
  int cells_run = 0;  ///< executed in this process; resumed cells excluded
  /// Cells dropped because the solver does not support the regime; same
  /// unit as cells_run (one per grid cell including the seed axis).
  int cells_skipped = 0;
  /// Records restored from the store instead of executed (resume path).
  int cells_resumed = 0;
  int cells_failed = 0;  ///< ran but threw or failed the checker (any origin)
  int threads_used = 0;
  double wall_ms = 0.0;  ///< this process's wall time only
};

SweepResult run_sweep(const Registry& registry, const SweepSpec& spec);

/// Sweep over the process-global registry.
SweepResult run_sweep(const SweepSpec& spec);

/// Durable sweep: records stream into a sharded on-disk store as workers
/// finish them (fsync'd frames; see docs/store_format.md), and with
/// `store.resume` already-completed cells are restored instead of re-run.
/// Throws InvariantError when resuming against a store whose manifest
/// fingerprint does not match the spec.
SweepResult run_sweep(const Registry& registry, const SweepSpec& spec,
                      const StoreOptions& store);
SweepResult run_sweep(const SweepSpec& spec, const StoreOptions& store);

/// The per-cell master seed derivation (exposed for tests / reproducing a
/// single cell outside a sweep). The 4-argument form is the empty-variant
/// cell; the 6-argument form adds the bandwidth coordinate (0 -- the
/// default cap -- contributes nothing, so pre-bandwidth-axis grids keep
/// their exact seeds, like the empty variant before it); the 7-argument
/// form adds the fault coordinate by canonical name (""/"none" -- the
/// reliable network -- likewise contributes nothing).
std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime);
std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant);
std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant, int bandwidth_bits);
std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant, int bandwidth_bits,
                        const std::string& fault);

}  // namespace rlocal::lab
