// Registry: the catalog of solvers the lab can sweep.
//
// `Registry::with_builtins()` (and the process-wide `global()`) wraps every
// entry point the library grew before the lab existed -- Elkin-Neiman and
// Theorem 3.6 decomposition, Luby MIS on the message-passing engine, the
// greedy baselines, random-trial coloring, splitting, and conflict-free
// multicoloring -- so "add a scenario" means registering a solver, not
// writing a new binary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lab/solver.hpp"

namespace rlocal::lab {

class Registry {
 public:
  Registry() = default;
  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;

  /// Registers a solver; duplicate names throw InvariantError.
  void add(std::unique_ptr<Solver> solver);

  /// All built-in solvers (see lab/solvers_builtin.cpp).
  static Registry with_builtins();

  /// Process-wide registry preloaded with the builtins. Mutating it from
  /// concurrent threads is the caller's responsibility; sweeps only read.
  static Registry& global();

  /// Lookup by name; null when absent / throwing variant.
  const Solver* find(const std::string& name) const;
  const Solver& at(const std::string& name) const;

  std::vector<const Solver*> solvers() const;
  std::vector<std::string> solver_names() const;
  /// Distinct problem families, sorted.
  std::vector<std::string> problems() const;

  std::size_t size() const { return solvers_.size(); }

  /// Runs one cell through `solver`, stamping identity fields and wall time
  /// and converting exceptions into RunRecord::error. Does NOT check regime
  /// support -- that is sweep policy; forcing a cell (failure injection) is
  /// legitimate here. A RunContext with a deadline makes the cell fail with
  /// reason "deadline" once the solver's next cooperative check fires.
  RunRecord run_cell(const Solver& solver, const Graph& g,
                     const std::string& graph_name, const Regime& regime,
                     std::uint64_t seed, const ParamMap& params = {},
                     const RunContext& ctx = {}) const;

  /// Convenience: lookup + run_cell.
  RunRecord run_cell(const std::string& solver_name, const Graph& g,
                     const std::string& graph_name, const Regime& regime,
                     std::uint64_t seed, const ParamMap& params = {},
                     const RunContext& ctx = {}) const;

 private:
  std::vector<std::unique_ptr<Solver>> solvers_;
};

}  // namespace rlocal::lab
