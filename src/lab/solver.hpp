// Solver: the lab's uniform view of one algorithm for one problem.
//
// The paper's experiments all share a shape -- run algorithm A on graph G
// under randomness regime R with seed s, check the output, report the
// paper's observables and the randomness ledger. A Solver packages exactly
// that: it declares which regimes its algorithm is defined for (Luby's MIS
// makes sense under every scarce regime but degrades to a sequential order
// under adversarial constants; Theorem 3.6's construction is pointless
// without a shared seed but still well-defined under private coins), runs
// one cell, and fills a RunRecord including the built-in checker's verdict.
//
// Problems whose input is not a plain graph (splitting's bipartite
// instances, conflict-free multicoloring's hypergraphs) derive their
// instance deterministically from the cell's base graph size, so one grid
// spec drives every problem; the derivation is documented per solver and
// its knobs ride in the ParamMap.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "lab/record.hpp"
#include "rnd/regime.hpp"

namespace rlocal::lab {

class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key, conventionally "problem/algorithm" (e.g. "mis/luby").
  virtual std::string name() const = 0;
  /// Problem family ("decomposition", "mis", "coloring", "splitting", ...).
  virtual std::string problem() const = 0;
  virtual std::string description() const = 0;

  /// Regime kinds the algorithm is meaningfully defined for. Sweeps skip
  /// unsupported cells; direct run_cell() calls may still force one (e.g.
  /// failure injection under adversarial constants).
  virtual std::vector<RegimeKind> supported_regimes() const = 0;
  bool supports(const Regime& regime) const;

  /// Runs one cell and fills outcome/observable/ledger fields. Identity
  /// fields and wall time are stamped by the caller (Registry::run_cell).
  virtual RunRecord run(const Graph& g, const Regime& regime,
                        std::uint64_t seed, const ParamMap& params) const = 0;
};

}  // namespace rlocal::lab
