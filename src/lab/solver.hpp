// Solver: the lab's uniform view of one algorithm for one problem.
//
// The paper's experiments all share a shape -- run algorithm A on graph G
// under randomness regime R with seed s, check the output, report the
// paper's observables and the randomness ledger. A Solver packages exactly
// that: it declares which regimes its algorithm is defined for (Luby's MIS
// makes sense under every scarce regime but degrades to a sequential order
// under adversarial constants; Theorem 3.6's construction is pointless
// without a shared seed but still well-defined under private coins), runs
// one cell, and fills a RunRecord including the built-in checker's verdict.
//
// Problems whose input is not a plain graph (splitting's bipartite
// instances, conflict-free multicoloring's hypergraphs) derive their
// instance deterministically from the cell's base graph size, so one grid
// spec drives every problem; the derivation is documented per solver and
// its knobs ride in the ParamMap.
//
// RunContext is the cell's cooperative cancellation token: sweeps with a
// per-cell deadline (SweepSpec::cell_deadline_ms) hand each run a context
// whose check_deadline() throws DeadlineExpired once the wall clock passes
// the budget. Solvers call it at natural checkpoints (between pipeline
// stages, per retry/phase); Registry::run_cell converts the throw into a
// RunRecord failed with reason "deadline" instead of aborting the sweep.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cost/cost.hpp"
#include "graph/graph.hpp"
#include "lab/record.hpp"
#include "rnd/regime.hpp"
#include "sim/faults.hpp"

namespace rlocal::lab {

/// Thrown by RunContext::check_deadline when the cell's wall-clock budget is
/// spent; caught by Registry::run_cell and recorded, never user-facing.
class DeadlineExpired : public std::runtime_error {
 public:
  DeadlineExpired() : std::runtime_error("deadline") {}
};

class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;  ///< no deadline: check_deadline() never throws

  static RunContext with_deadline(Clock::time_point deadline) {
    RunContext ctx;
    ctx.deadline_ = deadline;
    return ctx;
  }
  /// Deadline `ms` milliseconds from now; ms <= 0 means no deadline.
  static RunContext with_deadline_ms(double ms) {
    if (ms <= 0) return RunContext{};
    return with_deadline(Clock::now() +
                         std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(ms)));
  }

  /// Copy of this context with the cell's bandwidth coordinate attached
  /// (bits per message for engine-backed CONGEST runs; 0 = model default).
  RunContext with_bandwidth_bits(int bits) const {
    RunContext ctx = *this;
    ctx.bandwidth_bits_ = bits > 0 ? bits : 0;
    return ctx;
  }
  /// The sweep's bandwidth-axis coordinate for this cell; 0 means "the
  /// model's default cap" (32 ceil(log2 n) in CONGEST, unbounded in LOCAL).
  int bandwidth_bits() const { return bandwidth_bits_; }

  /// Copy of this context with the cell's fault-axis coordinate attached
  /// (sim/faults.hpp). Fault-supporting solvers arm their engine with the
  /// spec (keyed by the cell's master seed); the disabled default is the
  /// reliable network.
  RunContext with_faults(const FaultSpec& faults) const {
    RunContext ctx = *this;
    ctx.faults_ = faults;
    return ctx;
  }
  /// The sweep's fault-axis coordinate; `!enabled()` on the reliable grid.
  const FaultSpec& faults() const { return faults_; }

  bool has_deadline() const { return deadline_.has_value(); }
  bool expired() const {
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }
  /// The cooperative cancellation point: cheap when no deadline is set.
  void check_deadline() const {
    if (expired()) throw DeadlineExpired();
  }

 private:
  std::optional<Clock::time_point> deadline_;
  int bandwidth_bits_ = 0;
  FaultSpec faults_{};
};

class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key, conventionally "problem/algorithm" (e.g. "mis/luby").
  virtual std::string name() const = 0;
  /// Problem family ("decomposition", "mis", "coloring", "splitting", ...).
  virtual std::string problem() const = 0;
  virtual std::string description() const = 0;

  /// Regime kinds the algorithm is meaningfully defined for. Sweeps skip
  /// unsupported cells; direct run_cell() calls may still force one (e.g.
  /// failure injection under adversarial constants).
  virtual std::vector<RegimeKind> supported_regimes() const = 0;
  bool supports(const Regime& regime) const;

  /// The communication model this algorithm's cost is stated in (see
  /// src/cost/). Registry::run_cell stamps it into every record's cost
  /// block; sweeps use it to decide which solvers a non-default bandwidth
  /// coordinate applies to.
  virtual cost::CostModel cost_model() const = 0;
  /// A non-default bandwidth cap only binds bandwidth-bound (CONGEST)
  /// models; sweeps skip other solvers' non-zero-bandwidth cells exactly
  /// like unsupported regimes.
  bool supports_bandwidth(int bandwidth_bits) const;

  /// True when the solver can execute under an injected fault schedule --
  /// i.e. it routes its communication through sim::Engine, where the fault
  /// plane lives. Sweeps skip other solvers' faulted cells exactly like
  /// unsupported regimes; fault-supporting solvers must take the engine
  /// path whenever ctx.faults().enabled() (reference shortcuts see no
  /// wire and therefore no faults).
  virtual bool supports_faults() const { return false; }

  /// Runs one cell and fills outcome/observable/ledger fields. Identity
  /// fields and wall time are stamped by the caller (Registry::run_cell).
  /// Implementations should call ctx.check_deadline() at checkpoints.
  virtual RunRecord run(const Graph& g, const Regime& regime,
                        std::uint64_t seed, const ParamMap& params,
                        const RunContext& ctx) const = 0;

  /// Convenience: run without a deadline. (Calls through a derived type see
  /// this hidden by the override; call through Solver& / run_cell instead.)
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params) const {
    return run(g, regime, seed, params, RunContext{});
  }
};

}  // namespace rlocal::lab
