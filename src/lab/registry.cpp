#include "lab/registry.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

#include "cost/meter.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace rlocal::lab {

double param(const ParamMap& params, const std::string& key, double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

int param_int(const ParamMap& params, const std::string& key, int fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : static_cast<int>(it->second);
}

bool Solver::supports(const Regime& regime) const {
  const std::vector<RegimeKind> kinds = supported_regimes();
  return std::find(kinds.begin(), kinds.end(), regime.kind) != kinds.end();
}

bool Solver::supports_bandwidth(int bandwidth_bits) const {
  return bandwidth_bits <= 0 ||
         cost::cost_model_spec(cost_model()).bandwidth_bound;
}

void Registry::add(std::unique_ptr<Solver> solver) {
  RLOCAL_CHECK(solver != nullptr, "cannot register a null solver");
  RLOCAL_CHECK(find(solver->name()) == nullptr,
               "solver '" + solver->name() + "' is already registered");
  solvers_.push_back(std::move(solver));
}

Registry& Registry::global() {
  static Registry registry = with_builtins();
  return registry;
}

const Solver* Registry::find(const std::string& name) const {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

const Solver& Registry::at(const std::string& name) const {
  const Solver* solver = find(name);
  RLOCAL_CHECK(solver != nullptr, "no solver named '" + name + "'");
  return *solver;
}

std::vector<const Solver*> Registry::solvers() const {
  std::vector<const Solver*> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver.get());
  return out;
}

std::vector<std::string> Registry::solver_names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver->name());
  return out;
}

std::vector<std::string> Registry::problems() const {
  std::set<std::string> unique;
  for (const auto& solver : solvers_) unique.insert(solver->problem());
  return {unique.begin(), unique.end()};
}

RunRecord Registry::run_cell(const Solver& solver, const Graph& g,
                             const std::string& graph_name,
                             const Regime& regime, std::uint64_t seed,
                             const ParamMap& params,
                             const RunContext& ctx) const {
  // Phase attribution for this cell: the engine, draw-funnel, and checker
  // timers (obs/phase.hpp) deposit into this scope while the solver runs;
  // the breakdown lands in record.phases (in-memory only, rlocal.profile/2).
  obs::CellPhaseScope phase_scope;
  const auto start = std::chrono::steady_clock::now();
  RunRecord record;
  // Engine executions report into this ledger through the thread-local
  // meter (cost/meter.hpp) -- solvers never hand-copy EngineStats. The same
  // scope carries the deadline token into the engine's per-round check and
  // the deterministic pipelines' cost::checkpoint() calls.
  cost::CostLedger engine_meter;
  try {
    obs::ObsSpan solver_span("lab", "solver_run");
    static obs::Histogram& solver_hist = obs::histogram(
        "rlocal_span_latency_seconds{span=\"solver_run\"}");
    static obs::Counter& solver_spans =
        obs::counter("rlocal_spans_total{span=\"solver_run\"}");
    obs::LatencyTimer solver_latency(solver_hist, solver_spans);
    cost::MeterScope meter(
        &engine_meter,
        ctx.has_deadline()
            ? std::function<void()>([&ctx] { ctx.check_deadline(); })
            : std::function<void()>{});
    record = solver.run(g, regime, seed, params, ctx);
  } catch (const DeadlineExpired&) {
    // The cell overran its wall-clock budget; a failed record with the
    // canonical "deadline" reason keeps the surrounding sweep alive. The
    // engine-metered cost observed so far survives as a partial block.
    record = RunRecord{};
    record.error = "deadline";
    record.success = false;
    record.checker_passed = false;
  } catch (const std::exception& e) {
    record = RunRecord{};
    record.error = e.what();
    record.success = false;
    record.checker_passed = false;
  }
  const auto stop = std::chrono::steady_clock::now();
  record.cost.merge_observations(engine_meter);
  record.cost.model = solver.cost_model();
  record.cost.finalize();
  record.cost.populated = true;
  // Mischarging -- the engine ran more rounds than the solver charged -- is
  // a checker failure, not silent drift. Only completed runs are judged: an
  // errored cell's charges are legitimately partial.
  if (record.error.empty() && record.cost.mischarge) {
    record.checker_passed = false;
    record.error = record.cost.mischarge_reason();
  }
  record.rounds =
      record.cost.rounds < 0
          ? -1
          : static_cast<int>(std::min<std::int64_t>(
                record.cost.rounds, std::numeric_limits<int>::max()));
  record.solver = solver.name();
  record.problem = solver.problem();
  record.graph = graph_name;
  record.regime = regime.name();
  record.bandwidth_bits = ctx.bandwidth_bits();
  // Canonical fault coordinate ("" on the reliable grid, so pre-fault-axis
  // records stay byte-identical). Stamped from the context, not the solver:
  // an errored faulted cell still records which fault regime it ran under.
  record.fault = ctx.faults().enabled() ? ctx.faults().name() : "";
  record.seed = seed;
  record.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  // The solver phase is the whole measured run (the graph-build and
  // store-append phases around it are stamped by the sweep); engine, draw,
  // and checker time sit *inside* it.
  record.phases.solver_ms = record.wall_ms;
  record.phases.checker_ms = phase_scope.ms(obs::Phase::kChecker);
  record.phases.engine_ms = phase_scope.ms(obs::Phase::kEngine);
  record.phases.draw_ms = phase_scope.ms(obs::Phase::kDraw);
  return record;
}

RunRecord Registry::run_cell(const std::string& solver_name, const Graph& g,
                             const std::string& graph_name,
                             const Regime& regime, std::uint64_t seed,
                             const ParamMap& params,
                             const RunContext& ctx) const {
  return run_cell(at(solver_name), g, graph_name, regime, seed, params, ctx);
}

}  // namespace rlocal::lab
