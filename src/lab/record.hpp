// RunRecord: the structured outcome of running one solver on one
// (graph, regime, seed) cell. This is the unit of data every experiment in
// the library produces; sweeps collect vectors of them and the emitters in
// lab/emit.hpp turn those into JSON artifacts and ASCII tables.
//
// Fields split into three groups:
//  * identity    -- which cell this is (stamped by the registry/sweep);
//  * outcome     -- success, checker verdict, error text;
//  * observables -- the paper's quantities (colors, rounds, diameter) plus
//    the randomness ledger (shared seed bits consumed, derived bits drawn)
//    and wall time. Solver-specific extras go into `metrics`; a typed
//    artifact (e.g. the Decomposition itself) rides in `artifact` for
//    callers that need more than numbers.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <string>

#include "cost/cost.hpp"

namespace rlocal::lab {

/// Free-form solver parameters (iteration budgets, thresholds, instance
/// shape knobs). Doubles keep the grid spec uniform; solvers round as
/// documented.
using ParamMap = std::map<std::string, double>;

/// `params[key]`, or `fallback` when absent.
double param(const ParamMap& params, const std::string& key, double fallback);
/// Integer-valued parameter (rounded toward zero).
int param_int(const ParamMap& params, const std::string& key, int fallback);

struct RunRecord {
  // Identity (stamped by Registry::run_cell / run_sweep).
  std::string solver;
  std::string problem;
  std::string graph;
  std::string regime;
  /// Named parameter set this cell ran under (sweep variant axis); empty
  /// when the sweep used a single implicit parameter set.
  std::string variant;
  /// The sweep's bandwidth-axis coordinate: bits per message for
  /// engine-backed CONGEST runs; 0 = the model's default cap (the implicit
  /// pre-bandwidth-axis grid). The *enforced* cap lives in cost.
  int bandwidth_bits = 0;
  /// The sweep's fault-axis coordinate (canonical FaultSpec name, e.g.
  /// "drop0.05"); empty = the implicit reliable network, exactly like the
  /// empty variant, so pre-fault-axis records stay byte-identical.
  std::string fault;
  std::uint64_t seed = 0;

  // Outcome.
  bool success = false;         ///< the algorithm reported completion
  bool checker_passed = false;  ///< independent validity check of the output
  bool skipped = false;         ///< regime not supported; nothing was run
  /// Restored from a sweep store instead of run in this process (resume
  /// path); wall_ms is then the *original* run's time. Not persisted in
  /// store frames -- it describes how this process obtained the record.
  bool resumed = false;
  std::string error;  ///< exception text if the cell threw ("deadline" when
                      ///< the per-cell wall-clock budget expired)

  // Observables (-1 where the problem has no such quantity).
  int colors = -1;      ///< decomposition/coloring colors used
  /// Convenience mirror of cost.rounds (stamped by Registry::run_cell);
  /// the authoritative value -- with messages, bits, and the per-round
  /// histogram -- is the typed `cost` block below.
  int rounds = -1;
  int iterations = -1;  ///< iterations of the iterative schemes
  int diameter = -1;    ///< max cluster tree diameter (decompositions)
  double objective = 0.0;  ///< problem-specific scalar (violations, size, ...)
  /// Solution-quality score under fault injection: the checker's violation
  /// count (0 = a fully valid output despite the faults; see docs/faults.md
  /// for the per-problem definition). -1 on reliable cells, where validity
  /// stays the pass/fail `checker_passed` verdict -- degraded-but-useful
  /// outputs are *measured* on the fault axis, never on the reliable grid.
  std::int64_t quality = -1;

  // Randomness ledger (from NodeRandomness).
  std::uint64_t shared_seed_bits = 0;  ///< true seed entropy consumed
  std::uint64_t derived_bits = 0;      ///< bits handed to the algorithm

  /// Communication cost (src/cost/): the solver's declared model, rounds
  /// (explicitly charged, or engine-observed), engine-metered
  /// messages/bits, and the per-round message histogram. Solvers charge
  /// into it during run(); Registry::run_cell merges the engine meter,
  /// finalizes, and flags mischarges as checker failures.
  cost::CostLedger cost;

  double wall_ms = 0.0;

  /// Where the cell's wall time went (obs/phase.hpp): solver total plus
  /// the engine/draw/checker time attributed *inside* it (overlapping, not
  /// a partition), and the sweep-stamped graph build / store append around
  /// it. In-memory only -- deliberately NOT serialized by store frames or
  /// emit_json, so persisted artifacts stay byte-identical whether or not
  /// anyone looks at phases. Feeds the `rlocal.profile/2` schema
  /// (docs/perf.md).
  struct PhaseBreakdown {
    double graph_build_ms = 0.0;
    double solver_ms = 0.0;
    double checker_ms = 0.0;
    double engine_ms = 0.0;
    double draw_ms = 0.0;
    double store_append_ms = 0.0;
  };
  PhaseBreakdown phases;

  std::map<std::string, double> metrics;  ///< solver-specific extras
  std::any artifact;  ///< typed payload (e.g. Decomposition); may be empty

  /// `metrics[key]`, or `fallback` when the solver did not report it.
  double metric_or(const std::string& key, double fallback) const {
    const auto it = metrics.find(key);
    return it == metrics.end() ? fallback : it->second;
  }
};

}  // namespace rlocal::lab
