// Built-in solvers: every pre-lab entry point of the library wrapped in the
// Solver interface (the theorem pipelines live in solvers_pipelines.cpp;
// shared helpers in solvers_common.hpp). Five problem families here:
//
//   decomposition -- Elkin-Neiman (Lemma 3.3 / Theorem 3.5 setting) and the
//                    Theorem 3.6 shared-randomness CONGEST construction;
//   mis           -- Luby via the simulation engine / centralized reference,
//                    plus the sequential greedy SLOCAL baseline;
//   coloring      -- random-trial (Delta+1)-coloring;
//   splitting     -- the [GKM17] splitting problem (Lemma 3.4);
//   conflict_free -- conflict-free hypergraph multicoloring (Theorem 3.5).
//
// Splitting and conflict-free inputs are not plain graphs; those solvers
// derive their instance deterministically from the cell graph's node count
// (constants below), so one sweep grid drives every problem family. The
// instance depends only on (n, shape params), never on the run seed: seeds
// sweep the algorithm's coins on a fixed instance, which is what the
// paper's success-probability statements quantify over.
#include <memory>
#include <utility>

#include "decomp/elkin_neiman.hpp"
#include "decomp/shared_congest.hpp"
#include "graph/bipartite.hpp"
#include "lab/registry.hpp"
#include "lab/solvers_common.hpp"
#include "problems/coloring.hpp"
#include "problems/conflict_free.hpp"
#include "problems/mis.hpp"
#include "problems/splitting.hpp"
#include "rnd/prng.hpp"
#include "sim/programs/luby.hpp"
#include "support/math.hpp"

namespace rlocal::lab {
namespace {

class ElkinNeimanSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/elkin_neiman"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Elkin-Neiman random-shift network decomposition (Thm 3.5 under "
           "k-wise independence); params: phases, shift_cap, engine=1 for "
           "the message-passing engine";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  bool supports_faults() const override { return true; }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const bool faulted = ctx.faults().enabled();
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    EnOptions options;
    options.phases = param_int(params, "phases", 0);
    options.shift_cap = param_int(params, "shift_cap", 0);
    // Faults live in the engine's wire delivery, so a faulted cell must
    // take the engine path regardless of the `engine` param (the reference
    // path sees no wire and therefore no faults).
    options.use_engine = faulted || param_int(params, "engine", 0) != 0;
    options.bandwidth_bits = ctx.bandwidth_bits();
    if (faulted) {
      options.faults = ctx.faults();
      options.fault_seed = seed;
    }
    EnResult result = elkin_neiman_decomposition(g, rnd, options);
    RunRecord record;
    record.cost.charge_rounds(result.rounds_charged);
    // The engine path meters real wires; the reference path charges the
    // model's analytic top-two broadcast count (see EnResult).
    if (!options.use_engine) {
      record.cost.charge_messages(result.analytic_messages,
                                  result.analytic_bits);
    }
    record.iterations = result.phases_used;
    record.metrics["max_shift"] = result.max_shift;
    record.metrics["shift_bits"] = static_cast<double>(result.shift_bits);
    record.metrics["unclustered"] =
        static_cast<double>(result.unclustered.size());
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    fill_decomposition_fields(g, std::move(result.decomposition),
                              result.all_clustered, record);
    if (faulted) {
      // Quality scoring replaces the pass/fail verdict (docs/faults.md):
      // under injected faults the algorithm carries no guarantee, so the
      // record reports how far it got -- here, nodes left unclustered. A
      // total-but-invalid decomposition (drops can corrupt a cluster tree)
      // scores at least one violation.
      record.quality = static_cast<std::int64_t>(result.unclustered.size());
      if (result.all_clustered && !record.checker_passed) {
        record.quality = std::max<std::int64_t>(record.quality, 1);
      }
      record.success = true;
      record.checker_passed = true;
      record.error.clear();
    }
    return record;
  }
};

class SharedCongestSolver final : public Solver {
 public:
  std::string name() const override { return "decomp/shared_congest"; }
  std::string problem() const override { return "decomposition"; }
  std::string description() const override {
    return "Theorem 3.6 strong-diameter decomposition from a poly(log n) "
           "shared seed in CONGEST";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    // Runs under private coins too (the shared seed is then simulated), but
    // the eps-bias seeds are statistically too short for the construction.
    // Pooled randomness is the Theorem 3.7 reading: clusters of nodes share
    // one finite stream.
    return kScarceNoEpsBias;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    SharedCongestOptions options;
    options.phases = param_int(params, "phases", 0);
    options.radius_scale = param_int(params, "radius_scale", 2);
    options.collect_reach_stats =
        param_int(params, "reach_stats", 0) != 0;
    SharedCongestResult result =
        shared_randomness_decomposition(g, rnd, options);
    RunRecord record;
    record.cost.charge_rounds(result.rounds_charged);
    charge_congest_worst_case(record, g, result.rounds_charged);
    record.iterations = result.phases_used;
    record.metrics["epochs_per_phase"] = result.epochs_per_phase;
    record.metrics["max_radius_drawn"] = result.max_radius_drawn;
    if (options.collect_reach_stats) {
      record.metrics["max_centers_reaching"] = result.max_centers_reaching;
    }
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    fill_decomposition_fields(g, std::move(result.decomposition),
                              result.all_clustered, record);
    return record;
  }
};

class LubyMisSolver final : public Solver {
 public:
  std::string name() const override { return "mis/luby"; }
  std::string problem() const override { return "mis"; }
  std::string description() const override {
    return "Luby's MIS with regime-injected priorities; params: "
           "max_iterations, engine=1 for the message-passing engine";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    // Adversarial constants degrade Luby to the sequential id order, whose
    // round count is not O(log n); force such cells via run_cell directly.
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  bool supports_faults() const override { return true; }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const bool faulted = ctx.faults().enabled();
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    const int max_iterations = param_int(params, "max_iterations", 0);
    // A faulted cell must take the engine path regardless of the `engine`
    // param: faults live in the engine's wire delivery, and the reference
    // path sees no wire.
    const bool on_engine = faulted || param_int(params, "engine", 0) != 0;
    EngineOptions engine_options;
    engine_options.bandwidth_bits = ctx.bandwidth_bits();
    if (faulted) {
      engine_options.faults = ctx.faults();
      engine_options.fault_seed = seed;
    }
    const LubyMisResult result =
        on_engine ? run_luby_mis(g, rnd, max_iterations, engine_options)
                  : reference_luby_mis(g, rnd, max_iterations);
    RunRecord record;
    if (faulted) {
      // Quality scoring replaces the pass/fail verdict (docs/faults.md):
      // under injected faults maximality is not guaranteed, so the record
      // reports the distance from a valid MIS (independence violations +
      // uncovered nodes; crashed/undecided nodes score as not-in-set).
      record.quality =
          timed_checker([&] { return mis_quality(g, result.in_mis); });
      record.success = true;
      record.checker_passed = true;
    } else {
      record.success = result.success;
      record.checker_passed =
          result.success && timed_checker([&] {
            return is_maximal_independent_set(g, result.in_mis);
          });
    }
    record.iterations = result.iterations;
    // The engine path's rounds/messages/bits are metered automatically
    // (cost/meter.hpp); only the reference path charges the model cost --
    // its analytic announce/JOIN counts replay the protocol's exact sends,
    // so both paths report the same message totals on identical coins.
    if (!on_engine) {
      record.cost.charge_rounds(2 * result.iterations);
      record.cost.charge_messages(result.analytic_messages,
                                  result.analytic_bits);
    }
    int mis_size = 0;
    for (const bool b : result.in_mis) mis_size += b ? 1 : 0;
    record.objective = mis_size;
    record.metrics["mis_size"] = mis_size;
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    record.artifact = result.in_mis;
    return record;
  }
};

class GreedyMisSolver final : public Solver {
 public:
  std::string name() const override { return "mis/greedy"; }
  std::string problem() const override { return "mis"; }
  std::string description() const override {
    return "Sequential greedy MIS by ascending identifier (SLOCAL locality-1 "
           "baseline; consumes no randomness)";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic: every regime is trivially fine
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kSequentialSLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap&,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const std::vector<bool> in_mis = greedy_mis_by_id(g);
    RunRecord record;
    record.success = true;
    record.checker_passed =
        timed_checker([&] { return is_maximal_independent_set(g, in_mis); });
    int mis_size = 0;
    for (const bool b : in_mis) mis_size += b ? 1 : 0;
    record.objective = mis_size;
    record.metrics["mis_size"] = mis_size;
    record.artifact = in_mis;
    return record;
  }
};

class RandomColoringSolver final : public Solver {
 public:
  std::string name() const override { return "coloring/random_trial"; }
  std::string problem() const override { return "coloring"; }
  std::string description() const override {
    return "(Delta+1)-coloring by random palette trials; params: "
           "max_iterations";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kCongest;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    const ColoringResult result =
        random_coloring(g, rnd, param_int(params, "max_iterations", 0));
    RunRecord record;
    record.success = result.success;
    record.checker_passed = result.success && timed_checker([&] {
                              return is_valid_coloring(g, result.color,
                                                       g.max_degree() + 1);
                            });
    record.iterations = result.iterations;
    record.cost.charge_rounds(result.rounds_charged);
    record.cost.charge_messages(result.analytic_messages,
                                result.analytic_bits);
    int used = 0;
    for (const int c : result.color) used = std::max(used, c + 1);
    record.colors = used;
    record.objective = used;
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    record.artifact = result.color;
    return record;
  }
};

class RandomSplittingSolver final : public Solver {
 public:
  std::string name() const override { return "splitting/random"; }
  std::string problem() const override { return "splitting"; }
  std::string description() const override {
    return "[GKM17] splitting in zero rounds (Lemma 3.4); instance derived "
           "from n: params degree (default 4 log n), window=1 for the "
           "overlapping-window instance";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    // Zero communication at all (Lemma 3.4's point): LOCAL, zero rounds.
    return cost::CostModel::kLocal;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const auto n = static_cast<std::int32_t>(g.num_nodes());
    const int degree = param_int(params, "degree",
                                 4 * log2n(static_cast<std::uint64_t>(n)));
    // Instance depends on (n, shape) only -- seeds sweep the coins, not the
    // instance (see file comment).
    const BipartiteGraph h =
        param_int(params, "window", 0) != 0
            ? make_window_splitting_instance(n, n, degree)
            : make_random_splitting_instance(
                  n, n, degree,
                  mix3(0x5EEDu, static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(degree)));
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    const SplittingResult result = random_splitting(h, rnd);
    RunRecord record;
    record.success = result.violations == 0;
    record.checker_passed = timed_checker(
        [&] { return count_splitting_violations(h, result.red) == 0; });
    record.cost.charge_rounds(0);  // the point of Lemma 3.4
    record.cost.charge_messages(0, 0);
    record.objective = result.violations;
    record.metrics["violations"] = result.violations;
    record.metrics["constraint_degree"] = h.min_left_degree();
    record.metrics["union_bound"] = splitting_failure_upper_bound(h);
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    record.artifact = result.red;
    return record;
  }
};

class CfMulticolorSolver final : public Solver {
 public:
  std::string name() const override { return "conflict_free/kwise"; }
  std::string problem() const override { return "conflict_free"; }
  std::string description() const override {
    return "Conflict-free hypergraph multicoloring via k-wise marking "
           "(Thm 3.5); instance derived from n: params edges_per_class, "
           "small_threshold";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kScarceRegimes;
  }
  cost::CostModel cost_model() const override {
    // Zero-round k-wise marking; the small-edge base case is local too.
    return cost::CostModel::kLocal;
  }
  RunRecord run(const Graph& g, const Regime& regime, std::uint64_t seed,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const auto n = static_cast<std::int32_t>(g.num_nodes());
    const int logn = log2n(static_cast<std::uint64_t>(n));
    const int edges_per_class = param_int(params, "edges_per_class", 8);
    const Hypergraph h = make_classed_hypergraph(
        n, edges_per_class, logn,
        mix3(0xCFu, static_cast<std::uint64_t>(n),
             static_cast<std::uint64_t>(edges_per_class)));
    NodeRandomness rnd = cell_randomness(regime, seed, ctx);
    const CfKwiseResult result = cf_multicolor_kwise(
        h, rnd, param_int(params, "small_threshold", 0));
    RunRecord record;
    record.success = result.valid;
    record.checker_passed =
        timed_checker([&] { return is_conflict_free(h, result.coloring); });
    record.colors = result.coloring.num_colors;
    record.objective = result.coloring.num_colors;
    record.metrics["classes_marked"] = result.classes_marked;
    record.metrics["empty_restrictions"] = result.empty_restrictions;
    record.metrics["min_marked"] = result.min_marked;
    record.metrics["max_marked"] = result.max_marked;
    record.shared_seed_bits = rnd.shared_seed_bits();
    record.derived_bits = rnd.derived_bits();
    return record;
  }
};

class CfDeterministicSolver final : public Solver {
 public:
  std::string name() const override { return "conflict_free/deterministic"; }
  std::string problem() const override { return "conflict_free"; }
  std::string description() const override {
    return "Deterministic conflict-free multicoloring by conditional "
           "expectations (the [GKM17] base case; consumes no randomness); "
           "instance derived from n as in conflict_free/kwise";
  }
  std::vector<RegimeKind> supported_regimes() const override {
    return kAllRegimes;  // deterministic: every regime is trivially fine
  }
  cost::CostModel cost_model() const override {
    return cost::CostModel::kSequentialSLocal;
  }
  RunRecord run(const Graph& g, const Regime&, std::uint64_t,
                const ParamMap& params,
                const RunContext& ctx) const override {
    ctx.check_deadline();
    const auto n = static_cast<std::int32_t>(g.num_nodes());
    const int edges_per_class = param_int(params, "edges_per_class", 8);
    const Hypergraph h = make_classed_hypergraph(
        n, edges_per_class, log2n(static_cast<std::uint64_t>(n)),
        mix3(0xCFu, static_cast<std::uint64_t>(n),
             static_cast<std::uint64_t>(edges_per_class)));
    const CfDeterministicResult result = cf_multicolor_deterministic(h);
    RunRecord record;
    record.success = true;
    record.checker_passed =
        timed_checker([&] { return is_conflict_free(h, result.coloring); });
    record.colors = result.coloring.num_colors;
    record.objective = result.coloring.num_colors;
    record.metrics["phases"] = result.phases;
    return record;
  }
};

}  // namespace

Registry Registry::with_builtins() {
  Registry registry;
  registry.add(std::make_unique<ElkinNeimanSolver>());
  registry.add(std::make_unique<SharedCongestSolver>());
  registry.add(std::make_unique<LubyMisSolver>());
  registry.add(std::make_unique<GreedyMisSolver>());
  registry.add(std::make_unique<RandomColoringSolver>());
  registry.add(std::make_unique<RandomSplittingSolver>());
  registry.add(std::make_unique<CfMulticolorSolver>());
  registry.add(std::make_unique<CfDeterministicSolver>());
  register_pipeline_solvers(registry);
  return registry;
}

}  // namespace rlocal::lab
