#include "lab/sweep.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "obs/obs.hpp"
#include "rnd/dispatch.hpp"
#include "rnd/prng.hpp"
#include "service/claims.hpp"
#include "store/store.hpp"
#include "support/assert.hpp"

namespace rlocal::lab {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char ch : s) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

struct Cell {
  const Solver* solver = nullptr;
  const ZooEntry* graph = nullptr;
  const Regime* regime = nullptr;
  const ParamVariant* variant = nullptr;
  const ParamMap* params = nullptr;  ///< spec params overlaid with variant's
  int bandwidth_bits = 0;            ///< bandwidth-axis coordinate
  const FaultSpec* fault = nullptr;  ///< fault-axis coordinate
  /// Canonical record/seed coordinate: "" for the implicit none (so the
  /// reliable grid's seeds and frames stay byte-identical), name() else.
  const std::string* fault_name = nullptr;
  std::uint64_t user_seed = 0;
  bool skipped = false;
};

store::StoreManifest manifest_from_spec(
    const std::vector<const Solver*>& solvers, const SweepSpec& spec,
    std::uint64_t fingerprint, std::uint64_t total_cells) {
  store::StoreManifest manifest;
  manifest.fingerprint = store::fingerprint_hex(fingerprint);
  manifest.total_cells = total_cells;
  for (const Solver* solver : solvers) {
    manifest.solvers.push_back(solver->name());
  }
  for (const ZooEntry& entry : spec.graphs) {
    manifest.graphs.push_back(entry.name);
  }
  for (const Regime& regime : spec.regimes) {
    manifest.regimes.push_back(regime.name());
  }
  for (const ParamVariant& variant : spec.variants) {
    manifest.variants.push_back(variant.name);
  }
  manifest.bandwidths = spec.bandwidths;
  for (const FaultSpec& fault : spec.faults) {
    manifest.faults.push_back(fault.name());
  }
  manifest.seeds = spec.seeds;
  manifest.cell_deadline_ms = spec.cell_deadline_ms;
  manifest.rnd_backend = rnd::backend_name(rnd::active_backend());
  return manifest;
}

SweepResult run_sweep_impl(const Registry& registry, const SweepSpec& spec,
                           const StoreOptions* store_options) {
  RLOCAL_CHECK(!spec.graphs.empty(), "sweep spec needs at least one graph");
  RLOCAL_CHECK(!spec.regimes.empty(), "sweep spec needs at least one regime");
  RLOCAL_CHECK(!spec.seeds.empty(), "sweep spec needs at least one seed");
  for (const ZooEntry& entry : spec.graphs) {
    RLOCAL_CHECK(entry.graph.num_nodes() > 0 || entry.factory != nullptr,
                 "sweep graph '" + entry.name +
                     "' is empty and has no factory");
  }

  std::vector<const Solver*> solvers;
  if (spec.solvers.empty()) {
    solvers = registry.solvers();
  } else {
    for (const std::string& name : spec.solvers) {
      solvers.push_back(&registry.at(name));  // throws on unknown names
    }
  }
  RLOCAL_CHECK(!solvers.empty(), "sweep spec resolved to zero solvers");

  // Resolve the variant axis: one implicit ("", spec.params) variant when
  // none are given; otherwise overlay each variant's params on the spec's.
  static const ParamVariant kImplicitVariant{};
  std::vector<const ParamVariant*> variants;
  std::vector<ParamMap> variant_params;
  if (spec.variants.empty()) {
    variants.push_back(&kImplicitVariant);
    variant_params.push_back(spec.params);
  } else {
    for (const ParamVariant& variant : spec.variants) {
      for (const ParamVariant* seen : variants) {
        RLOCAL_CHECK(seen->name != variant.name,
                     "duplicate sweep variant '" + variant.name + "'");
      }
      variants.push_back(&variant);
      ParamMap merged = spec.params;
      for (const auto& [key, value] : variant.params) merged[key] = value;
      variant_params.push_back(std::move(merged));
    }
  }

  // Resolve the bandwidth axis: one implicit 0 ("model default") when none
  // are given. A non-zero cap only binds CONGEST-model solvers; the rest of
  // the grid is skipped per-solver below, like unsupported regimes.
  std::vector<int> bandwidths = spec.bandwidths;
  if (bandwidths.empty()) bandwidths.push_back(0);
  for (std::size_t i = 0; i < bandwidths.size(); ++i) {
    RLOCAL_CHECK(bandwidths[i] >= 0,
                 "sweep bandwidth coordinates must be >= 0 (0 = default)");
    for (std::size_t j = 0; j < i; ++j) {
      RLOCAL_CHECK(bandwidths[j] != bandwidths[i],
                   "duplicate sweep bandwidth coordinate " +
                       std::to_string(bandwidths[i]));
    }
  }

  // Resolve the fault axis: one implicit none ("reliable network") when no
  // coordinates are given. A non-none schedule only binds fault-supporting
  // (engine-backed) solvers; the rest of the grid is skipped per-solver
  // below, like unsupported regimes and bandwidths. The canonical names are
  // the record/seed coordinates ("" for none, so default grids keep their
  // exact cell seeds and frame bytes).
  std::vector<FaultSpec> faults = spec.faults;
  if (faults.empty()) faults.push_back(FaultSpec::none());
  std::vector<std::string> fault_names;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    RLOCAL_CHECK(faults[i].drop_prob >= 0.0 && faults[i].drop_prob < 1.0 &&
                     faults[i].crash_fraction >= 0.0 &&
                     faults[i].crash_fraction < 1.0 &&
                     faults[i].crash_round_cap >= 1 &&
                     faults[i].skew_max >= 0,
                 "sweep fault coordinate out of range");
    fault_names.push_back(faults[i].enabled() ? faults[i].name() : "");
    for (std::size_t j = 0; j < i; ++j) {
      RLOCAL_CHECK(!(faults[j] == faults[i]),
                   "duplicate sweep fault coordinate '" + faults[i].name() +
                       "'");
    }
  }

  std::vector<Cell> cells;
  int cells_skipped = 0;
  std::uint64_t storable_cells = 0;
  for (const Solver* solver : solvers) {
    for (const ZooEntry& entry : spec.graphs) {
      for (const Regime& regime : spec.regimes) {
        const bool regime_ok = solver->supports(regime);
        for (std::size_t v = 0; v < variants.size(); ++v) {
          for (const int bandwidth : bandwidths) {
            for (std::size_t f = 0; f < faults.size(); ++f) {
              const bool supported =
                  regime_ok && solver->supports_bandwidth(bandwidth) &&
                  (!faults[f].enabled() || solver->supports_faults());
              if (!supported) {
                // Same unit as cells_run: one per grid cell incl. the seed
                // axis.
                cells_skipped += static_cast<int>(spec.seeds.size());
                if (!spec.keep_unsupported) continue;
              }
              for (const std::uint64_t seed : spec.seeds) {
                cells.push_back({solver, &entry, &regime, variants[v],
                                 &variant_params[v], bandwidth, &faults[f],
                                 &fault_names[f], seed, !supported});
                if (supported) ++storable_cells;
              }
            }
          }
        }
      }
    }
  }

  SweepResult result;
  result.cells_skipped = cells_skipped;
  result.records.resize(cells.size());
  // Cells materialized into result.records (run, resumed, or kept-skipped);
  // under max_cells truncation the rest are compacted away at the end.
  std::vector<char> done(cells.size(), 0);

  // --- Store attachment: open/create, fingerprint gate, restore. ---------
  std::optional<store::RecordStore> record_store;
  const bool claim_mode = store_options != nullptr && store_options->claim;
  if (store_options != nullptr) {
    RLOCAL_CHECK(!store_options->dir.empty(),
                 "sweep store options need a directory");
    RLOCAL_CHECK(!(store_options->claim && store_options->resume),
                 "sweep store: claim and resume are mutually exclusive (a "
                 "claimed drain never re-runs done ranges anyway)");
    const std::uint64_t fingerprint =
        store::sweep_fingerprint(registry, spec);
    const std::string fingerprint_hex = store::fingerprint_hex(fingerprint);
    if (claim_mode) {
      // Join-or-create: exactly one process publishes the manifest; joiners
      // fingerprint-verify. Existing shards are kept -- a claimed drain of a
      // half-finished store is exactly how multi-process resume works.
      record_store.emplace(service::ensure_store(
          store_options->dir,
          manifest_from_spec(solvers, spec, fingerprint, storable_cells)));
    } else if (store_options->resume) {
      record_store.emplace(store::RecordStore::open(store_options->dir));
      RLOCAL_CHECK(
          record_store->manifest().fingerprint == fingerprint_hex,
          "sweep store '" + store_options->dir +
              "' was written by a different spec (fingerprint " +
              record_store->manifest().fingerprint + ", this spec is " +
              fingerprint_hex + "); refusing to mix records");
      for (store::StoredRecord& stored : record_store->read_all()) {
        RLOCAL_CHECK(stored.cell_index < cells.size(),
                     "sweep store '" + store_options->dir +
                         "' holds a cell outside this grid (corrupt store)");
        const std::size_t i = static_cast<std::size_t>(stored.cell_index);
        const Cell& cell = cells[i];
        const std::uint64_t master =
            cell_seed(cell.user_seed, cell.solver->name(), cell.graph->name,
                      cell.regime->name(), cell.variant->name,
                      cell.bandwidth_bits, *cell.fault_name);
        // The fingerprint already pins the grid; these per-frame checks
        // catch a store whose shards were edited or mixed by hand.
        RLOCAL_CHECK(!cell.skipped && stored.cell_seed == master &&
                         stored.record.solver == cell.solver->name() &&
                         stored.record.graph == cell.graph->name &&
                         stored.record.regime == cell.regime->name() &&
                         stored.record.variant == cell.variant->name &&
                         stored.record.bandwidth_bits == cell.bandwidth_bits &&
                         stored.record.fault == *cell.fault_name &&
                         stored.record.seed == cell.user_seed,
                     "sweep store '" + store_options->dir +
                         "' frame does not match its grid cell " +
                         std::to_string(stored.cell_index) +
                         " (corrupt store)");
        stored.record.resumed = true;
        result.records[i] = std::move(stored.record);
        done[i] = 1;
        ++result.cells_resumed;
      }
    } else {
      record_store.emplace(store::RecordStore::create(
          store_options->dir,
          manifest_from_spec(solvers, spec, fingerprint, storable_cells)));
    }
  }

  const auto start = std::chrono::steady_clock::now();
  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, std::max<std::size_t>(cells.size(), 1));

  std::atomic<std::size_t> cursor{0};
  std::atomic<int> executed{0};
  std::atomic<bool> truncated{false};

  const auto materialize_skipped = [&](std::size_t i) {
    const Cell& cell = cells[i];
    RunRecord& record = result.records[i];
    record.solver = cell.solver->name();
    record.problem = cell.solver->problem();
    record.graph = cell.graph->name;
    record.regime = cell.regime->name();
    record.variant = cell.variant->name;
    record.bandwidth_bits = cell.bandwidth_bits;
    record.fault = *cell.fault_name;
    record.seed = cell.user_seed;
    record.skipped = true;
    done[i] = 1;
  };

  // Runs cell i and streams its frame into `shard` (opened lazily under
  // `shard_name` so workers that never execute a cell create no file).
  const auto execute_cell =
      [&](std::size_t i, std::optional<store::RecordStore::ShardWriter>& shard,
          const std::string& shard_name) {
        const Cell& cell = cells[i];
        const std::uint64_t master =
            cell_seed(cell.user_seed, cell.solver->name(), cell.graph->name,
                      cell.regime->name(), cell.variant->name,
                      cell.bandwidth_bits, *cell.fault_name);
        const RunContext ctx =
            RunContext::with_deadline_ms(spec.cell_deadline_ms)
                .with_bandwidth_bits(cell.bandwidth_bits)
                .with_faults(*cell.fault);
        // Per-cell span tagged solver/regime(/variant); the name is only
        // assembled when a tracing session is live, so the disabled sweep
        // allocates nothing here.
        std::string span_name;
        if (obs::Tracer::enabled()) {
          span_name = "cell " + cell.solver->name() + "/" +
                      cell.regime->name();
          if (!cell.variant->name.empty()) {
            span_name += "/" + cell.variant->name;
          }
        }
        obs::ObsSpan cell_span(span_name.empty() ? nullptr : "sweep",
                               span_name);
        double graph_build_ms = 0.0;
        {
          // Lazy zoo entries are built here and destroyed at scope exit --
          // before the record is appended to the store -- so peak memory is
          // one instance per worker even on n >> 10^6 grids.
          Graph built;
          const Graph* graph = &cell.graph->graph;
          if (cell.graph->lazy()) {
            obs::ObsSpan build_span("sweep", "graph_build");
            const auto build_start = std::chrono::steady_clock::now();
            built = cell.graph->factory();
            graph_build_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 build_start)
                                 .count();
            graph = &built;
          }
          RunRecord record = registry.run_cell(*cell.solver, *graph,
                                               cell.graph->name, *cell.regime,
                                               master, *cell.params, ctx);
          record.variant = cell.variant->name;
          record.seed = cell.user_seed;  // the user's seed, not the mix
          record.phases.graph_build_ms = graph_build_ms;
          result.records[i] = std::move(record);
        }
        if (record_store.has_value()) {
          if (!shard.has_value()) {
            shard.emplace(record_store->shard_writer(shard_name));
          }
          obs::ObsSpan append_span("store", "store_append");
          static obs::Histogram& append_hist = obs::histogram(
              "rlocal_span_latency_seconds{span=\"store_append\"}");
          static obs::Counter& append_spans =
              obs::counter("rlocal_spans_total{span=\"store_append\"}");
          obs::LatencyTimer append_latency(append_hist, append_spans);
          const auto append_start = std::chrono::steady_clock::now();
          shard->append({static_cast<std::uint64_t>(i), master,
                         result.records[i]});
          // Stamped after the frame is written, so the persisted bytes do
          // not depend on this (in-memory-only) field.
          result.records[i].phases.store_append_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - append_start)
                  .count();
        }
        done[i] = 1;
      };

  const auto worker = [&](int worker_index) {
    std::optional<store::RecordStore::ShardWriter> shard;
    const std::string shard_name = std::to_string(worker_index);
    while (true) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= cells.size()) return;
      if (done[i]) continue;  // restored from the store
      if (cells[i].skipped) {
        materialize_skipped(i);
        continue;
      }
      if (spec.max_cells > 0 && executed.fetch_add(1) >= spec.max_cells) {
        // Budget spent: leave the cell unclaimed on disk and in the result
        // (a later resume picks it up); keep scanning so cheap skipped
        // cells still materialize.
        truncated.store(true, std::memory_order_relaxed);
        continue;
      }
      execute_cell(i, shard, shard_name);
    }
  };

  // Claimed drain: workers claim lease ranges through the filesystem
  // instead of the in-process cursor, so any number of *processes* (and
  // their threads -- every claimer is just an owner id) cooperate on one
  // grid. Lost races sleep-and-retry until every range is done: a range
  // held by a claimer that dies goes stale and is stolen.
  const std::string claim_owner =
      store_options != nullptr && !store_options->claim_owner.empty()
          ? store_options->claim_owner
          : "pid-" + std::to_string(static_cast<long>(::getpid()));
  service::ClaimOptions claim_options;
  if (claim_mode) {
    if (store_options->claim_range_cells > 0) {
      claim_options.range_cells = store_options->claim_range_cells;
    }
    if (store_options->claim_ttl_ms > 0) {
      claim_options.ttl_ms = store_options->claim_ttl_ms;
    }
    // Skipped cells are free, deterministic, and never persisted: every
    // process materializes all of them locally, outside the claim plane.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].skipped && !done[i]) materialize_skipped(i);
    }
  }
  const auto claim_worker = [&](int worker_index) {
    const std::string self =
        claim_owner + "-w" + std::to_string(worker_index);
    service::WorkClaims claims(store_options->dir, self,
                               static_cast<std::uint64_t>(cells.size()),
                               claim_options);
    std::optional<store::RecordStore::ShardWriter> shard;
    while (true) {
      const std::optional<std::uint64_t> range = claims.acquire();
      if (!range.has_value()) {
        if (claims.all_done()) return;
        // Everything left is freshly held by other claimers; wait for them
        // to finish ranges (or die and go stale) and rescan.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint64_t>(claim_options.ttl_ms / 4 + 1, 50)));
        continue;
      }
      bool ours = true;
      for (std::uint64_t i = claims.range_begin(*range);
           i < claims.range_end(*range); ++i) {
        if (done[i]) continue;  // skipped cells, materialized above
        if (spec.max_cells > 0 && executed.fetch_add(1) >= spec.max_cells) {
          truncated.store(true, std::memory_order_relaxed);
          claims.release(*range);  // hand the rest to other claimers now
          return;
        }
        execute_cell(static_cast<std::size_t>(i), shard, self);
        if (!claims.heartbeat(*range)) {
          // Stolen: this claimer looked dead. The frames it already wrote
          // are byte-identical duplicates of the thief's; abandon the rest.
          ours = false;
          break;
        }
      }
      if (ours) claims.mark_done(*range);
    }
  };

  const auto run_pool = [&](const auto& body) {
    if (threads <= 1) {
      body(0);
      result.threads_used = 1;
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) pool.emplace_back(body, t);
      for (std::thread& t : pool) t.join();
      result.threads_used = threads;
    }
  };
  if (claim_mode) {
    run_pool(claim_worker);
  } else {
    run_pool(worker);
  }

  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  // Compact a truncated run: grid order is preserved, unmaterialized cells
  // (max_cells budget, or -- in a claimed drain -- cells other claimers
  // ran) drop out.
  if (truncated.load(std::memory_order_relaxed) || claim_mode) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!done[i]) continue;
      if (kept != i) result.records[kept] = std::move(result.records[i]);
      ++kept;
    }
    result.records.resize(kept);
  }

  for (const RunRecord& record : result.records) {
    if (record.skipped) continue;
    // Resumed cells count toward cells_resumed (stamped during restore) and
    // toward failures -- they are part of the record set -- but never toward
    // cells_run, so per-process throughput and the regression gate's
    // aggregates reflect only work actually done here.
    if (!record.resumed) ++result.cells_run;
    if (!record.error.empty() || !record.checker_passed) {
      ++result.cells_failed;
    }
  }
  {
    // Process-wide totals for /metrics (docs/observability.md). Added once
    // per sweep from the final tally, not per cell, so the worker loop
    // stays untouched.
    static obs::Counter& run_total = obs::counter("rlocal_cells_run_total");
    static obs::Counter& failed_total =
        obs::counter("rlocal_cells_failed_total");
    static obs::Counter& skipped_total =
        obs::counter("rlocal_cells_skipped_total");
    static obs::Counter& resumed_total =
        obs::counter("rlocal_cells_resumed_total");
    run_total.add(static_cast<std::uint64_t>(result.cells_run));
    failed_total.add(static_cast<std::uint64_t>(result.cells_failed));
    skipped_total.add(static_cast<std::uint64_t>(result.cells_skipped));
    resumed_total.add(static_cast<std::uint64_t>(result.cells_resumed));
  }
  if (record_store.has_value()) {
    if (claim_mode) {
      // This process only saw its own claims; the advisory completion count
      // is what the whole cooperating fleet has durably stored.
      record_store->finalize(
          static_cast<std::uint64_t>(record_store->read_all().size()));
    } else {
      record_store->finalize(static_cast<std::uint64_t>(result.cells_run) +
                             static_cast<std::uint64_t>(result.cells_resumed));
    }
  }
  return result;
}

}  // namespace

std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime) {
  return cell_seed(user_seed, solver, graph, regime, "");
}

std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant) {
  // The empty variant contributes nothing, so pre-variant sweeps keep their
  // exact per-cell seeds. Non-empty variants chain a second mix stage (not
  // an XOR into the regime word, which would alias swapped (regime,
  // variant) name pairs).
  const std::uint64_t base =
      mix3(user_seed, fnv1a(solver) ^ fnv1a(graph), fnv1a(regime));
  if (variant.empty()) return base;
  return mix3(base, fnv1a(variant), 0x76617269616E74ULL);  // "variant"
}

std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant, int bandwidth_bits) {
  // Coordinate 0 (the model-default cap) contributes nothing, exactly like
  // the empty variant: pre-bandwidth-axis grids keep their cell seeds, so
  // old stores remain reproducible cell-for-cell.
  const std::uint64_t base =
      cell_seed(user_seed, solver, graph, regime, variant);
  if (bandwidth_bits <= 0) return base;
  return mix3(base, static_cast<std::uint64_t>(bandwidth_bits),
              0x62616E647769ULL);  // "bandwi"
}

std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant, int bandwidth_bits,
                        const std::string& fault) {
  // The reliable network contributes nothing, exactly like the empty
  // variant and the default bandwidth: pre-fault-axis grids keep their cell
  // seeds, so old stores remain reproducible cell-for-cell. Both spellings
  // of the implicit coordinate ("" in records, "none" in specs) map to the
  // base seed.
  const std::uint64_t base =
      cell_seed(user_seed, solver, graph, regime, variant, bandwidth_bits);
  if (fault.empty() || fault == "none") return base;
  return mix3(base, fnv1a(fault), 0x6661756C7473ULL);  // "faults"
}

SweepResult run_sweep(const Registry& registry, const SweepSpec& spec) {
  return run_sweep_impl(registry, spec, nullptr);
}

SweepResult run_sweep(const SweepSpec& spec) {
  return run_sweep(Registry::global(), spec);
}

SweepResult run_sweep(const Registry& registry, const SweepSpec& spec,
                      const StoreOptions& store) {
  return run_sweep_impl(registry, spec, &store);
}

SweepResult run_sweep(const SweepSpec& spec, const StoreOptions& store) {
  return run_sweep(Registry::global(), spec, store);
}

}  // namespace rlocal::lab
