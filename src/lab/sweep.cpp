#include "lab/sweep.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "rnd/prng.hpp"
#include "support/assert.hpp"

namespace rlocal::lab {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char ch : s) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

struct Cell {
  const Solver* solver = nullptr;
  const ZooEntry* graph = nullptr;
  const Regime* regime = nullptr;
  const ParamVariant* variant = nullptr;
  const ParamMap* params = nullptr;  ///< spec params overlaid with variant's
  std::uint64_t user_seed = 0;
  bool skipped = false;
};

}  // namespace

std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime) {
  return cell_seed(user_seed, solver, graph, regime, "");
}

std::uint64_t cell_seed(std::uint64_t user_seed, const std::string& solver,
                        const std::string& graph, const std::string& regime,
                        const std::string& variant) {
  // The empty variant contributes nothing, so pre-variant sweeps keep their
  // exact per-cell seeds. Non-empty variants chain a second mix stage (not
  // an XOR into the regime word, which would alias swapped (regime,
  // variant) name pairs).
  const std::uint64_t base =
      mix3(user_seed, fnv1a(solver) ^ fnv1a(graph), fnv1a(regime));
  if (variant.empty()) return base;
  return mix3(base, fnv1a(variant), 0x76617269616E74ULL);  // "variant"
}

SweepResult run_sweep(const Registry& registry, const SweepSpec& spec) {
  RLOCAL_CHECK(!spec.graphs.empty(), "sweep spec needs at least one graph");
  RLOCAL_CHECK(!spec.regimes.empty(), "sweep spec needs at least one regime");
  RLOCAL_CHECK(!spec.seeds.empty(), "sweep spec needs at least one seed");

  std::vector<const Solver*> solvers;
  if (spec.solvers.empty()) {
    solvers = registry.solvers();
  } else {
    for (const std::string& name : spec.solvers) {
      solvers.push_back(&registry.at(name));  // throws on unknown names
    }
  }
  RLOCAL_CHECK(!solvers.empty(), "sweep spec resolved to zero solvers");

  // Resolve the variant axis: one implicit ("", spec.params) variant when
  // none are given; otherwise overlay each variant's params on the spec's.
  static const ParamVariant kImplicitVariant{};
  std::vector<const ParamVariant*> variants;
  std::vector<ParamMap> variant_params;
  if (spec.variants.empty()) {
    variants.push_back(&kImplicitVariant);
    variant_params.push_back(spec.params);
  } else {
    for (const ParamVariant& variant : spec.variants) {
      for (const ParamVariant* seen : variants) {
        RLOCAL_CHECK(seen->name != variant.name,
                     "duplicate sweep variant '" + variant.name + "'");
      }
      variants.push_back(&variant);
      ParamMap merged = spec.params;
      for (const auto& [key, value] : variant.params) merged[key] = value;
      variant_params.push_back(std::move(merged));
    }
  }

  std::vector<Cell> cells;
  int cells_skipped = 0;
  for (const Solver* solver : solvers) {
    for (const ZooEntry& entry : spec.graphs) {
      for (const Regime& regime : spec.regimes) {
        const bool supported = solver->supports(regime);
        if (!supported) {
          // Same unit as cells_run: one per grid cell incl. the variant and
          // seed axes.
          cells_skipped += static_cast<int>(variants.size()) *
                           static_cast<int>(spec.seeds.size());
          if (!spec.keep_unsupported) continue;
        }
        for (std::size_t v = 0; v < variants.size(); ++v) {
          for (const std::uint64_t seed : spec.seeds) {
            cells.push_back({solver, &entry, &regime, variants[v],
                             &variant_params[v], seed, !supported});
          }
        }
      }
    }
  }

  SweepResult result;
  result.cells_skipped = cells_skipped;
  result.records.resize(cells.size());

  const auto start = std::chrono::steady_clock::now();
  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, std::max<std::size_t>(cells.size(), 1));

  std::atomic<std::size_t> cursor{0};
  const auto worker = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= cells.size()) return;
      const Cell& cell = cells[i];
      if (cell.skipped) {
        RunRecord& record = result.records[i];
        record.solver = cell.solver->name();
        record.problem = cell.solver->problem();
        record.graph = cell.graph->name;
        record.regime = cell.regime->name();
        record.variant = cell.variant->name;
        record.seed = cell.user_seed;
        record.skipped = true;
        continue;
      }
      const std::uint64_t master =
          cell_seed(cell.user_seed, cell.solver->name(), cell.graph->name,
                    cell.regime->name(), cell.variant->name);
      RunRecord record =
          registry.run_cell(*cell.solver, cell.graph->graph, cell.graph->name,
                            *cell.regime, master, *cell.params);
      record.variant = cell.variant->name;
      record.seed = cell.user_seed;  // report the user's seed, not the mix
      result.records[i] = std::move(record);
    }
  };

  if (threads <= 1) {
    worker();
    result.threads_used = 1;
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    result.threads_used = threads;
  }

  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  for (const RunRecord& record : result.records) {
    if (record.skipped) continue;
    ++result.cells_run;
    if (!record.error.empty() || !record.checker_passed) {
      ++result.cells_failed;
    }
  }
  return result;
}

SweepResult run_sweep(const SweepSpec& spec) {
  return run_sweep(Registry::global(), spec);
}

}  // namespace rlocal::lab
