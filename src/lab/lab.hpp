// Umbrella header for the experiment lab: solver registry, sweep runner,
// emitters.
//
//   #include "lab/lab.hpp"
//
//   rlocal::lab::SweepSpec spec;
//   spec.graphs = rlocal::make_zoo(256, /*seed=*/1);
//   spec.regimes = {rlocal::Regime::full(), rlocal::Regime::kwise(64)};
//   spec.seeds = {1, 2, 3, 4};
//   auto result = rlocal::lab::run_sweep(spec);   // all registered solvers
//   rlocal::lab::summary_table(result).print(std::cout);
#pragma once

#include "lab/emit.hpp"
#include "lab/record.hpp"
#include "lab/registry.hpp"
#include "lab/solver.hpp"
#include "lab/sweep.hpp"
