// Shared pieces of the built-in solver files (solvers_builtin.cpp wraps the
// pre-lab entry points, solvers_pipelines.cpp the theorem pipelines): the
// canonical supported-regime lists and the decomposition record filler.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "decomp/decomposition.hpp"
#include "lab/record.hpp"
#include "lab/solver.hpp"
#include "lab/sweep.hpp"
#include "obs/obs.hpp"
#include "rnd/regime.hpp"
#include "support/math.hpp"

namespace rlocal::lab {

/// Runs an independent output checker under the kChecker phase timer and a
/// "checker" span, so validation cost is attributed separately from the
/// algorithm inside a cell's solver time (rlocal.profile/2). Checkers are
/// centralized full-graph scans; their invocation sites wrap the whole
/// check expression:
///
///   record.checker_passed =
///       timed_checker([&] { return is_maximal_independent_set(g, mis); });
template <typename Fn>
inline auto timed_checker(Fn&& fn) {
  obs::PhaseTimer timer(obs::Phase::kChecker);
  obs::ObsSpan span("lab", "checker");
  return fn();
}

/// Cell-scoped NodeRandomness with the cell's deadline token armed as a
/// draw-level checkpoint: every randomized algorithm's inner loop passes
/// through a draw, so a long-running cell expires at its next draw (within
/// NodeRandomness::kCheckpointInterval calls) instead of only at solver
/// stage boundaries. The caller must keep `ctx` alive for the generator's
/// lifetime (Solver::run's parameter always is).
inline NodeRandomness cell_randomness(const Regime& regime,
                                      std::uint64_t seed,
                                      const RunContext& ctx) {
  NodeRandomness rnd(regime, seed);
  if (ctx.has_deadline()) {
    rnd.set_checkpoint([&ctx] { ctx.check_deadline(); });
  }
  return rnd;
}

/// Every regime the paper treats as a legitimate (if scarce) randomness
/// source; the adversarial constants are excluded (forced via run_cell).
inline const std::vector<RegimeKind> kScarceRegimes = {
    RegimeKind::kFull, RegimeKind::kKWise, RegimeKind::kSharedKWise,
    RegimeKind::kSharedEpsBias, RegimeKind::kPooled};

/// Scarce regimes minus eps-bias, for constructions whose seeds the AGHP
/// expansion is statistically too short to drive (Theorem 3.6 and friends).
inline const std::vector<RegimeKind> kScarceNoEpsBias = {
    RegimeKind::kFull, RegimeKind::kKWise, RegimeKind::kSharedKWise,
    RegimeKind::kPooled};

inline const std::vector<RegimeKind> kAllRegimes = {
    RegimeKind::kFull,           RegimeKind::kKWise,
    RegimeKind::kSharedKWise,    RegimeKind::kSharedEpsBias,
    RegimeKind::kPooled,         RegimeKind::kAllZeros,
    RegimeKind::kAllOnes};

/// Analytic message charge for reference-executed CONGEST solvers whose
/// protocols do not expose exact per-send counts: every charged round, each
/// edge may carry one message in each direction -- the model's worst case,
/// deterministic in the spec, so compare_sweep.py's message gate covers
/// cells the engine never simulates. Solvers with cheap exact counts (Luby
/// announce/JOIN sends, EN top-two broadcasts, coloring proposals) charge
/// those instead. `bits_per_message <= 0` uses the engine's default CONGEST
/// cap of 32 ceil(log2 n) bits.
inline void charge_congest_worst_case(RunRecord& record, const Graph& g,
                                      std::int64_t rounds,
                                      int bits_per_message = 0) {
  if (rounds < 0) return;
  const int bits =
      bits_per_message > 0
          ? bits_per_message
          : 32 * log2n(static_cast<std::uint64_t>(g.num_nodes()));
  const std::int64_t messages = 2 * g.num_edges() * rounds;
  record.cost.charge_messages(messages, messages * bits);
}

/// Fills the outcome/observable fields shared by every decomposition-shaped
/// solver: runs the independent checker when the decomposition is total,
/// stamps colors/diameter/congestion, and parks the artifact.
inline void fill_decomposition_fields(const Graph& g,
                                      Decomposition decomposition,
                                      bool all_clustered, RunRecord& record) {
  record.success = all_clustered;
  if (all_clustered) {
    const ValidationReport report =
        timed_checker([&] { return validate_decomposition(g, decomposition); });
    record.checker_passed = report.valid;
    if (!report.valid) record.error = "checker: " + report.error;
    record.colors = report.colors_used;
    record.diameter = report.max_tree_diameter;
    record.metrics["max_congestion"] = report.max_congestion;
    record.metrics["strong_diameter"] = report.strong_diameter ? 1.0 : 0.0;
  }
  record.objective = record.colors;
  record.artifact = std::move(decomposition);
}

/// Registers the theorem-pipeline solvers (beacon/one-bit decompositions,
/// shattering, the derandomization toolkit); called by
/// Registry::with_builtins after the pre-lab wrappers.
class Registry;
void register_pipeline_solvers(Registry& registry);

/// One sweep variant per named beacon placement strategy
/// (decomp/beacons.hpp registry: deterministic, adversarial_far, random,
/// adversarial_clustered), each carrying its numeric `placement` id plus
/// `extra` overlay params (e.g. the h / h_prime of a stress matrix) -- the
/// "placement as a first-class axis" helper for the Lemma 3.2/3.3
/// pipelines. Variant names are the strategy names, optionally prefixed.
std::vector<ParamVariant> beacon_placement_variants(
    const ParamMap& extra = {}, const std::string& name_prefix = "");

}  // namespace rlocal::lab
