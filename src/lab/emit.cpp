#include "lab/emit.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "support/json.hpp"

namespace rlocal::lab {

void emit_json(const SweepResult& result, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  // /2 adds summary.cells_resumed and the per-record "resumed" marker;
  // readers of /1 artifacts keep working (bench/compare_sweep.py accepts
  // both).
  w.field("schema", "rlocal.sweep/2");
  w.key("summary");
  w.begin_object();
  w.field("cells_run", result.cells_run);
  w.field("cells_skipped", result.cells_skipped);
  w.field("cells_resumed", result.cells_resumed);
  w.field("cells_failed", result.cells_failed);
  w.field("threads_used", result.threads_used);
  w.field("wall_ms", result.wall_ms);
  w.end_object();
  w.key("records");
  w.begin_array();
  for (const RunRecord& r : result.records) {
    w.begin_object();
    w.field("solver", r.solver);
    w.field("problem", r.problem);
    w.field("graph", r.graph);
    // Regime names are emitted verbatim (escaped by JsonWriter); every
    // RegimeKind -- including pooled -- round-trips as an opaque string key.
    w.field("regime", r.regime);
    if (!r.variant.empty()) w.field("variant", r.variant);
    w.field("seed", r.seed);
    if (r.skipped) {
      w.field("skipped", true);
      w.end_object();
      continue;
    }
    // Restored-from-store cells carry their original run's observables and
    // wall time; the marker lets downstream aggregation (the CI regression
    // gate) exclude them from per-process timing totals.
    if (r.resumed) w.field("resumed", true);
    w.field("success", r.success);
    w.field("checker_passed", r.checker_passed);
    if (!r.error.empty()) w.field("error", r.error);
    if (r.colors >= 0) w.field("colors", r.colors);
    if (r.rounds >= 0) w.field("rounds", r.rounds);
    if (r.iterations >= 0) w.field("iterations", r.iterations);
    if (r.diameter >= 0) w.field("diameter", r.diameter);
    w.field("objective", r.objective);
    w.field("shared_seed_bits", r.shared_seed_bits);
    w.field("derived_bits", r.derived_bits);
    w.field("wall_ms", r.wall_ms);
    if (!r.metrics.empty()) {
      w.key("metrics");
      w.begin_object();
      for (const auto& [key, value] : r.metrics) w.field(key, value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

Table summary_table(const SweepResult& result) {
  struct Agg {
    int trials = 0;
    int ok = 0;
    int successes = 0;
    int completed = 0;  ///< trials that did not throw (ledger is valid)
    int skipped = 0;
    double objective = 0;  ///< summed over successful runs only
    double rounds = 0;
    double wall_ms = 0;
    double derived_bits = 0;
    std::uint64_t shared_seed_bits = 0;
  };
  std::map<std::tuple<std::string, std::string, std::string, std::string>,
           Agg>
      groups;
  bool any_variant = false;
  for (const RunRecord& r : result.records) {
    if (!r.variant.empty()) any_variant = true;
    Agg& agg = groups[{r.solver, r.graph, r.regime, r.variant}];
    if (r.skipped) {
      ++agg.skipped;
      continue;
    }
    ++agg.trials;
    if (r.checker_passed) ++agg.ok;
    agg.wall_ms += r.wall_ms;
    // Errored cells are reset to a default record, so their observables
    // and ledger are meaningless; exclude them from the columns.
    if (!r.error.empty() && !r.success) continue;
    ++agg.completed;
    if (r.success) {
      // Failed cells stamp sentinel observables (objective -1 on
      // decompositions); averaging them in would skew the column.
      ++agg.successes;
      agg.objective += r.objective;
    }
    agg.rounds += r.rounds > 0 ? r.rounds : 0;
    agg.derived_bits += static_cast<double>(r.derived_bits);
    // Max, not last-wins: pooled regimes charge per pool actually touched,
    // so the ledger varies across a group's runs; report the worst case.
    agg.shared_seed_bits = std::max(agg.shared_seed_bits,
                                    r.shared_seed_bits);
  }
  std::vector<std::string> header = {"solver", "graph", "regime"};
  if (any_variant) header.push_back("variant");
  for (const char* column : {"ok/trials", "objective(avg)", "rounds(avg)",
                             "seed bits", "derived bits(avg)", "ms(avg)"}) {
    header.emplace_back(column);
  }
  Table table(header);
  for (const auto& [key, agg] : groups) {
    const auto& [solver, graph, regime, variant] = key;
    std::vector<std::string> row = {solver, graph, regime};
    if (any_variant) row.push_back(variant.empty() ? "-" : variant);
    if (agg.trials == 0) {
      for (const char* cell : {"skipped", "-", "-", "-", "-", "-"}) {
        row.emplace_back(cell);
      }
      table.add_row(row);
      continue;
    }
    const double n = agg.completed;
    row.push_back(fmt(agg.ok) + "/" + fmt(agg.trials));
    row.push_back(agg.successes > 0 ? fmt(agg.objective / agg.successes, 1)
                                    : "-");
    row.push_back(agg.completed > 0 ? fmt(agg.rounds / n, 1) : "-");
    row.push_back(agg.completed > 0 ? fmt(agg.shared_seed_bits) : "-");
    row.push_back(agg.completed > 0 ? fmt(agg.derived_bits / n, 0) : "-");
    row.push_back(fmt(agg.wall_ms / agg.trials, 2));
    table.add_row(row);
  }
  return table;
}

}  // namespace rlocal::lab
