#include "lab/emit.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "store/record_io.hpp"
#include "support/json.hpp"

namespace rlocal::lab {

void emit_json(const SweepResult& result, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  // /3 replaces the top-level per-record "rounds" with the typed "cost"
  // block (model, rounds, engine-metered messages/bits, per-round message
  // histogram) and adds the bandwidth-axis coordinate "bandwidth_bits";
  // bench/compare_sweep.py reads /1 through /3. Record fields are written
  // by the store's canonical writer, so a whole-run artifact diffs cleanly
  // against a store directory of the same sweep.
  w.field("schema", "rlocal.sweep/3");
  w.key("summary");
  w.begin_object();
  w.field("cells_run", result.cells_run);
  w.field("cells_skipped", result.cells_skipped);
  w.field("cells_resumed", result.cells_resumed);
  w.field("cells_failed", result.cells_failed);
  w.field("threads_used", result.threads_used);
  w.field("wall_ms", result.wall_ms);
  w.end_object();
  w.key("records");
  w.begin_array();
  for (const RunRecord& r : result.records) {
    w.begin_object();
    // Regime names are emitted verbatim (escaped by JsonWriter); every
    // RegimeKind -- including pooled -- round-trips as an opaque string key.
    store::write_record_fields(w, r, /*include_wall_ms=*/true,
                               /*include_resumed=*/true);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

Table summary_table(const SweepResult& result) {
  struct Agg {
    int trials = 0;
    int ok = 0;
    int successes = 0;
    int completed = 0;  ///< trials that did not throw (ledger is valid)
    int skipped = 0;
    double objective = 0;  ///< summed over successful runs only
    double rounds = 0;
    double wall_ms = 0;
    double derived_bits = 0;
    std::uint64_t shared_seed_bits = 0;
    // Cost-ledger message/bit totals over the runs that measured them
    // (engine-metered or explicitly charged); `metered` is their count.
    int metered = 0;
    double messages = 0;
    double total_bits = 0;
  };
  std::map<std::tuple<std::string, std::string, std::string, std::string,
                      int>,
           Agg>
      groups;
  bool any_variant = false;
  bool any_bandwidth = false;
  for (const RunRecord& r : result.records) {
    if (!r.variant.empty()) any_variant = true;
    if (r.bandwidth_bits > 0) any_bandwidth = true;
    Agg& agg =
        groups[{r.solver, r.graph, r.regime, r.variant, r.bandwidth_bits}];
    if (r.skipped) {
      ++agg.skipped;
      continue;
    }
    ++agg.trials;
    if (r.checker_passed) ++agg.ok;
    agg.wall_ms += r.wall_ms;
    // Errored cells are reset to a default record, so their observables
    // and ledger are meaningless; exclude them from the columns.
    if (!r.error.empty() && !r.success) continue;
    ++agg.completed;
    if (r.success) {
      // Failed cells stamp sentinel observables (objective -1 on
      // decompositions); averaging them in would skew the column.
      ++agg.successes;
      agg.objective += r.objective;
    }
    agg.rounds += r.rounds > 0 ? r.rounds : 0;
    if (r.cost.populated && r.cost.messages >= 0) {
      ++agg.metered;
      agg.messages += static_cast<double>(r.cost.messages);
      agg.total_bits += static_cast<double>(
          r.cost.total_bits >= 0 ? r.cost.total_bits : 0);
    }
    agg.derived_bits += static_cast<double>(r.derived_bits);
    // Max, not last-wins: pooled regimes charge per pool actually touched,
    // so the ledger varies across a group's runs; report the worst case.
    agg.shared_seed_bits = std::max(agg.shared_seed_bits,
                                    r.shared_seed_bits);
  }
  std::vector<std::string> header = {"solver", "graph", "regime"};
  if (any_variant) header.push_back("variant");
  if (any_bandwidth) header.push_back("bw");
  for (const char* column :
       {"ok/trials", "objective(avg)", "rounds(avg)", "msgs(avg)",
        "bits(avg)", "seed bits", "derived bits(avg)", "ms(avg)"}) {
    header.emplace_back(column);
  }
  Table table(header);
  for (const auto& [key, agg] : groups) {
    const auto& [solver, graph, regime, variant, bandwidth] = key;
    std::vector<std::string> row = {solver, graph, regime};
    if (any_variant) row.push_back(variant.empty() ? "-" : variant);
    if (any_bandwidth) {
      row.push_back(bandwidth > 0 ? fmt(bandwidth) : "-");
    }
    if (agg.trials == 0) {
      for (const char* cell :
           {"skipped", "-", "-", "-", "-", "-", "-", "-"}) {
        row.emplace_back(cell);
      }
      table.add_row(row);
      continue;
    }
    const double n = agg.completed;
    row.push_back(fmt(agg.ok) + "/" + fmt(agg.trials));
    row.push_back(agg.successes > 0 ? fmt(agg.objective / agg.successes, 1)
                                    : "-");
    row.push_back(agg.completed > 0 ? fmt(agg.rounds / n, 1) : "-");
    // "-" means no run in the group measured messages (reference-executed
    // or sequential solvers); engine-backed groups average over metered
    // runs only.
    row.push_back(agg.metered > 0 ? fmt(agg.messages / agg.metered, 0)
                                  : "-");
    row.push_back(agg.metered > 0 ? fmt(agg.total_bits / agg.metered, 0)
                                  : "-");
    row.push_back(agg.completed > 0 ? fmt(agg.shared_seed_bits) : "-");
    row.push_back(agg.completed > 0 ? fmt(agg.derived_bits / n, 0) : "-");
    row.push_back(fmt(agg.wall_ms / agg.trials, 2));
    table.add_row(row);
  }
  return table;
}

}  // namespace rlocal::lab
