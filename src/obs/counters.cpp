#include "obs/counters.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace rlocal::obs {
namespace {

// Heap cells behind unique_ptr so references survive map rehashes; std::map
// keeps a deterministic (sorted) exposition order, which makes /metrics
// output stable across runs and easy to diff.
struct RegistryState {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
};

RegistryState& registry() {
  static RegistryState* state = new RegistryState();  // never destroyed:
  // counters may be touched from detached/exiting threads after static
  // destruction would have run (same leak-on-purpose idiom as TLS rings
  // in obs/trace.cpp).
  return *state;
}

/// Prometheus base name: the registered name with any `{label="..."}`
/// suffix stripped, for the `# TYPE` comment line.
std::string_view base_name(std::string_view full) {
  const std::size_t brace = full.find('{');
  return brace == std::string_view::npos ? full : full.substr(0, brace);
}

}  // namespace

Counter& counter(std::string_view name) {
  RegistryState& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    it = state.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  RegistryState& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end()) {
    it = state.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

std::vector<MetricValue> metrics_snapshot() {
  RegistryState& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<MetricValue> out;
  out.reserve(state.counters.size() + state.gauges.size());
  for (const auto& [name, cell] : state.counters) {
    out.push_back({name, cell->value(), /*is_gauge=*/false});
  }
  for (const auto& [name, cell] : state.gauges) {
    out.push_back({name, cell->value(), /*is_gauge=*/true});
  }
  return out;
}

void write_prometheus(std::ostream& out) {
  // One # TYPE line per base name: labeled variants of the same metric
  // (rlocal_kwise_draws_total{backend="..."}) must share a single TYPE
  // declaration. The snapshot is sorted by full name, so equal base names
  // are adjacent.
  std::string last_base;
  for (const MetricValue& m : metrics_snapshot()) {
    const std::string_view base = base_name(m.name);
    if (base != last_base) {
      out << "# TYPE " << base << (m.is_gauge ? " gauge" : " counter")
          << "\n";
      last_base = std::string(base);
    }
    out << m.name << " " << m.value << "\n";
  }
}

void reset_for_tests() {
  RegistryState& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, cell] : state.counters) {
    cell->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : state.gauges) {
    cell->value_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace rlocal::obs
