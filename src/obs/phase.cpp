#include "obs/phase.hpp"

namespace rlocal::obs::detail {

thread_local std::uint64_t* t_phase_ns = nullptr;

}  // namespace rlocal::obs::detail
