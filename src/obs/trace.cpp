#include "obs/trace.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "support/json.hpp"

namespace rlocal::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// One thread's ring. Single writer (the owning thread), many cold readers.
/// `written` is the monotonic count of events ever emitted; the live window
/// is [max(0, written - capacity), written) and everything older was
/// overwritten. The writer publishes each slot with a release store of
/// `written`; drain acquires it, so events below the loaded count are fully
/// written (a concurrently-written slot can still be overtaken by wraparound
/// -- drains are documented as quiescent-ring operations).
struct ThreadRing {
  ThreadRing(int tid_in, std::size_t capacity)
      : tid(tid_in), slots(capacity) {}
  const int tid;
  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> written{0};
};

struct TracerState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;  // current session only
  std::size_t ring_events = 0;
  // steady_clock origin of the session, as raw nanoseconds so the emit path
  // can read it without the mutex.
  std::atomic<std::int64_t> epoch_ns{0};
};

// Leaked on purpose: worker threads may emit (or run TLS destructors)
// during process teardown, after function-local statics would have been
// destroyed.
TracerState& state() {
  static TracerState* s = new TracerState();
  return *s;
}

// Session epoch. A thread whose cached ring belongs to an older session
// re-registers; bumped by every enable().
std::atomic<std::uint64_t> g_session{0};

thread_local ThreadRing* t_ring = nullptr;
thread_local std::uint64_t t_session = 0;
// The TLS shared_ptr keeps the ring alive if the registry is cleared by a
// later enable() while this thread still holds a stale pointer.
thread_local std::shared_ptr<ThreadRing> t_ring_owner;

/// Slow path of emit(): (re-)registers this thread's ring for the current
/// session. Returns nullptr if the tracer raced to disabled.
ThreadRing* register_thread() {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!Tracer::enabled()) return nullptr;
  auto ring = std::make_shared<ThreadRing>(static_cast<int>(s.rings.size()),
                                           s.ring_events);
  s.rings.push_back(ring);
  t_ring_owner = ring;
  t_ring = ring.get();
  t_session = g_session.load(std::memory_order_relaxed);
  return t_ring;
}

void emit(char phase, const char* cat, std::string_view name,
          std::uint64_t value) {
  if (!Tracer::enabled()) return;
  ThreadRing* ring = t_ring;
  if (ring == nullptr ||
      t_session != g_session.load(std::memory_order_relaxed)) {
    ring = register_thread();
    if (ring == nullptr) return;
  }
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  const std::int64_t origin =
      state().epoch_ns.load(std::memory_order_relaxed);
  const std::uint64_t ts =
      now_ns > origin ? static_cast<std::uint64_t>(now_ns - origin) : 0;
  const std::uint64_t w = ring->written.load(std::memory_order_relaxed);
  TraceEvent& e = ring->slots[w % ring->slots.size()];
  e.ts_ns = ts;
  e.value = value;
  e.cat = cat;
  e.phase = phase;
  const std::size_t n =
      name.size() < sizeof(e.name) - 1 ? name.size() : sizeof(e.name) - 1;
  name.copy(e.name, n);
  e.name[n] = '\0';
  ring->written.store(w + 1, std::memory_order_release);
}

}  // namespace

std::atomic<bool> Tracer::g_enabled{false};

void Tracer::enable(std::size_t ring_kb) {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (ring_kb < 1) ring_kb = 1;
  s.ring_events = ring_kb * 1024 / sizeof(TraceEvent);
  s.rings.clear();
  s.epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now().time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  g_session.fetch_add(1, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { g_enabled.store(false, std::memory_order_relaxed); }

void Tracer::begin(const char* cat, std::string_view name) {
  emit('B', cat, name, 0);
}
void Tracer::end(const char* cat, std::string_view name) {
  emit('E', cat, name, 0);
}
void Tracer::instant(const char* cat, std::string_view name,
                     std::uint64_t value) {
  emit('i', cat, name, value);
}
void Tracer::counter(const char* cat, std::string_view name,
                     std::uint64_t value) {
  emit('C', cat, name, value);
}

std::vector<Tracer::ThreadStream> Tracer::drain() {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<ThreadStream> out;
  out.reserve(s.rings.size());
  for (const auto& ring : s.rings) {
    const std::uint64_t written =
        ring->written.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    ThreadStream stream;
    stream.tid = ring->tid;
    stream.dropped = written > cap ? written - cap : 0;
    const std::uint64_t first = written > cap ? written - cap : 0;
    stream.events.reserve(static_cast<std::size_t>(written - first));
    for (std::uint64_t i = first; i < written; ++i) {
      stream.events.push_back(ring->slots[i % cap]);
    }
    out.push_back(std::move(stream));
  }
  return out;
}

std::uint64_t Tracer::dropped_events() {
  std::uint64_t total = 0;
  for (const ThreadStream& stream : drain()) total += stream.dropped;
  return total;
}

void Tracer::write_chrome_trace(std::ostream& out) {
  const std::vector<ThreadStream> streams = drain();
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  auto event_common = [&](char phase, int tid, double ts_us,
                          const char* cat, std::string_view name) {
    w.begin_object();
    w.key("ph");
    w.value(std::string_view(&phase, 1));
    w.field("pid", 1);
    w.field("tid", tid);
    w.field("ts", ts_us);
    w.field("cat", cat != nullptr ? cat : "obs");
    w.field("name", name);
  };

  for (const ThreadStream& stream : streams) {
    // Thread-name metadata row so Perfetto labels tracks "ring N".
    w.begin_object();
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", stream.tid);
    w.field("name", "thread_name");
    w.key("args");
    w.begin_object();
    w.field("name", "ring " + std::to_string(stream.tid));
    w.end_object();
    w.end_object();

    // Wraparound repair: an 'E' whose 'B' was overwritten would drive the
    // viewer's span stack negative -- drop it. Conversely a 'B' whose 'E'
    // never arrived (ring stopped mid-span, or disable() raced) is closed
    // at the stream's final timestamp below, under its own name so the
    // B/E pairing stays exact (bench/validate_trace.py checks it).
    std::vector<std::pair<const char*, std::string>> open_spans;
    std::uint64_t last_ts = 0;
    for (const TraceEvent& e : stream.events) {
      last_ts = e.ts_ns > last_ts ? e.ts_ns : last_ts;
      const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      const std::string_view name(e.name);
      switch (e.phase) {
        case 'B':
          open_spans.emplace_back(e.cat, std::string(name));
          event_common('B', stream.tid, ts_us, e.cat, name);
          w.end_object();
          break;
        case 'E':
          if (open_spans.empty()) break;  // orphaned by wraparound
          open_spans.pop_back();
          event_common('E', stream.tid, ts_us, e.cat, name);
          w.end_object();
          break;
        case 'i':
          event_common('i', stream.tid, ts_us, e.cat, name);
          w.field("s", "t");  // thread-scoped instant
          w.key("args");
          w.begin_object();
          w.field("value", e.value);
          w.end_object();
          w.end_object();
          break;
        case 'C':
          event_common('C', stream.tid, ts_us, e.cat, name);
          w.key("args");
          w.begin_object();
          w.field("value", e.value);
          w.end_object();
          w.end_object();
          break;
        default:
          break;  // torn slot from a non-quiescent drain
      }
    }
    const double close_us = static_cast<double>(last_ts) / 1000.0;
    while (!open_spans.empty()) {
      const auto& [cat, name] = open_spans.back();
      event_common('E', stream.tid, close_us, cat, name);
      w.end_object();
      open_spans.pop_back();
    }
  }

  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace rlocal::obs
