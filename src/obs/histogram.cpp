#include "obs/histogram.hpp"

#include <chrono>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace rlocal::obs {
namespace {

// Same leak-on-purpose registry idiom as obs/counters.cpp: heap cells
// behind unique_ptr (a Histogram holds 252 atomics and is immovable),
// std::map for deterministic exposition order, never destroyed.
struct HistogramRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> cells;
};

HistogramRegistry& registry() {
  static HistogramRegistry* state = new HistogramRegistry();
  return *state;
}

/// Splits a registered name into (base, label body without braces); the
/// label body is empty for unlabeled names. `le` has to be spliced into the
/// existing label set, so the exposition needs the parts, not the whole.
std::pair<std::string_view, std::string_view> split_name(
    std::string_view full) {
  const std::size_t brace = full.find('{');
  if (brace == std::string_view::npos) return {full, {}};
  std::string_view labels = full.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {full.substr(0, brace), labels};
}

/// Nanoseconds rendered as seconds (le boundaries, _sum). Nine
/// significant digits distinguish adjacent buckets at every octave (they
/// differ by >= 20%) while staying readable.
std::string seconds_text(std::uint64_t upper_ns) {
  std::ostringstream out;
  out << std::setprecision(9) << static_cast<double>(upper_ns) / 1e9;
  return out.str();
}

}  // namespace

std::atomic<bool> Histogram::g_enabled{false};

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.buckets.emplace_back(bucket_upper_ns(i), n);
    snap.count += n;
  }
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t LatencyTimer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Histogram& histogram(std::string_view name) {
  HistogramRegistry& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.cells.find(name);
  if (it == state.cells.end()) {
    it = state.cells.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<HistogramValue> histograms_snapshot() {
  HistogramRegistry& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<HistogramValue> out;
  out.reserve(state.cells.size());
  for (const auto& [name, cell] : state.cells) {
    out.push_back({name, cell->snapshot()});
  }
  return out;
}

void write_prometheus_histograms(std::ostream& out) {
  std::string last_base;
  for (const HistogramValue& h : histograms_snapshot()) {
    const auto [base, labels] = split_name(h.name);
    if (base != last_base) {
      out << "# TYPE " << base << " histogram\n";
      last_base = std::string(base);
    }
    // Cumulative _bucket lines over the non-empty buckets only; eliding
    // empty ones keeps every emitted count correct (each line is "all
    // observations <= le", and nothing lives between a bucket's upper
    // bound and the next non-empty bucket's).
    const std::string prefix =
        labels.empty() ? "" : std::string(labels) + ",";
    std::uint64_t cumulative = 0;
    for (const auto& [upper_ns, count] : h.snap.buckets) {
      cumulative += count;
      out << base << "_bucket{" << prefix << "le=\"" << seconds_text(upper_ns)
          << "\"} " << cumulative << "\n";
    }
    out << base << "_bucket{" << prefix << "le=\"+Inf\"} " << h.snap.count
        << "\n";
    const std::string suffix =
        labels.empty() ? "" : "{" + std::string(labels) + "}";
    out << base << "_sum" << suffix << " " << seconds_text(h.snap.sum_ns)
        << "\n";
    out << base << "_count" << suffix << " " << h.snap.count << "\n";
  }
}

void reset_histograms_for_tests() {
  HistogramRegistry& state = registry();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, cell] : state.cells) {
    for (auto& bucket : cell->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell->sum_ns_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace rlocal::obs
