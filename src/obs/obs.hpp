// Umbrella header for the observability plane: spans + Chrome-trace export
// (obs/trace.hpp), named counters/gauges + Prometheus exposition
// (obs/counters.hpp), latency histograms + LatencyTimer (obs/histogram.hpp),
// and per-cell phase attribution (obs/phase.hpp). Instrumented subsystems
// include this one header; docs/observability.md is the user-facing guide.
#pragma once

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
