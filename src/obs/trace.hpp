// Runtime-switchable tracing into per-thread fixed-size ring buffers, drained
// on demand to Chrome trace-event JSON (chrome://tracing / Perfetto). The
// "spans" half of the observability plane; obs/counters.hpp is the other.
//
// Overhead contract (pinned by BM_TraceOverhead and the zero-allocation test
// in tests/test_obs.cpp):
//   - DISABLED (the default): every emit primitive is one relaxed atomic
//     load plus a predictable branch. No clock read, no TLS ring lookup,
//     no allocation. Instrumentation can therefore live inside the engine
//     round loop and the draw funnel without a build-time switch.
//   - ENABLED: an emit is a TLS lookup, one steady_clock read, a 64-byte
//     struct copy into a preallocated ring slot, and a release store of the
//     write index. Still allocation-free after the ring is registered; a
//     full ring overwrites the oldest events (counted, never blocking).
//
// Event model: Chrome's phase letters. 'B'/'E' bracket a span (ObsSpan emits
// the pair via RAII), 'i' is an instant (claim steals, fsyncs), 'C' is a
// counter sample. Names are truncated into a fixed inline buffer -- events
// never own heap memory. Categories must be string literals (the pointer is
// stored, not the bytes).
//
// Threading: each thread writes only its own ring (registered on first emit
// after enable(); re-registered when a new session bumps the epoch). Rings
// are owned by shared_ptr from both the thread and a global registry, so a
// drain after worker threads have exited still sees their events. drain()
// and write_chrome_trace() are cold-path, mutex-protected, and intended for
// quiescent rings (after the sweep joins its workers); draining mid-write
// is memory-safe but may observe a torn oldest event, which export drops.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace rlocal::obs {

/// One ring slot. Fixed 64-byte layout: 8B timestamp, 8B payload, 8B
/// category pointer, 1B phase, 39B inline NUL-terminated name (longer names
/// truncate -- fine for "cell mis/pooled(...)"-shaped labels).
struct TraceEvent {
  std::uint64_t ts_ns = 0;     ///< nanoseconds since Tracer::enable()
  std::uint64_t value = 0;     ///< payload for 'C' (sample) and 'i' events
  const char* cat = nullptr;   ///< static string literal, e.g. "engine"
  char phase = 0;              ///< 'B', 'E', 'i', or 'C'
  char name[39] = {};
};
static_assert(sizeof(TraceEvent) == 64, "ring slots are sized to 64 bytes");

class Tracer {
 public:
  /// The one hot-path check. Relaxed: enable/disable are coarse session
  /// boundaries, not synchronization points.
  static bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Starts a tracing session: clears previously drained rings, bumps the
  /// session epoch (stale thread-local ring pointers re-register), resets
  /// the timestamp origin, and sets the per-thread ring capacity to
  /// `ring_kb` KiB (16 events/KiB; clamped to at least 1 KiB).
  static void enable(std::size_t ring_kb = 4096);

  /// Stops recording. Buffered events stay drainable.
  static void disable();

  // Emit primitives. All are no-ops (one load + branch) when disabled.
  static void begin(const char* cat, std::string_view name);
  static void end(const char* cat, std::string_view name);
  static void instant(const char* cat, std::string_view name,
                      std::uint64_t value = 0);
  static void counter(const char* cat, std::string_view name,
                      std::uint64_t value);

  /// Everything one thread's ring still holds, oldest first, plus how many
  /// older events the ring overwrote.
  struct ThreadStream {
    int tid = 0;  ///< small integer id, assigned in registration order
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };

  /// Snapshots every registered ring (current session only). Non-consuming:
  /// a later drain or export sees the same events.
  static std::vector<ThreadStream> drain();

  /// Chrome trace-event JSON: {"traceEvents":[...]}. Per-thread streams are
  /// repaired for ring wraparound so every exported 'B' has its 'E' --
  /// orphaned 'E's (begin overwritten) are dropped and spans still open at
  /// the end of a stream are closed at its last timestamp. The output
  /// round-trips through support/json's strict parser.
  static void write_chrome_trace(std::ostream& out);

  /// Total events overwritten across all rings in this session.
  static std::uint64_t dropped_events();

 private:
  friend class ObsSpan;
  static std::atomic<bool> g_enabled;
};

/// RAII span: emits 'B' at construction and the matching 'E' at destruction.
/// Constructing with a null category is an explicit no-op form, used to gate
/// spans on runtime conditions (e.g. batch draws only above a size floor):
///
///   ObsSpan span(count >= 16 ? "rnd" : nullptr, "draw.bits");
///
/// The enabled check happens once, at construction: if tracing flips off
/// mid-span the 'E' is still emitted into the ring (harmless; export
/// balances), and if it flips on mid-span no unmatched 'E' is recorded.
class ObsSpan {
 public:
  ObsSpan(const char* cat, std::string_view name) {
    if (cat == nullptr || !Tracer::enabled()) return;
    cat_ = cat;
    const std::size_t n =
        name.size() < sizeof(name_) - 1 ? name.size() : sizeof(name_) - 1;
    for (std::size_t i = 0; i < n; ++i) name_[i] = name[i];
    name_[n] = '\0';
    len_ = static_cast<unsigned char>(n);
    Tracer::begin(cat_, std::string_view(name_, len_));
  }
  ~ObsSpan() {
    if (cat_ != nullptr) Tracer::end(cat_, std::string_view(name_, len_));
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* cat_ = nullptr;
  unsigned char len_ = 0;
  char name_[39];
};

}  // namespace rlocal::obs
