// Process-wide registry of lock-free latency histograms -- the
// "distributions" third of the observability plane (docs/observability.md;
// counters/gauges are obs/counters.hpp, spans are obs/trace.hpp).
//
// Bucketing is log-linear (base-2 octaves with 4 linear sub-buckets each),
// the classic HDR-style compromise: ~19% worst-case relative error per
// bucket, a fixed 252-slot array covering every uint64 nanosecond value,
// and bucket selection that is two shifts and a mask -- no search, no
// floating point. Values 0..3 ns get exact singleton buckets; from 4 ns up,
// octave o (values [2^o, 2^(o+1))) is split into 4 equal sub-ranges.
//
// Same design rules as the counter registry, in order:
//   1. The hot path (`LatencyTimer`, one per span family call site) is one
//      relaxed atomic load plus a branch when the histogram plane is
//      disabled -- no clock read, no allocation. Enabled, it is two clock
//      reads and three relaxed fetch_adds (bucket, sum, span counter).
//   2. Registered histograms are never invalidated: references from
//      `histogram(name)` stay valid for the rest of the process.
//   3. Snapshot/exposition is the cold path and takes the registry mutex.
//
// Exposition follows the Prometheus histogram convention: for a registered
// name `rlocal_span_latency_seconds{span="solver_run"}` the text form is
// cumulative `..._bucket{span="solver_run",le="..."}` lines (le in seconds,
// +Inf last), then `..._sum` and `..._count`. Empty buckets are elided --
// cumulative counts stay correct without them.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.hpp"

namespace rlocal::obs {

/// Lock-free log-bucketed histogram of nanosecond values. record() is
/// wait-free; snapshot() is exact once writers quiesce (same contract as
/// Counter::value()).
class Histogram {
 public:
  static constexpr int kSubBits = 2;           ///< 4 sub-buckets per octave
  static constexpr std::uint64_t kSub = 1ULL << kSubBits;
  /// Buckets 0..3 hold values 0..3 exactly; octaves 2..63 contribute 4
  /// sub-buckets each: 4 + 62 * 4 = 252 slots, covering all of uint64.
  static constexpr std::size_t kBucketCount = kSub + (64 - kSubBits) * kSub;

  /// Whether the histogram plane records. Like tracing, disabled is the
  /// default and the disabled emit path is one relaxed load + branch.
  static bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }
  static void enable() {
    g_enabled.store(true, std::memory_order_relaxed);
  }
  static void disable() {
    g_enabled.store(false, std::memory_order_relaxed);
  }

  /// Bucket index for a value: identity below kSub, then
  /// (octave, top-2-bits-below-the-msb) packed into a flat index.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int octave = std::bit_width(v) - 1;  // >= kSubBits
    const std::uint64_t sub = (v >> (octave - kSubBits)) & (kSub - 1);
    return static_cast<std::size_t>(octave - kSubBits) * kSub +
           static_cast<std::size_t>(kSub + sub);
  }

  /// Largest value the bucket holds (its inclusive `le` boundary in ns).
  static std::uint64_t bucket_upper_ns(std::size_t index) {
    if (index < kSub) return index;
    const int octave = static_cast<int>(index / kSub) + kSubBits - 1;
    const std::uint64_t sub = index % kSub;
    return (1ULL << octave) + ((sub + 1) << (octave - kSubBits)) - 1;
  }

  /// Records one value. Unconditional: the enabled() gate belongs to the
  /// call site (LatencyTimer checks once, at construction).
  void record(std::uint64_t ns) {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Cold-path copy: non-empty buckets as (upper_ns, count-in-bucket)
  /// pairs in ascending order, plus the totals.
  struct Snapshot {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
  };
  Snapshot snapshot() const;

 private:
  friend void reset_histograms_for_tests();
  static std::atomic<bool> g_enabled;
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Registry lookup; registers the name (full, labels included -- e.g.
/// `rlocal_span_latency_seconds{span="solver_run"}`) on first use. The
/// returned reference is valid for the rest of the process.
Histogram& histogram(std::string_view name);

/// Cold-path snapshot of every registered histogram, sorted by full name.
struct HistogramValue {
  std::string name;  ///< full registered name, labels included
  Histogram::Snapshot snap;
};
std::vector<HistogramValue> histograms_snapshot();

/// Prometheus text exposition of every registered histogram: one
/// `# TYPE <base> histogram` line per base name, then cumulative _bucket
/// lines (le in seconds), _sum (seconds) and _count per series. rlocald
/// appends this to /metrics after the counter/gauge section.
void write_prometheus_histograms(std::ostream& out);

/// Zeroes every registered histogram (cells stay registered). Tests only.
void reset_histograms_for_tests();

/// RAII latency probe for a hot span family: when the histogram plane is
/// enabled, records the enclosing scope's wall time into `hist` and bumps
/// `spans` by one at destruction -- the two move together, so a histogram's
/// `_count` always equals its matching span counter once writers quiesce
/// (the /metrics self-scrape invariant). Disabled, construction is one
/// relaxed load + branch and destruction a predictable branch; no clock
/// read, no allocation either way. Call sites cache the registry refs:
///
///   static obs::Histogram& h =
///       obs::histogram("rlocal_span_latency_seconds{span=\"solver_run\"}");
///   static obs::Counter& c =
///       obs::counter("rlocal_spans_total{span=\"solver_run\"}");
///   obs::LatencyTimer lat(h, c);
class LatencyTimer {
 public:
  LatencyTimer(Histogram& hist, Counter& spans)
      : hist_(Histogram::enabled() ? &hist : nullptr), spans_(&spans) {
    if (hist_ != nullptr) start_ns_ = now_ns();
  }
  /// Runtime-gated form, mirroring ObsSpan's null-category idiom: the draw
  /// funnel passes `count >= kObsBatchFloor` so scalar (one-element) draws
  /// never pay a clock read.
  LatencyTimer(Histogram& hist, Counter& spans, bool active)
      : hist_(active && Histogram::enabled() ? &hist : nullptr),
        spans_(&spans) {
    if (hist_ != nullptr) start_ns_ = now_ns();
  }
  ~LatencyTimer() {
    if (hist_ == nullptr) return;
    const std::uint64_t end = now_ns();
    hist_->record(end > start_ns_ ? end - start_ns_ : 0);
    spans_->add();
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  static std::uint64_t now_ns();
  Histogram* hist_;
  Counter* spans_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace rlocal::obs
