// Process-wide registry of named monotonic counters and gauges -- the
// "metrics" half of the observability plane (docs/observability.md; the
// "tracing" half is obs/trace.hpp).
//
// Design goals, in order:
//   1. Hot-path increments must be a single relaxed fetch_add on a cached
//      reference -- no lock, no lookup, no allocation. Call sites do
//
//        static obs::Counter& c = obs::counter("rlocal_cells_run_total");
//        c.add();
//
//      The function-local static pays the registry lookup once per call
//      site (C++11 magic statics make that thread-safe); afterwards an
//      increment costs the same as cost::Meter's relaxed adds.
//   2. Registered cells are never invalidated: the registry hands out
//      references into heap cells owned by a process-lifetime map, so a
//      cached `Counter&` stays valid forever. reset_for_tests() zeroes
//      values but never removes cells.
//   3. The snapshot/exposition side (rlocald's /metrics, tests) is the cold
//      path and takes the registry mutex.
//
// Metric names follow Prometheus conventions: `rlocal_<noun>_total` for
// monotonic counters, plain nouns for gauges, and an optional trailing
// `{label="value"}` suffix baked into the registered name for per-backend
// breakdowns (e.g. `rlocal_kwise_draws_total{backend="pclmul"}`). The text
// exposition groups such names under one `# TYPE` line for the base name.
// The full name reference lives in docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rlocal::obs {

/// Monotonic counter. add() is wait-free; value() is a relaxed load (exact
/// only after the writers quiesce, which is all the exposition side needs).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void reset_for_tests();
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write or running-max gauge (e.g. arena high-water bytes).
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger; lock-free CAS loop.
  void record_max(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void reset_for_tests();
  std::atomic<std::uint64_t> value_{0};
};

/// Registry lookup; registers the name on first use. The returned reference
/// is valid for the rest of the process.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

/// One row of a cold-path snapshot, sorted by full name (the registry's
/// map order), so exposition output is stable across runs.
struct MetricValue {
  std::string name;  ///< full registered name, labels included
  std::uint64_t value = 0;
  bool is_gauge = false;
};
std::vector<MetricValue> metrics_snapshot();

/// Prometheus text exposition (version 0.0.4) of every registered metric:
/// a `# TYPE` line per base name (labels stripped) followed by the sample
/// lines. rlocald serves this verbatim at /metrics, prefixed with its
/// store-derived samples.
void write_prometheus(std::ostream& out);

/// Zeroes every registered value (cells stay registered and cached
/// references stay valid). Tests only: production counters are monotonic.
void reset_for_tests();

}  // namespace rlocal::obs
