// Per-cell phase-time accounting: where a cell's wall time goes (graph
// build vs solver vs checker vs engine vs draw funnel vs store append).
// Feeds the `rlocal.profile/2` schema (bench_sweep --profile, docs/perf.md)
// and rides along with the tracer (docs/observability.md) -- but unlike the
// tracer it is always on while a cell runs, so the cost must stay trivial:
//
//   - A CellPhaseScope (installed by Registry::run_cell) is two TLS pointer
//     writes plus zeroing a small array.
//   - A PhaseTimer at an instrumented site is one TLS load + branch when no
//     scope is installed (engine runs outside the lab, unit tests), and two
//     steady_clock reads when one is. Sites that fire at per-element rates
//     (scalar draws are one-element batch calls, see rnd/regime.cpp) gate
//     the timer on a batch-size floor so the clock reads stay amortized.
//
// Phases overlap deliberately: kEngine and kDraw time is *inside* kSolver
// time (attribution, not a partition). The profile table documents this.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace rlocal::obs {

enum class Phase {
  kGraphBuild = 0,  ///< lazy graph factory call (lab/sweep.cpp)
  kSolver,          ///< Solver::run total (lab/registry.cpp)
  kChecker,         ///< output validation inside the solver run
  kEngine,          ///< sim::Engine::run round loops
  kDraw,            ///< NodeRandomness batch draws (>= floor elements)
  kStoreAppend,     ///< record frame append + fsync (lab/sweep.cpp)
  kCount,
};

namespace detail {
// Nanosecond accumulators of the innermost installed scope, or nullptr.
extern thread_local std::uint64_t* t_phase_ns;
}  // namespace detail

/// True when a scope is installed on this thread (i.e. PhaseTimer will pay
/// for clock reads).
inline bool phase_active() { return detail::t_phase_ns != nullptr; }

/// Installs a zeroed accumulator array for the current thread; restores the
/// previous one (nesting: a sweep-in-a-test inside a traced bench) on exit.
class CellPhaseScope {
 public:
  CellPhaseScope() : prev_(detail::t_phase_ns) {
    detail::t_phase_ns = ns_.data();
  }
  ~CellPhaseScope() { detail::t_phase_ns = prev_; }
  CellPhaseScope(const CellPhaseScope&) = delete;
  CellPhaseScope& operator=(const CellPhaseScope&) = delete;

  double ms(Phase p) const {
    return static_cast<double>(ns_[static_cast<std::size_t>(p)]) / 1e6;
  }
  /// Direct deposit for call sites that already measured an interval
  /// (graph build / store append wrap non-inline work in sweep.cpp).
  void add_ns(Phase p, std::uint64_t ns) {
    ns_[static_cast<std::size_t>(p)] += ns;
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Phase::kCount)> ns_{};
  std::uint64_t* prev_;
};

/// Accumulates the enclosing block's duration into the installed scope's
/// phase slot. No scope installed => one TLS load and a branch, no clock.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p) : slot_(detail::t_phase_ns) {
    if (slot_ == nullptr) return;
    slot_ += static_cast<std::size_t>(p);
    start_ = std::chrono::steady_clock::now();
  }
  /// Conditional form: `active == false` makes this a guaranteed no-op.
  /// Per-element-rate sites (scalar draws are one-element batches) pass
  /// `count >= floor` so the two clock reads stay amortized over a batch.
  PhaseTimer(Phase p, bool active)
      : slot_(active ? detail::t_phase_ns : nullptr) {
    if (slot_ == nullptr) return;
    slot_ += static_cast<std::size_t>(p);
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (slot_ == nullptr) return;
    *slot_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::uint64_t* slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rlocal::obs
