// ASCII table printer used by the bench binaries to emit the experiment
// tables (the paper-shaped "rows/series").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlocal {

/// Column-aligned ASCII table. Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (default 3 significant-ish).
std::string fmt(double value, int precision = 3);
std::string fmt(std::uint64_t value);
std::string fmt(std::int64_t value);
std::string fmt(int value);
/// Scientific formatting for probabilities (e.g. "1.2e-04").
std::string fmt_sci(double value);

}  // namespace rlocal
