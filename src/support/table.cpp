#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace rlocal {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RLOCAL_CHECK(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RLOCAL_CHECK(cells.size() == headers_.size(),
               "row arity does not match headers");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    out << "\n";
  };
  auto print_rule = [&] {
    out << "+";
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    out << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(std::int64_t value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }

std::string fmt_sci(double value) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(1) << value;
  return out.str();
}

}  // namespace rlocal
