#include "support/assert.hpp"

#include <sstream>

namespace rlocal::detail {

namespace {
std::string format_location(const char* kind, const char* expr,
                            const std::string& msg,
                            const std::source_location& loc) {
  std::ostringstream out;
  out << kind << " failed: (" << expr << ") at " << loc.file_name() << ":"
      << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) {
    out << " -- " << msg;
  }
  return out.str();
}
}  // namespace

void check_failed(const char* expr, const std::string& msg,
                  std::source_location loc) {
  throw InvariantError(format_location("RLOCAL_CHECK", expr, msg, loc));
}

void assert_failed(const char* expr, std::source_location loc) {
  throw InternalError(format_location("RLOCAL_ASSERT", expr, "", loc));
}

}  // namespace rlocal::detail
