// Assertion and error-handling primitives for the rlocal library.
//
// Two families:
//  * RLOCAL_CHECK(cond, msg)  -- always-on validation of caller-supplied data;
//    throws rlocal::InvariantError (the library's failure-to-meet-contract
//    exception). Use for preconditions on public API boundaries.
//  * RLOCAL_ASSERT(cond)      -- internal invariant; also always-on (the
//    library is correctness-first, simulation-scale), throws InternalError.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace rlocal {

/// Thrown when a caller violates a documented precondition.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant of the library fails (a library bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const std::string& msg,
                               std::source_location loc);
[[noreturn]] void assert_failed(const char* expr, std::source_location loc);
}  // namespace detail

}  // namespace rlocal

#define RLOCAL_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::rlocal::detail::check_failed(#cond, (msg),                    \
                                     std::source_location::current()); \
    }                                                                 \
  } while (false)

#define RLOCAL_ASSERT(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rlocal::detail::assert_failed(#cond,                           \
                                      std::source_location::current()); \
    }                                                                  \
  } while (false)
