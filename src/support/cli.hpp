// Tiny command-line flag parser for bench/example binaries.
// Supports `--name=value`, `--name value`, and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace rlocal {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  /// True when --quick was passed; benches shrink their sweeps accordingly.
  bool quick() const { return has("quick"); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace rlocal
