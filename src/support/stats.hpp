// Summary statistics and binomial confidence intervals for the experiment
// harness. Success probabilities in the paper are of the form 1 - n^{-c};
// benches estimate them over trials and report Wilson intervals.
#pragma once

#include <cstddef>
#include <vector>

namespace rlocal {

/// Streaming accumulator for scalar samples.
class Summary {
 public:
  void add(double value);

  std::size_t count() const { return values_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Quantile in [0,1] via nearest-rank on the sorted samples.
  double quantile(double q) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Wilson score interval for a Bernoulli parameter.
struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
};

/// 1-alpha Wilson interval given `successes` out of `trials` (z ~ 1.96 for
/// alpha = 0.05; we use z = 2.0 which is slightly conservative).
WilsonInterval wilson_interval(std::size_t successes, std::size_t trials);

/// Upper confidence bound on a failure probability when zero failures were
/// observed over `trials` runs (the "rule of three"-style bound 3/n).
double zero_failure_upper_bound(std::size_t trials);

}  // namespace rlocal
