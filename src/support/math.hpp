// Small integer-math helpers used throughout the library.
#pragma once

#include <bit>
#include <cstdint>

#include "support/assert.hpp"

namespace rlocal {

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
constexpr int ceil_log2(std::uint64_t x) {
  RLOCAL_CHECK(x >= 1, "ceil_log2 requires x >= 1");
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  RLOCAL_CHECK(x >= 1, "floor_log2 requires x >= 1");
  return 63 - std::countl_zero(x);
}

/// ceil(a / b) for b >= 1.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  RLOCAL_CHECK(b >= 1, "ceil_div requires b >= 1");
  return (a + b - 1) / b;
}

/// Integer power with 64-bit result; caller is responsible for non-overflow.
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t result = 1;
  while (exp > 0) {
    if (exp & 1U) result *= base;
    base *= base;
    exp >>= 1U;
  }
  return result;
}

/// log2(n) rounded up, but at least 1 -- the ubiquitous "log n" of the paper,
/// guarded so that tiny graphs (n <= 2) still get a positive parameter.
constexpr int log2n(std::uint64_t n) {
  const int l = ceil_log2(n < 2 ? 2 : n);
  return l < 1 ? 1 : l;
}

}  // namespace rlocal
