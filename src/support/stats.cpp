#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace rlocal {

void Summary::add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  RLOCAL_CHECK(!values_.empty(), "mean of empty Summary");
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Summary::stddev() const {
  RLOCAL_CHECK(!values_.empty(), "stddev of empty Summary");
  if (values_.size() == 1) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::min() const {
  RLOCAL_CHECK(!values_.empty(), "min of empty Summary");
  ensure_sorted();
  return values_.front();
}

double Summary::max() const {
  RLOCAL_CHECK(!values_.empty(), "max of empty Summary");
  ensure_sorted();
  return values_.back();
}

double Summary::quantile(double q) const {
  RLOCAL_CHECK(!values_.empty(), "quantile of empty Summary");
  RLOCAL_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values_.size() - 1) + 0.5);
  return values_[std::min(rank, values_.size() - 1)];
}

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials) {
  RLOCAL_CHECK(trials > 0, "wilson_interval requires trials > 0");
  RLOCAL_CHECK(successes <= trials, "successes exceed trials");
  const double z = 2.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double spread = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  WilsonInterval w;
  w.low = std::max(0.0, (center - spread) / denom);
  w.high = std::min(1.0, (center + spread) / denom);
  return w;
}

double zero_failure_upper_bound(std::size_t trials) {
  RLOCAL_CHECK(trials > 0, "zero_failure_upper_bound requires trials > 0");
  return 3.0 / static_cast<double>(trials);
}

}  // namespace rlocal
