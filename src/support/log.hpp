// Minimal leveled logging to stderr. Thread-safe: run_sweep worker threads
// and claim processes log concurrently, so each message is assembled
// privately (LogLine's own stream) and written as a single formatted line
// under a mutex -- concurrent lines interleave whole, never mid-line.
#pragma once

#include <sstream>
#include <string>

namespace rlocal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Resolution order
/// mirrors rnd/dispatch's backend choice: an explicit set_log_level() call
/// wins; otherwise the RLOCAL_LOG_LEVEL env var (debug|info|warn|error,
/// read once at first use; an unknown spelling warns and is ignored);
/// otherwise the default kWarn, so library users are not spammed (benches
/// raise it to kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace rlocal

#define RLOCAL_LOG(level) ::rlocal::detail::LogLine(level)
#define RLOCAL_DEBUG() RLOCAL_LOG(::rlocal::LogLevel::kDebug)
#define RLOCAL_INFO() RLOCAL_LOG(::rlocal::LogLevel::kInfo)
#define RLOCAL_WARN() RLOCAL_LOG(::rlocal::LogLevel::kWarn)
#define RLOCAL_ERROR() RLOCAL_LOG(::rlocal::LogLevel::kError)
