#include "support/cli.hpp"

#include <cstdlib>

#include "support/assert.hpp"

namespace rlocal {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return it->second;
}

}  // namespace rlocal
