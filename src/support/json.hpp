// Minimal streaming JSON writer + recursive-descent parser for experiment
// artifacts (no external dependencies, mirroring the zero-dependency policy
// of rnd/prng.hpp).
//
// The writer tracks nesting and emits commas/indentation itself, so emitters
// can be written as straight-line code:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("schema"); w.value("rlocal.sweep/1");
//   w.key("records"); w.begin_array();
//   ... w.end_array();
//   w.end_object();
//
// Mismatched begin/end or a value without a pending key inside an object
// throw InternalError (emitter bugs, not user errors).
//
// The parser (json_parse / json_try_parse) reads one document into a
// JsonValue tree. It exists for the sweep store's read path (manifest +
// shard frames, see src/store/), so it is strict -- no comments, no trailing
// commas -- and it preserves exact 64-bit integers alongside the double
// reading (cell seeds do not survive a double round-trip).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rlocal {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2);
  ~JsonWriter();

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Next value becomes this key's value (only inside an object).
  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v);
  void value(bool v);
  void value(double v);  ///< non-finite values are emitted as null
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v);
  void null();

  /// Shorthand for key(name); value(v).
  template <typename T>
  void field(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  /// True once every opened scope has been closed.
  bool done() const { return stack_.empty() && wrote_top_level_; }

  static std::string escape(std::string_view raw);

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> scope_has_items_;
  bool key_pending_ = false;
  bool wrote_top_level_ = false;
};

/// One parsed JSON value. Objects keep their members in document order (the
/// store's frames are written with a fixed key order, and keeping it makes
/// re-serialization canonical); lookup is linear, which is fine at frame
/// sizes.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  ///< null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed accessors; throw InvariantError on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  /// Exact integer reading; throws when the lexeme was not an integer that
  /// fits the requested width (doubles cannot carry 64-bit cell seeds).
  std::uint64_t as_uint64() const;
  std::int64_t as_int64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member by key; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Convenience lookups with fallbacks (absent key or type mismatch).
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  // Exact integer readings of the number lexeme, when representable.
  std::optional<std::uint64_t> uint_;
  std::optional<std::int64_t> int_;
  std::string string_;
  // unique_ptr keeps the recursive type sized; copied deeply on demand.
  std::unique_ptr<Array> array_;
  std::unique_ptr<Object> object_;

 public:
  JsonValue(const JsonValue& other) { *this = other; }
  JsonValue& operator=(const JsonValue& other);
  JsonValue(JsonValue&&) = default;
  JsonValue& operator=(JsonValue&&) = default;
};

/// Parses exactly one JSON document (trailing whitespace allowed); throws
/// InvariantError with position information on malformed input.
JsonValue json_parse(std::string_view text);

/// Non-throwing variant for inputs that are *expected* to sometimes be
/// malformed (the store's torn final frames): nullopt on any parse error.
std::optional<JsonValue> json_try_parse(std::string_view text);

}  // namespace rlocal
