// Minimal streaming JSON writer for experiment artifacts (no external
// dependencies, mirroring the zero-dependency policy of rnd/prng.hpp).
//
// The writer tracks nesting and emits commas/indentation itself, so emitters
// can be written as straight-line code:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("schema"); w.value("rlocal.sweep/1");
//   w.key("records"); w.begin_array();
//   ... w.end_array();
//   w.end_object();
//
// Mismatched begin/end or a value without a pending key inside an object
// throw InternalError (emitter bugs, not user errors).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rlocal {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2);
  ~JsonWriter();

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Next value becomes this key's value (only inside an object).
  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v);
  void value(bool v);
  void value(double v);  ///< non-finite values are emitted as null
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v);
  void null();

  /// Shorthand for key(name); value(v).
  template <typename T>
  void field(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  /// True once every opened scope has been closed.
  bool done() const { return stack_.empty() && wrote_top_level_; }

  static std::string escape(std::string_view raw);

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> scope_has_items_;
  bool key_pending_ = false;
  bool wrote_top_level_ = false;
};

}  // namespace rlocal
