#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace rlocal {

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  RLOCAL_CHECK(indent >= 0, "indent must be non-negative");
}

JsonWriter::~JsonWriter() = default;

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    RLOCAL_ASSERT(!wrote_top_level_);
    wrote_top_level_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    RLOCAL_ASSERT(key_pending_);
    key_pending_ = false;
    return;
  }
  if (scope_has_items_.back()) out_ << ',';
  scope_has_items_.back() = true;
  newline_indent();
}

void JsonWriter::key(std::string_view name) {
  RLOCAL_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
  RLOCAL_ASSERT(!key_pending_);
  if (scope_has_items_.back()) out_ << ',';
  scope_has_items_.back() = true;
  newline_indent();
  out_ << '"' << escape(name) << "\":" << (indent_ > 0 ? " " : "");
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
}

void JsonWriter::end_object() {
  RLOCAL_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
  RLOCAL_ASSERT(!key_pending_);
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
}

void JsonWriter::end_array() {
  RLOCAL_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view v) {
  before_value();
  out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(const char* v) { value(std::string_view(v)); }

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(int v) { value(static_cast<std::int64_t>(v)); }

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

}  // namespace rlocal
