#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "support/assert.hpp"

namespace rlocal {

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  RLOCAL_CHECK(indent >= 0, "indent must be non-negative");
}

JsonWriter::~JsonWriter() = default;

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    RLOCAL_ASSERT(!wrote_top_level_);
    wrote_top_level_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    RLOCAL_ASSERT(key_pending_);
    key_pending_ = false;
    return;
  }
  if (scope_has_items_.back()) out_ << ',';
  scope_has_items_.back() = true;
  newline_indent();
}

void JsonWriter::key(std::string_view name) {
  RLOCAL_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
  RLOCAL_ASSERT(!key_pending_);
  if (scope_has_items_.back()) out_ << ',';
  scope_has_items_.back() = true;
  newline_indent();
  out_ << '"' << escape(name) << "\":" << (indent_ > 0 ? " " : "");
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
}

void JsonWriter::end_object() {
  RLOCAL_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
  RLOCAL_ASSERT(!key_pending_);
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
}

void JsonWriter::end_array() {
  RLOCAL_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view v) {
  before_value();
  out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(const char* v) { value(std::string_view(v)); }

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(int v) { value(static_cast<std::int64_t>(v)); }

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

JsonValue& JsonValue::operator=(const JsonValue& other) {
  if (this == &other) return *this;
  type_ = other.type_;
  bool_ = other.bool_;
  number_ = other.number_;
  uint_ = other.uint_;
  int_ = other.int_;
  string_ = other.string_;
  array_ = other.array_ ? std::make_unique<Array>(*other.array_) : nullptr;
  object_ = other.object_ ? std::make_unique<Object>(*other.object_) : nullptr;
  return *this;
}

bool JsonValue::as_bool() const {
  RLOCAL_CHECK(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  RLOCAL_CHECK(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

std::uint64_t JsonValue::as_uint64() const {
  RLOCAL_CHECK(type_ == Type::kNumber && uint_.has_value(),
               "JSON value is not an exact uint64");
  return *uint_;
}

std::int64_t JsonValue::as_int64() const {
  RLOCAL_CHECK(type_ == Type::kNumber && int_.has_value(),
               "JSON value is not an exact int64");
  return *int_;
}

const std::string& JsonValue::as_string() const {
  RLOCAL_CHECK(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  RLOCAL_CHECK(type_ == Type::kArray && array_ != nullptr,
               "JSON value is not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  RLOCAL_CHECK(type_ == Type::kObject && object_ != nullptr,
               "JSON value is not an object");
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject || object_ == nullptr) return nullptr;
  for (const Member& member : *object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : std::move(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

/// Strict recursive-descent parser over a string_view. Depth is bounded so a
/// corrupt frame of nothing but '[' cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    RLOCAL_CHECK(pos_ == text_.size(),
                 "JSON parse error at offset " + std::to_string(pos_) +
                     ": trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvariantError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (pos_ >= text_.size() || text_[pos_] != ch) {
      fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = ch == 't';
        if (!consume_literal(ch == 't' ? "true" : "false")) {
          fail("invalid literal");
        }
        return value;
      }
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    value.object_ = std::make_unique<JsonValue::Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object_->emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    value.array_ = std::make_unique<JsonValue::Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_->push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (the writer only escapes
          // control characters, so surrogate pairs never occur in our own
          // artifacts; lone surrogates are passed through encoded).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) fail("invalid number");
    // RFC 8259: no leading zeros ("01"). Strictness matters to the store:
    // a damaged frame must fail to decode, not decode differently.
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      fail("leading zero in number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) fail("invalid number");
    }
    const std::string_view lexeme = text_.substr(start, pos_ - start);
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    // strtod needs a NUL-terminated buffer; the lexeme is short.
    const std::string buffer(lexeme);
    value.number_ = std::strtod(buffer.c_str(), nullptr);
    if (integral) {
      // Exact readings where the lexeme fits (uint64 for non-negative,
      // int64 always when in range); from_chars fails quietly on overflow.
      if (lexeme.front() != '-') {
        std::uint64_t u = 0;
        const auto [ptr, ec] =
            std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), u);
        if (ec == std::errc() && ptr == lexeme.data() + lexeme.size()) {
          value.uint_ = u;
          if (u <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
            value.int_ = static_cast<std::int64_t>(u);
          }
        }
      } else {
        std::int64_t i = 0;
        const auto [ptr, ec] =
            std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), i);
        if (ec == std::errc() && ptr == lexeme.data() + lexeme.size()) {
          value.int_ = i;
        }
      }
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue json_parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::optional<JsonValue> json_try_parse(std::string_view text) {
  try {
    return JsonParser(text).parse_document();
  } catch (const InvariantError&) {
    return std::nullopt;
  }
}

}  // namespace rlocal
