#include "support/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>
#include <string_view>

namespace rlocal {

namespace {
// One mutex serializes both level resolution (first use reads the env var)
// and the writes themselves, so concurrent lines never interleave mid-line.
std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarn;
bool g_explicit = false;      // set_log_level() was called
bool g_env_resolved = false;  // RLOCAL_LOG_LEVEL was consulted

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> parse_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

/// Called with g_mutex held. Resolution order mirrors rnd/dispatch: an
/// explicit set_log_level() beats the env var, which beats the kWarn
/// default. Unlike the backend dispatch this never throws -- logging must
/// not take the process down -- so an unknown spelling emits one warning
/// line and keeps the default.
LogLevel resolved_level_locked() {
  if (!g_env_resolved) {
    g_env_resolved = true;
    if (!g_explicit) {
      if (const char* env = std::getenv("RLOCAL_LOG_LEVEL")) {
        if (const auto parsed = parse_level(env)) {
          g_level = *parsed;
        } else if (*env != '\0') {
          std::cerr << "[rlocal WARN] unknown RLOCAL_LOG_LEVEL '" << env
                    << "' (expected debug|info|warn|error); keeping "
                    << level_name(g_level) << "\n";
        }
      }
    }
  }
  return g_level;
}
}  // namespace

void set_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
  g_explicit = true;
  g_env_resolved = true;  // explicit choice; never consult the env var
}

LogLevel log_level() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return resolved_level_locked();
}

void log_message(LogLevel level, const std::string& message) {
  // Assemble the full line before taking the stream: one formatted write
  // under the mutex keeps concurrent workers' lines whole.
  std::string line;
  line.reserve(message.size() + 24);
  line += "[rlocal ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += "\n";
  std::lock_guard<std::mutex> lock(g_mutex);
  if (static_cast<int>(level) < static_cast<int>(resolved_level_locked())) {
    return;
  }
  std::cerr << line;
}

}  // namespace rlocal
