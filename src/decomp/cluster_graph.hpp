// Cluster-graph contraction (Lemma 3.3, Theorem 4.2): given a Voronoi
// partition around centers, build the logical graph with one vertex per
// cluster, two clusters adjacent iff some of their members are G-adjacent.
// One logical round dilates to O(cluster radius) base rounds; the paper's
// constructions only ever aggregate (min / top-two) toward centers, which is
// what keeps the simulation CONGEST-feasible.
//
// `lift_decomposition` maps a decomposition of the cluster graph back to the
// base graph: a lifted cluster is the union of the member-sets of its
// cluster-graph cluster, spanned by a BFS tree inside that union (valid
// because Voronoi clusters are internally connected and cluster-graph edges
// witness base adjacency).
#pragma once

#include <vector>

#include "decomp/decomposition.hpp"
#include "graph/graph.hpp"

namespace rlocal {

struct ClusterGraph {
  Graph graph;                      ///< one vertex per cluster
  std::vector<NodeId> cluster_of;   ///< base node -> cluster vertex, or -1
  std::vector<NodeId> center;       ///< cluster vertex -> base center node
  std::vector<std::int32_t> radius; ///< max dist(center, member) per cluster
  int max_radius = 0;

  /// Base-graph rounds needed to simulate one cluster-graph round
  /// (down-cast + up-cast along cluster trees plus one boundary exchange).
  int dilation() const { return 2 * max_radius + 1; }
};

/// `owner[v]` = center of v's cluster, or -1 for nodes outside all clusters
/// (allowed; they do not witness adjacency). Centers must own themselves.
ClusterGraph build_cluster_graph(const Graph& g,
                                 const std::vector<NodeId>& owner);

/// Lifts a decomposition `cd` of cg.graph to the base graph. Lifted cluster
/// colors equal the cluster-graph colors; trees come from a BFS inside the
/// union of member sets (so the lift preserves strong diameter and
/// congestion 1). Base nodes outside every cluster stay unclustered.
Decomposition lift_decomposition(const Graph& g, const ClusterGraph& cg,
                                 const Decomposition& cd);

}  // namespace rlocal
