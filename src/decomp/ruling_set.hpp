// Deterministic (alpha, alpha * ceil(log2 ID_MAX)) ruling sets, following
// Awerbuch-Goldberg-Luby-Plotkin [AGLP89] (also [HKN16]): recurse on the
// bits of the unique node identifiers; at each level, merge the ruling set
// of the 1-side into the 0-side by keeping only 1-side nodes at distance
// >= alpha from every kept 0-side node. Each level costs alpha rounds of
// flooding in CONGEST and adds alpha to the covering radius beta.
//
// Guarantees, for S = ruling_set(G, U, alpha):
//   * S is a subset of U;
//   * any two nodes of S are at G-distance >= alpha;
//   * every node of U has a node of S within distance beta <= alpha * B,
//     where B = number of id bits.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sim/ledger.hpp"

namespace rlocal {

struct RulingSetResult {
  std::vector<NodeId> set;
  int alpha = 0;
  int beta = 0;            ///< covering-radius guarantee alpha * id_bits
  int rounds_charged = 0;  ///< CONGEST rounds: alpha per id-bit level
};

RulingSetResult ruling_set(const Graph& g,
                           const std::vector<NodeId>& candidates, int alpha);

/// Checks the two ruling-set properties (pairwise distance >= alpha; every
/// candidate within `beta` of the set). Returns an empty string when valid.
std::string check_ruling_set(const Graph& g,
                             const std::vector<NodeId>& candidates,
                             const std::vector<NodeId>& set, int alpha,
                             int beta);

}  // namespace rlocal
