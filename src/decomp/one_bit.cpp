#include "decomp/one_bit.hpp"

#include <algorithm>
#include <cmath>

#include "decomp/cluster_graph.hpp"
#include "decomp/elkin_neiman.hpp"
#include "support/math.hpp"

namespace rlocal {

namespace {

int default_bits(NodeId n) {
  const int logn = log2n(static_cast<std::uint64_t>(std::max<NodeId>(2, n)));
  return 2 * logn * logn;
}

/// Appends the isolated Lemma 3.2 clusters (color 0 -- they have no
/// neighbors, so any color is safe) to a lifted decomposition.
void add_isolated_clusters(const Graph& g, const BitGatheringResult& gather,
                           const std::vector<bool>& cluster_is_isolated,
                           Decomposition* d) {
  for (std::size_t c = 0; c < gather.centers.size(); ++c) {
    if (!cluster_is_isolated[c]) continue;
    Cluster cluster;
    cluster.center = gather.centers[c];
    cluster.color = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (gather.owner[static_cast<std::size_t>(v)] == gather.centers[c]) {
        cluster.members.push_back(v);
        cluster.tree_nodes.push_back(v);
        if (v != gather.centers[c]) {
          cluster.tree_edges.emplace_back(
              v, gather.parent[static_cast<std::size_t>(v)]);
        }
      }
    }
    const auto index = static_cast<NodeId>(d->clusters.size());
    for (const NodeId v : cluster.members) {
      d->cluster_of[static_cast<std::size_t>(v)] = index;
    }
    d->clusters.push_back(std::move(cluster));
  }
  d->num_colors = std::max(d->num_colors, 1);
}

struct GatherSetup {
  BitGatheringResult gather;
  std::vector<bool> isolated;             // per Lemma 3.2 cluster
  std::vector<NodeId> non_isolated_owner; // owner labels, isolated erased
  int rounds = 0;
};

GatherSetup run_gathering(const Graph& g, const BeaconPlacement& placement,
                          BitSource& beacon_bits,
                          const OneBitOptions& options, OneBitResult* out) {
  const int k = options.bits_per_cluster > 0 ? options.bits_per_cluster
                                             : default_bits(g.num_nodes());
  GatherSetup setup;
  setup.gather =
      gather_cluster_bits(g, placement, k, beacon_bits, options.h_prime);
  setup.isolated = setup.gather.isolated;
  setup.rounds = setup.gather.rounds_charged;

  out->num_clusters = static_cast<int>(setup.gather.centers.size());
  out->num_isolated = static_cast<int>(
      std::count(setup.isolated.begin(), setup.isolated.end(), true));
  out->min_bits_gathered = setup.gather.min_bits_non_isolated;
  out->cluster_radius_bound = setup.gather.cluster_radius_bound;

  const auto n = static_cast<std::size_t>(g.num_nodes());
  setup.non_isolated_owner.assign(n, -1);
  std::vector<NodeId> cluster_index(n, -1);
  for (std::size_t c = 0; c < setup.gather.centers.size(); ++c) {
    cluster_index[static_cast<std::size_t>(setup.gather.centers[c])] =
        static_cast<NodeId>(c);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId o = setup.gather.owner[static_cast<std::size_t>(v)];
    const NodeId c = cluster_index[static_cast<std::size_t>(o)];
    if (!setup.isolated[static_cast<std::size_t>(c)]) {
      setup.non_isolated_owner[static_cast<std::size_t>(v)] = o;
    }
  }
  return setup;
}

}  // namespace

OneBitResult one_bit_decomposition(const Graph& g,
                                   const BeaconPlacement& placement,
                                   BitSource& beacon_bits,
                                   const OneBitOptions& options) {
  OneBitResult result;
  GatherSetup setup =
      run_gathering(g, placement, beacon_bits, options, &result);
  result.rounds_charged += setup.rounds;

  // Contract non-isolated clusters into the logical cluster graph.
  const ClusterGraph cg = build_cluster_graph(g, setup.non_isolated_owner);

  if (cg.graph.num_nodes() > 0) {
    // Per-logical-vertex finite bit pools; draws past the pool fall back to
    // a deterministic 1 and are counted (success then reports false).
    std::vector<FixedBitSource> pools;
    pools.reserve(static_cast<std::size_t>(cg.graph.num_nodes()));
    std::vector<NodeId> gather_index_of;  // cg vertex -> Lemma 3.2 cluster
    for (NodeId cv = 0; cv < cg.graph.num_nodes(); ++cv) {
      const NodeId center = cg.center[static_cast<std::size_t>(cv)];
      std::size_t gi = 0;
      while (setup.gather.centers[gi] != center) ++gi;
      gather_index_of.push_back(static_cast<NodeId>(gi));
      pools.emplace_back(setup.gather.bits[gi]);
    }
    int exhausted = 0;
    auto drawer = [&pools, &exhausted](NodeId cv, int /*phase*/, int cap) {
      try {
        return pools[static_cast<std::size_t>(cv)].geometric(cap);
      } catch (const BitsExhausted&) {
        ++exhausted;
        return 1;
      }
    };
    EnOptions en_options;
    en_options.phases = options.en_phases;
    // Economy shift cap: shifts cost their value in beacon bits, and
    // 2 log(#clusters) + 4 keeps the truncation probability below
    // 1/(16 * #clusters^2) while consuming ~2 bits per draw.
    en_options.shift_cap =
        2 * log2n(static_cast<std::uint64_t>(cg.graph.num_nodes() + 1)) + 4;
    const EnResult en = elkin_neiman_core(cg.graph, drawer, en_options);
    result.exhausted_draws = exhausted;
    // Cluster-graph rounds dilate by the Lemma 3.2 cluster radius.
    result.rounds_charged += en.rounds_charged * cg.dilation();

    if (en.all_clustered) {
      result.decomposition = lift_decomposition(g, cg, en.decomposition);
      // EN colors shift up by one so color 0 stays free for isolated
      // clusters (which are colorless bystanders with no neighbors; keeping
      // a dedicated color makes the count explicit).
      for (auto& cluster : result.decomposition.clusters) cluster.color += 1;
      result.decomposition.num_colors = en.decomposition.num_colors + 1;
      add_isolated_clusters(g, setup.gather, setup.isolated,
                            &result.decomposition);
      result.all_clustered = true;
    }
  } else {
    // Every cluster is isolated: the Lemma 3.2 partition itself is the
    // decomposition.
    result.decomposition.cluster_of.assign(
        static_cast<std::size_t>(g.num_nodes()), -1);
    result.decomposition.num_colors = 1;
    add_isolated_clusters(g, setup.gather, setup.isolated,
                          &result.decomposition);
    result.all_clustered = true;
  }

  result.colors = result.decomposition.num_colors;
  result.success = result.all_clustered && result.exhausted_draws == 0;
  return result;
}

namespace {

/// Theorem 3.7 randomness: each node draws through its Lemma 3.2 cluster's
/// k-wise generator; generators are seeded by the gathered beacon bits and
/// independent across clusters. GF(2^32) keeps the seed cost per
/// independence level at 32 bits (the evaluation domain then caps node and
/// stream indices at 2^13, ample for simulated sizes).
class ClusterSeededRandomness final : public EpochRandomness {
 public:
  static constexpr int kFieldBits = 32;

  ClusterSeededRandomness(const Graph& g, const BitGatheringResult& gather)
      : epochs_(shared_congest_epochs(g.num_nodes()) + 1),
        cluster_of_(static_cast<std::size_t>(g.num_nodes()), -1) {
    RLOCAL_CHECK(g.num_nodes() < (1 << 13),
                 "GF(2^32) packing supports up to 2^13 nodes");
    std::vector<NodeId> cluster_index(static_cast<std::size_t>(g.num_nodes()),
                                      -1);
    for (std::size_t c = 0; c < gather.centers.size(); ++c) {
      cluster_index[static_cast<std::size_t>(gather.centers[c])] =
          static_cast<NodeId>(c);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      cluster_of_[static_cast<std::size_t>(v)] = cluster_index
          [static_cast<std::size_t>(gather.owner[static_cast<std::size_t>(v)])];
    }
    generators_.reserve(gather.bits.size());
    for (const auto& bits : gather.bits) {
      // Coefficients straight from the gathered bits; a pool of B bits
      // yields a floor(B/32)-wise generator. Short pools (possible when the
      // caller shrinks h' below the paper's 10kh) are expanded *from the
      // gathered bits themselves* -- deterministic pseudo-random stretching
      // in the spirit of the paper's footnote on randomness extraction. No
      // entropy is added; the k-wise guarantee is void for such clusters
      // and the shortfall is reported via short_pools().
      const int k = std::max(2, static_cast<int>(bits.size()) / kFieldBits);
      FixedBitSource padded(
          pad(bits, static_cast<std::size_t>(k) * kFieldBits));
      generators_.emplace_back(k, kFieldBits, padded);
      min_kwise_ = min_kwise_ < 0 ? k : std::min(min_kwise_, k);
      if (static_cast<int>(bits.size()) < 2 * kFieldBits) ++short_pools_;
    }
  }

  bool center_coin(NodeId node, int phase, int epoch, double q) override {
    const KWiseGenerator& gen = generator_for(node);
    const auto threshold = static_cast<std::uint64_t>(
        std::ldexp(static_cast<long double>(q), kFieldBits));
    return gen.value(point(node, stream(phase, epoch, 0), 0)) < threshold;
  }
  int radius_draw(NodeId node, int phase, int epoch, int cap) override {
    const KWiseGenerator& gen = generator_for(node);
    const std::uint64_t s = stream(phase, epoch, 1);
    for (int k = 1; k <= cap; ++k) {
      const std::uint64_t word =
          gen.value(point(node, s, (k - 1) / kFieldBits));
      if (((word >> ((k - 1) % kFieldBits)) & 1ULL) == 0) return k;
    }
    return cap;
  }

  // Batched epoch draws: nodes grouped per cluster generator (first-
  // appearance order) and each group routed through KWiseGenerator::values,
  // so the Horner chains of a cluster's nodes overlap. values() == value()
  // point-for-point, so results match the scalar overrides exactly.
  void center_coins(std::span<const NodeId> nodes, int phase, int epoch,
                    double q, std::span<std::uint8_t> out) override {
    const std::uint64_t s = stream(phase, epoch, 0);
    const auto threshold = static_cast<std::uint64_t>(
        std::ldexp(static_cast<long double>(q), kFieldBits));
    group_clusters(nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId cluster = batch_cluster_[i];
      if (cluster < 0) continue;  // already gathered with an earlier group
      batch_points_.clear();
      batch_scatter_.clear();
      for (std::size_t j = i; j < nodes.size(); ++j) {
        if (batch_cluster_[j] != cluster) continue;
        batch_points_.push_back(point(nodes[j], s, 0));
        batch_scatter_.push_back(j);
        batch_cluster_[j] = -1;
      }
      const KWiseGenerator& gen = generators_[static_cast<std::size_t>(cluster)];
      gen.values(batch_points_, batch_points_);  // in-place
      for (std::size_t j = 0; j < batch_scatter_.size(); ++j) {
        out[batch_scatter_[j]] = batch_points_[j] < threshold ? 1 : 0;
      }
    }
  }
  void radius_draws(std::span<const NodeId> nodes, int phase, int epoch,
                    int cap, std::span<int> out) override {
    const std::uint64_t s = stream(phase, epoch, 1);
    group_clusters(nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId cluster = batch_cluster_[i];
      if (cluster < 0) continue;
      batch_active_.clear();
      batch_scatter_.clear();
      for (std::size_t j = i; j < nodes.size(); ++j) {
        if (batch_cluster_[j] != cluster) continue;
        batch_active_.push_back(nodes[j]);
        batch_scatter_.push_back(j);
        batch_cluster_[j] = -1;
      }
      const KWiseGenerator& gen = generators_[static_cast<std::size_t>(cluster)];
      // Chunk c of every still-all-heads node gathered in one values()
      // pass, exactly the bit order of the scalar radius_draw loop.
      std::size_t active = batch_active_.size();
      for (int c = 0; active > 0; ++c) {
        const int lo = c * kFieldBits;
        const int hi = std::min(cap, lo + kFieldBits);
        batch_points_.resize(active);
        for (std::size_t j = 0; j < active; ++j) {
          batch_points_[j] = point(batch_active_[j], s, c);
        }
        gen.values(batch_points_, batch_points_);
        std::size_t next = 0;
        for (std::size_t j = 0; j < active; ++j) {
          const std::uint64_t word = batch_points_[j];
          int result = 0;
          for (int k = lo + 1; k <= hi; ++k) {
            if (((word >> ((k - 1) % kFieldBits)) & 1ULL) == 0) {
              result = k;
              break;
            }
          }
          if (result == 0 && hi == cap) result = cap;  // all heads to the cap
          if (result != 0) {
            out[batch_scatter_[j]] = result;
          } else {
            batch_active_[next] = batch_active_[j];
            batch_scatter_[next] = batch_scatter_[j];
            ++next;
          }
        }
        active = next;
      }
    }
  }

  int min_kwise() const { return min_kwise_; }
  int short_pools() const { return short_pools_; }

 private:
  static std::vector<bool> pad(const std::vector<bool>& bits,
                               std::size_t size) {
    std::vector<bool> out = bits;
    if (out.size() >= size) return out;
    // Key a SplitMix64 stream with the gathered bits and stretch.
    std::uint64_t key = 0x243F6A8885A308D3ULL;  // pi, nothing up the sleeve
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) key ^= 1ULL << (i % 64);
      if (i % 64 == 63) key = mix3(key, i, 0);
    }
    std::uint64_t state = key;
    std::uint64_t word = 0;
    int available = 0;
    while (out.size() < size) {
      if (available == 0) {
        word = splitmix64(state);
        available = 64;
      }
      out.push_back((word & 1ULL) != 0);
      word >>= 1;
      --available;
    }
    return out;
  }
  const KWiseGenerator& generator_for(NodeId node) const {
    return generators_[static_cast<std::size_t>(
        cluster_of_[static_cast<std::size_t>(node)])];
  }
  /// Fills batch_cluster_[i] with nodes[i]'s cluster index (consumed by the
  /// batch overrides, which mark entries -1 as they gather each group).
  void group_clusters(std::span<const NodeId> nodes) {
    batch_cluster_.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      batch_cluster_[i] = cluster_of_[static_cast<std::size_t>(nodes[i])];
    }
  }
  /// Injective 32-bit packing: node (13) | stream (13) | chunk (6).
  static std::uint64_t point(NodeId node, std::uint64_t stream, int chunk) {
    RLOCAL_CHECK(stream < (1ULL << 13) && chunk < (1 << 6),
                 "draw outside the GF(2^32) packing range");
    return (static_cast<std::uint64_t>(node) << 19) | (stream << 6) |
           static_cast<std::uint64_t>(chunk);
  }
  std::uint64_t stream(int phase, int epoch, int which) const {
    return (static_cast<std::uint64_t>(phase) *
                static_cast<std::uint64_t>(epochs_) +
            static_cast<std::uint64_t>(epoch)) *
               2 +
           static_cast<std::uint64_t>(which);
  }

  int epochs_;
  std::vector<NodeId> cluster_of_;
  std::vector<KWiseGenerator> generators_;
  int min_kwise_ = -1;
  int short_pools_ = 0;
  // Reused batch-draw scratch (cluster per node, evaluation points, output
  // slots, and the still-all-heads set of the radius loop).
  std::vector<NodeId> batch_cluster_;
  std::vector<std::uint64_t> batch_points_;
  std::vector<std::size_t> batch_scatter_;
  std::vector<NodeId> batch_active_;
};

}  // namespace

OneBitResult one_bit_strong_decomposition(const Graph& g,
                                          const BeaconPlacement& placement,
                                          BitSource& beacon_bits,
                                          const OneBitOptions& options) {
  OneBitResult result;
  GatherSetup setup =
      run_gathering(g, placement, beacon_bits, options, &result);
  result.rounds_charged += setup.rounds;
  // Sharing the gathered seed cluster-internally costs one down-cast.
  result.rounds_charged += setup.gather.cluster_radius_bound;

  ClusterSeededRandomness provider(g, setup.gather);
  result.exhausted_draws = provider.short_pools();

  const SharedCongestResult inner =
      shared_congest_core(g, provider, options.congest);
  result.rounds_charged += inner.rounds_charged;
  result.decomposition = inner.decomposition;
  result.all_clustered = inner.all_clustered;
  result.colors = inner.decomposition.num_colors;
  result.success = result.all_clustered && provider.short_pools() == 0;
  return result;
}

}  // namespace rlocal
