#include "decomp/decomposition.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace rlocal {

namespace {

/// Hop diameter of the tree given by `edges` on `nodes` (exact via double
/// BFS, valid because the subgraph is a tree). Returns -1 if the edge set is
/// not a tree spanning exactly `nodes`.
int tree_diameter(const std::vector<NodeId>& nodes,
                  const std::vector<std::pair<NodeId, NodeId>>& edges) {
  if (nodes.empty()) return -1;
  if (edges.size() + 1 != nodes.size()) return -1;
  std::map<NodeId, std::vector<NodeId>> adj;
  for (const NodeId v : nodes) adj[v];
  for (const auto& [a, b] : edges) {
    if (adj.find(a) == adj.end() || adj.find(b) == adj.end()) return -1;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  auto bfs_far = [&adj](NodeId start) -> std::pair<NodeId, int> {
    std::map<NodeId, int> dist;
    std::deque<NodeId> queue{start};
    dist[start] = 0;
    NodeId far = start;
    int far_dist = 0;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const NodeId u : adj[v]) {
        if (dist.find(u) == dist.end()) {
          dist[u] = dist[v] + 1;
          if (dist[u] > far_dist) {
            far_dist = dist[u];
            far = u;
          }
          queue.push_back(u);
        }
      }
    }
    if (dist.size() != adj.size()) return {start, -1};  // disconnected
    return {far, far_dist};
  };
  const auto [far, reach] = bfs_far(nodes.front());
  if (reach < 0) return -1;
  return bfs_far(far).second;
}

}  // namespace

ValidationReport validate_decomposition(const Graph& g,
                                        const Decomposition& d) {
  ValidationReport report;
  const auto n = static_cast<std::size_t>(g.num_nodes());

  if (d.cluster_of.size() != n) {
    report.error = "cluster_of size mismatch";
    return report;
  }
  // Partition check: every node in exactly one cluster, consistent with
  // cluster_of.
  std::vector<int> seen(n, -1);
  for (std::size_t c = 0; c < d.clusters.size(); ++c) {
    const auto& cluster = d.clusters[c];
    if (cluster.members.empty()) {
      report.error = "empty cluster";
      return report;
    }
    if (cluster.color < 0 || cluster.color >= d.num_colors) {
      report.error = "cluster color out of range";
      return report;
    }
    for (const NodeId v : cluster.members) {
      if (v < 0 || v >= g.num_nodes()) {
        report.error = "member out of range";
        return report;
      }
      if (seen[static_cast<std::size_t>(v)] != -1) {
        report.error = "node in two clusters";
        return report;
      }
      seen[static_cast<std::size_t>(v)] = static_cast<int>(c);
      if (d.cluster_of[static_cast<std::size_t>(v)] !=
          static_cast<NodeId>(c)) {
        report.error = "cluster_of inconsistent with members";
        return report;
      }
    }
    const bool center_is_member =
        std::find(cluster.members.begin(), cluster.members.end(),
                  cluster.center) != cluster.members.end();
    if (!center_is_member) {
      report.error = "center is not a member";
      return report;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (d.cluster_of[static_cast<std::size_t>(v)] == -1) {
      report.error = "node " + std::to_string(v) + " unclustered";
      return report;
    }
    if (seen[static_cast<std::size_t>(v)] == -1) {
      report.error = "cluster_of points to cluster missing the node";
      return report;
    }
  }

  // Tree checks: edges must be G-edges, form a tree spanning tree_nodes,
  // and tree_nodes must contain all members.
  report.strong_diameter = true;
  for (const auto& cluster : d.clusters) {
    std::set<NodeId> tset(cluster.tree_nodes.begin(),
                          cluster.tree_nodes.end());
    if (tset.size() != cluster.tree_nodes.size()) {
      report.error = "duplicate tree node";
      return report;
    }
    for (const NodeId v : cluster.members) {
      if (tset.find(v) == tset.end()) {
        report.error = "tree does not span cluster members";
        return report;
      }
    }
    for (const auto& [a, b] : cluster.tree_edges) {
      if (!g.has_edge(a, b)) {
        report.error = "tree edge is not a graph edge";
        return report;
      }
    }
    const int diam = tree_diameter(cluster.tree_nodes, cluster.tree_edges);
    if (diam < 0) {
      report.error = "cluster tree is not a spanning tree of its nodes";
      return report;
    }
    report.max_tree_diameter = std::max(report.max_tree_diameter, diam);
    report.max_cluster_size = std::max(
        report.max_cluster_size, static_cast<int>(cluster.members.size()));
    if (cluster.tree_nodes.size() != cluster.members.size()) {
      report.strong_diameter = false;
    }
  }

  // Color check: adjacent clusters (an edge between members) differ.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId cv = d.cluster_of[static_cast<std::size_t>(v)];
    for (const NodeId u : g.neighbors(v)) {
      const NodeId cu = d.cluster_of[static_cast<std::size_t>(u)];
      if (cu != cv && d.clusters[static_cast<std::size_t>(cu)].color ==
                          d.clusters[static_cast<std::size_t>(cv)].color) {
        report.error = "adjacent clusters share a color";
        return report;
      }
    }
  }

  // Congestion: clusters-of-one-color whose tree touches a node.
  {
    std::map<std::pair<NodeId, int>, int> load;
    for (const auto& cluster : d.clusters) {
      for (const NodeId v : cluster.tree_nodes) {
        report.max_congestion = std::max(
            report.max_congestion, ++load[{v, cluster.color}]);
      }
    }
  }

  std::set<int> colors;
  for (const auto& cluster : d.clusters) colors.insert(cluster.color);
  report.colors_used = static_cast<int>(colors.size());
  report.valid = true;
  return report;
}

Decomposition decomposition_from_labels(const Graph& g,
                                        const std::vector<NodeId>& owner,
                                        const std::vector<int>& color,
                                        const std::vector<NodeId>& parent,
                                        bool allow_partial) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  RLOCAL_CHECK(owner.size() == n && color.size() == n && parent.size() == n,
               "label vectors must cover all nodes");
  Decomposition d;
  d.cluster_of.assign(n, -1);
  std::vector<NodeId> cluster_index(n, -1);  // per center
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId o = owner[static_cast<std::size_t>(v)];
    if (o == -1) {
      RLOCAL_CHECK(allow_partial, "unclustered node in a total labeling");
      continue;
    }
    RLOCAL_CHECK(o >= 0 && o < g.num_nodes(), "owner out of range");
    RLOCAL_CHECK(owner[static_cast<std::size_t>(o)] == o,
                 "owner of a center must be itself");
    if (cluster_index[static_cast<std::size_t>(o)] == -1) {
      cluster_index[static_cast<std::size_t>(o)] =
          static_cast<NodeId>(d.clusters.size());
      Cluster c;
      c.center = o;
      c.color = color[static_cast<std::size_t>(o)];
      d.clusters.push_back(std::move(c));
    }
    const NodeId ci = cluster_index[static_cast<std::size_t>(o)];
    RLOCAL_CHECK(color[static_cast<std::size_t>(v)] ==
                     d.clusters[static_cast<std::size_t>(ci)].color,
                 "color disagrees within a cluster");
    d.cluster_of[static_cast<std::size_t>(v)] = ci;
    d.clusters[static_cast<std::size_t>(ci)].members.push_back(v);
    d.clusters[static_cast<std::size_t>(ci)].tree_nodes.push_back(v);
    if (v != o) {
      const NodeId p = parent[static_cast<std::size_t>(v)];
      RLOCAL_CHECK(p >= 0 && p < g.num_nodes(), "missing parent pointer");
      RLOCAL_CHECK(owner[static_cast<std::size_t>(p)] == o,
                   "parent escapes the cluster (labels build strong-diameter "
                   "trees only)");
      d.clusters[static_cast<std::size_t>(ci)].tree_edges.emplace_back(v, p);
    }
  }
  int max_color = -1;
  for (const auto& c : d.clusters) max_color = std::max(max_color, c.color);
  d.num_colors = max_color + 1;
  return d;
}

std::vector<NodeId> unclustered_nodes(const Decomposition& d) {
  std::vector<NodeId> result;
  for (std::size_t v = 0; v < d.cluster_of.size(); ++v) {
    if (d.cluster_of[v] == -1) result.push_back(static_cast<NodeId>(v));
  }
  return result;
}

}  // namespace rlocal
