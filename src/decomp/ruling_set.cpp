#include "decomp/ruling_set.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace rlocal {

namespace {

/// Keeps the nodes of `add` whose distance to `base` is >= alpha, then
/// returns base + kept (the AGLP merge step).
std::vector<NodeId> merge_level(const Graph& g, std::vector<NodeId> base,
                                const std::vector<NodeId>& add, int alpha) {
  if (base.empty()) return add;
  if (add.empty()) return base;
  // Bounded multi-source BFS from `base` to depth alpha - 1.
  const auto dist = multi_source_distances(g, base);
  for (const NodeId v : add) {
    if (dist[static_cast<std::size_t>(v)] >= alpha) base.push_back(v);
  }
  return base;
}

std::vector<NodeId> ruling_recurse(const Graph& g,
                                   const std::vector<NodeId>& candidates,
                                   int alpha, int bit) {
  if (candidates.empty()) return {};
  if (bit < 0 || candidates.size() == 1) {
    // All remaining candidates share every id bit examined so far; since ids
    // are unique, at most one candidate can remain once all bits are split.
    RLOCAL_ASSERT(candidates.size() == 1);
    return candidates;
  }
  std::vector<NodeId> zeros;
  std::vector<NodeId> ones;
  for (const NodeId v : candidates) {
    if ((g.id(v) >> bit) & 1ULL) {
      ones.push_back(v);
    } else {
      zeros.push_back(v);
    }
  }
  if (zeros.empty()) return ruling_recurse(g, ones, alpha, bit - 1);
  if (ones.empty()) return ruling_recurse(g, zeros, alpha, bit - 1);
  const auto s0 = ruling_recurse(g, zeros, alpha, bit - 1);
  const auto s1 = ruling_recurse(g, ones, alpha, bit - 1);
  return merge_level(g, s0, s1, alpha);
}

}  // namespace

RulingSetResult ruling_set(const Graph& g,
                           const std::vector<NodeId>& candidates, int alpha) {
  RLOCAL_CHECK(alpha >= 1, "ruling set requires alpha >= 1");
  RulingSetResult result;
  result.alpha = alpha;
  std::vector<NodeId> unique_candidates = candidates;
  std::sort(unique_candidates.begin(), unique_candidates.end());
  unique_candidates.erase(
      std::unique(unique_candidates.begin(), unique_candidates.end()),
      unique_candidates.end());
  std::uint64_t max_id = 1;
  for (const NodeId v : unique_candidates) {
    RLOCAL_CHECK(v >= 0 && v < g.num_nodes(), "candidate out of range");
    max_id = std::max(max_id, g.id(v));
  }
  const int bits = ceil_log2(max_id + 1);
  result.set = ruling_recurse(g, unique_candidates, alpha, bits - 1);
  std::sort(result.set.begin(), result.set.end());
  result.set.erase(std::unique(result.set.begin(), result.set.end()),
                   result.set.end());
  result.beta = std::max(1, alpha * std::max(1, bits));
  // The distributed algorithm runs the bit levels sequentially; every level
  // floods to depth alpha (all same-level merges happen in parallel).
  result.rounds_charged = alpha * std::max(1, bits);
  return result;
}

std::string check_ruling_set(const Graph& g,
                             const std::vector<NodeId>& candidates,
                             const std::vector<NodeId>& set, int alpha,
                             int beta) {
  if (candidates.empty()) {
    return set.empty() ? "" : "nonempty set for empty candidates";
  }
  if (set.empty()) return "empty ruling set for nonempty candidates";
  std::vector<bool> in_set(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<bool> is_candidate(static_cast<std::size_t>(g.num_nodes()),
                                 false);
  for (const NodeId v : candidates) {
    is_candidate[static_cast<std::size_t>(v)] = true;
  }
  for (const NodeId v : set) {
    if (!is_candidate[static_cast<std::size_t>(v)]) {
      return "set member is not a candidate";
    }
    in_set[static_cast<std::size_t>(v)] = true;
  }
  // Pairwise separation: BFS from each set node to depth alpha - 1 must not
  // meet another set node.
  for (const NodeId s : set) {
    const auto dist = bfs_distances(g, s);
    for (const NodeId t : set) {
      if (t != s && dist[static_cast<std::size_t>(t)] < alpha) {
        return "two ruling-set nodes are closer than alpha";
      }
    }
  }
  // Coverage.
  const auto dist = multi_source_distances(g, set);
  for (const NodeId v : candidates) {
    if (dist[static_cast<std::size_t>(v)] > beta) {
      return "candidate farther than beta from the set";
    }
  }
  return "";
}

}  // namespace rlocal
