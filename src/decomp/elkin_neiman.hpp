// The Elkin-Neiman [EN16] random-shift network decomposition (inspired by
// Miller-Peng-Xu [MPX13]), in the multi-phase form the paper uses in
// Lemma 3.3 and Theorem 4.2:
//
//   for phase i = 1..O(log n):
//     every still-live node v draws a geometric shift r_v (Pr[r=k] = 2^-k,
//     truncated at O(log n));
//     every live node u computes the top-two measures m1 >= m2 of
//     r_v - dist_live(v, u) over live origins v (m2 := 0 if none);
//     if m1 - m2 > 1, u joins the cluster of the argmax origin and is
//     colored i; otherwise u stays for the next phase.
//
// Each phase clusters every live node with probability >= 1/2 [EN16 Claim 6]
// and carved clusters are non-adjacent, connected, and of strong radius
// <= max shift [EN16 Lemma 4]; the tree parent of u is the neighbor whose
// best measure exceeds u's by one with the same origin (it provably exists
// and lies in the same cluster).
//
// The shift drawer is pluggable: the standard wrapper draws through a
// NodeRandomness regime (full / k-wise / shared), while Lemma 3.3 draws each
// logical cluster's shifts from its own finite pool of gathered beacon bits.
#pragma once

#include <functional>
#include <span>

#include "decomp/decomposition.hpp"
#include "graph/graph.hpp"
#include "rnd/regime.hpp"
#include "sim/faults.hpp"

namespace rlocal {

struct EnOptions {
  int phases = 0;     ///< 0 means 10 * ceil(log2 n)
  int shift_cap = 0;  ///< 0 means 10 * ceil(log2 n)
  /// Randomness stream offset, so several EN runs can share one regime
  /// instance without reusing streams.
  std::uint64_t stream_base = 0;
  /// Run the top-two primitive on the message-passing engine instead of the
  /// centralized reference (slower; used for cross-validation).
  bool use_engine = false;
  /// Per-message cap handed to the engine (0 = CONGEST default); only read
  /// when use_engine is set.
  int bandwidth_bits = 0;
  /// Fault schedule armed on each phase's engine run (sim/faults.hpp); only
  /// read when use_engine is set. Each phase derives its own schedule from
  /// (fault_seed, phase), so a dropped wire in phase i says nothing about
  /// phase i + 1 -- fresh faults per phase, like the shifts.
  FaultSpec faults{};
  std::uint64_t fault_seed = 0;
};

/// Returns the shift for `node` in `phase`, in [1, cap].
using ShiftDrawer = std::function<int(NodeId node, int phase, int cap)>;

/// Batched drawer: fills out[i] in [1, cap] for nodes[i] -- the whole live
/// set of one phase in a single call, so regime-backed drawers can route
/// the draws through NodeRandomness::geometric_batch (one interleaved
/// Horner pass instead of one chain per node).
using ShiftBatchDrawer = std::function<void(
    std::span<const NodeId> nodes, int phase, int cap, std::span<int> out)>;

struct EnResult {
  Decomposition decomposition;  ///< partial if !all_clustered
  bool all_clustered = false;
  std::vector<NodeId> unclustered;
  int phases_used = 0;
  int shift_cap = 0;
  int max_shift = 0;          ///< largest shift drawn (w.h.p. O(log n))
  int rounds_charged = 0;     ///< CONGEST rounds: (cap + 2) per phase
  std::uint64_t shift_bits = 0;  ///< coin flips consumed by shift draws
  /// Analytic CONGEST message accounting matching rounds_charged: per phase
  /// every live node may broadcast its current top-two in each of the
  /// (cap + 1) propagation rounds (two measure entries per message). The
  /// engine's dirty-flag pruning sends fewer real wires; this is the model
  /// worst case the theorems charge, reported so reference-executed sweeps
  /// carry deterministic message totals (see docs/cost_model.md).
  std::int64_t analytic_messages = 0;
  std::int64_t analytic_bits = 0;
};

EnResult elkin_neiman_core(const Graph& g, const ShiftBatchDrawer& draw,
                           const EnOptions& options);

/// Scalar-drawer convenience overload (wraps `draw` in a per-node loop);
/// kept for drawers with inherently sequential state, e.g. the Lemma 3.3
/// per-cluster finite bit pools.
EnResult elkin_neiman_core(const Graph& g, const ShiftDrawer& draw,
                           const EnOptions& options);

/// Standard wrapper drawing shifts through a randomness regime.
EnResult elkin_neiman_decomposition(const Graph& g, NodeRandomness& rnd,
                                    const EnOptions& options = {});

}  // namespace rlocal
