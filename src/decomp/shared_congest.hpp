// Theorem 3.6: a (O(log n), O(log^2 n)) strong-diameter network
// decomposition in poly(log n) CONGEST rounds using only poly(log n) bits of
// globally shared randomness (no private randomness).
//
// Construction (paper, Section 3.2): O(log n) phases; each phase consists of
// p = O(log n) epochs with decreasing base radii R_i = (p - i) * c * log n.
// In epoch i every still-live node becomes a center with probability
// ~ 2^i * log(n) / n; each center u draws a geometric radius X_u <= c log n
// and its cluster "reaches" v when (R_i + X_u) - d(u, v) >= 0. A reached
// node joins the argmax center if the top measure beats the second by more
// than 1 (then it is clustered with this phase's color); otherwise it is set
// aside until the next phase. Unreached nodes continue to the next epoch.
//
// All randomness flows through the EpochRandomness interface:
//   * Theorem 3.6 uses a shared-seed k-wise regime (NodeRandomness);
//   * Theorem 3.7 plugs in per-cluster k-wise generators seeded by gathered
//     beacon bits (independent across clusters).
#pragma once

#include <memory>
#include <span>

#include "decomp/decomposition.hpp"
#include "graph/graph.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

/// Randomness provider for the phase/epoch construction.
class EpochRandomness {
 public:
  virtual ~EpochRandomness() = default;
  /// Center-election coin for `node` in (phase, epoch), success prob. q.
  virtual bool center_coin(NodeId node, int phase, int epoch, double q) = 0;
  /// Truncated geometric radius draw (Pr[X=k] = 2^-k, k in [1, cap]).
  virtual int radius_draw(NodeId node, int phase, int epoch, int cap) = 0;

  // Batched forms: the core draws one epoch's coins (all live nodes) and
  // radii (all elected centers) through these, so providers can route whole
  // node ranges into the batch randomness plane (NodeRandomness::
  // bernoulli_batch / geometric_batch). Draws are pure functions of
  // (node, phase, epoch), so the defaults -- plain scalar loops -- are
  // byte-identical to overridden implementations by construction.

  /// out[i] = center_coin(nodes[i], phase, epoch, q), as 0/1 bytes.
  virtual void center_coins(std::span<const NodeId> nodes, int phase,
                            int epoch, double q, std::span<std::uint8_t> out);
  /// out[i] = radius_draw(nodes[i], phase, epoch, cap).
  virtual void radius_draws(std::span<const NodeId> nodes, int phase,
                            int epoch, int cap, std::span<int> out);
};

struct SharedCongestOptions {
  int phases = 0;        ///< 0 -> 8 * ceil(log2 n)
  int radius_scale = 2;  ///< the paper's constant c (>= 10 asymptotically;
                         ///< 2 keeps simulated radii sane at bench scales)
  bool collect_reach_stats = false;  ///< measure #centers reaching nodes
};

struct SharedCongestResult {
  Decomposition decomposition;
  bool all_clustered = false;
  std::vector<NodeId> unclustered;
  int phases_used = 0;
  int epochs_per_phase = 0;
  int rounds_charged = 0;
  int max_radius_drawn = 0;
  /// Max over (epoch, live node) of the number of centers reaching the node
  /// (paper's w.h.p. O(log n) claim); -1 when stats are disabled.
  int max_centers_reaching = -1;
};

SharedCongestResult shared_congest_core(const Graph& g, EpochRandomness& rnd,
                                        const SharedCongestOptions& options);

/// Number of epochs per phase the construction uses for an n-node graph
/// (the smallest p with sampling probability reaching 1, plus one); exposed
/// so providers can bound their stream encodings.
int shared_congest_epochs(NodeId n);

/// Theorem 3.6 entry point: provider backed by a NodeRandomness regime
/// (use Regime::shared_kwise(poly log n bits) for the theorem's setting).
SharedCongestResult shared_randomness_decomposition(
    const Graph& g, NodeRandomness& rnd,
    const SharedCongestOptions& options = {});

}  // namespace rlocal
