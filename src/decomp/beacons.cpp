#include "decomp/beacons.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace rlocal {

BeaconPlacement place_beacons_greedy(const Graph& g, int h) {
  RLOCAL_CHECK(h >= 0, "covering radius must be non-negative");
  BeaconPlacement placement;
  placement.h = h;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<bool> covered(n, false);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&g](NodeId a, NodeId b) { return g.id(a) < g.id(b); });
  for (const NodeId v : order) {
    if (covered[static_cast<std::size_t>(v)]) continue;
    placement.beacons.push_back(v);
    const auto dist = bfs_distances(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[static_cast<std::size_t>(u)] <= h) {
        covered[static_cast<std::size_t>(u)] = true;
      }
    }
  }
  return placement;
}

BeaconPlacement place_beacons_sparse(const Graph& g, int h) {
  RLOCAL_CHECK(h >= 0, "covering radius must be non-negative");
  BeaconPlacement placement;
  placement.h = h;
  if (g.num_nodes() == 0) return placement;
  // Farthest-first within each component until everything is covered.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::int32_t> dist(n, kUnreachable);
  while (true) {
    // Node farthest from the current beacon set (per component: infinite
    // distance nodes are uncovered components).
    NodeId farthest = -1;
    std::int32_t best = -1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::int32_t d = dist[static_cast<std::size_t>(v)];
      if (d > best) {
        best = d;
        farthest = v;
      }
    }
    if (placement.beacons.empty()) {
      farthest = 0;
      best = kUnreachable;
    }
    if (best <= h) break;  // everything within h of a beacon
    placement.beacons.push_back(farthest);
    dist = multi_source_distances(g, placement.beacons);
  }
  return placement;
}

BeaconPlacement place_beacons_random(const Graph& g, int h, double density,
                                     std::uint64_t seed) {
  RLOCAL_CHECK(density >= 0.0 && density <= 1.0, "density is a probability");
  BeaconPlacement placement;
  placement.h = h;
  Xoshiro256 rng(seed);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // uniform [0,1)
    if (u < density) placement.beacons.push_back(v);
  }
  // Repair: greedily add beacons for uncovered nodes.
  auto dist = placement.beacons.empty()
                  ? std::vector<std::int32_t>(
                        static_cast<std::size_t>(g.num_nodes()), kUnreachable)
                  : multi_source_distances(g, placement.beacons);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] > h) {
      placement.beacons.push_back(v);
      const auto fresh = bfs_distances(g, v);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        dist[static_cast<std::size_t>(u)] = std::min(
            dist[static_cast<std::size_t>(u)],
            fresh[static_cast<std::size_t>(u)]);
      }
    }
  }
  std::sort(placement.beacons.begin(), placement.beacons.end());
  placement.beacons.erase(
      std::unique(placement.beacons.begin(), placement.beacons.end()),
      placement.beacons.end());
  return placement;
}

BeaconPlacement place_beacons_clustered(const Graph& g, int h) {
  RLOCAL_CHECK(h >= 0, "covering radius must be non-negative");
  BeaconPlacement placement;
  placement.h = h;
  if (g.num_nodes() == 0) return placement;
  // The clump: every node within h hops of the smallest-identifier node --
  // about as many beacons as one beacon's worth of coverage can hold.
  NodeId start = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.id(v) < g.id(start)) start = v;
  }
  const auto clump_dist = bfs_distances(g, start);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (clump_dist[static_cast<std::size_t>(v)] >= 0 &&
        clump_dist[static_cast<std::size_t>(v)] <= h) {
      placement.beacons.push_back(v);
    }
  }
  // Repair: greedily add beacons for nodes the clump leaves uncovered
  // (identical discipline to the random strategy's repair).
  auto dist = multi_source_distances(g, placement.beacons);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] > h) {
      placement.beacons.push_back(v);
      const auto fresh = bfs_distances(g, v);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        dist[static_cast<std::size_t>(u)] = std::min(
            dist[static_cast<std::size_t>(u)],
            fresh[static_cast<std::size_t>(u)]);
      }
    }
  }
  std::sort(placement.beacons.begin(), placement.beacons.end());
  return placement;
}

const std::vector<PlacementStrategyInfo>& beacon_placement_registry() {
  static const std::vector<PlacementStrategyInfo> kRegistry = {
      {0, "deterministic", "greedy h-dominating set (dense, id order)",
       [](const Graph& g, int h, double, std::uint64_t) {
         return place_beacons_greedy(g, h);
       }},
      {1, "adversarial_far", "farthest-first traversal (sparsest legal)",
       [](const Graph& g, int h, double, std::uint64_t) {
         return place_beacons_sparse(g, h);
       }},
      {2, "random", "i.i.d. density + greedy repair",
       [](const Graph& g, int h, double density, std::uint64_t seed) {
         return place_beacons_random(g, h, density, seed);
       }},
      {3, "adversarial_clustered", "one tight ball + greedy repair",
       [](const Graph& g, int h, double, std::uint64_t) {
         return place_beacons_clustered(g, h);
       }},
  };
  return kRegistry;
}

int beacon_placement_id(const std::string& name) {
  for (const PlacementStrategyInfo& info : beacon_placement_registry()) {
    if (name == info.name) return info.id;
  }
  RLOCAL_CHECK(false, "unknown beacon placement strategy '" + name + "'");
  return -1;  // unreachable
}

const char* beacon_placement_name(int id) {
  for (const PlacementStrategyInfo& info : beacon_placement_registry()) {
    if (id == info.id) return info.name;
  }
  RLOCAL_CHECK(false, "unknown beacon placement strategy id " +
                          std::to_string(id));
  return "";  // unreachable
}

BeaconPlacement place_beacons(int id, const Graph& g, int h, double density,
                              std::uint64_t seed) {
  for (const PlacementStrategyInfo& info : beacon_placement_registry()) {
    if (id == info.id) return info.place(g, h, density, seed);
  }
  RLOCAL_CHECK(false, "unknown beacon placement strategy id " +
                          std::to_string(id));
  return {};
}

bool placement_covers(const Graph& g, const BeaconPlacement& placement) {
  if (g.num_nodes() == 0) return true;
  if (placement.beacons.empty()) return false;
  const auto dist = multi_source_distances(g, placement.beacons);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] > placement.h) return false;
  }
  return true;
}

BitGatheringResult gather_cluster_bits(const Graph& g,
                                       const BeaconPlacement& placement,
                                       int k, BitSource& beacon_bits,
                                       int h_prime) {
  RLOCAL_CHECK(k >= 1, "must gather at least one bit");
  RLOCAL_CHECK(placement_covers(g, placement),
               "beacon placement violates the h-hop promise");
  BitGatheringResult result;
  const int h = std::max(1, placement.h);
  result.h_prime = h_prime > 0 ? h_prime : 10 * k * h;

  // Step 1: (h', h' * B)-ruling set over all nodes (paper: Lemma 3.2).
  std::vector<NodeId> all(static_cast<std::size_t>(g.num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  const RulingSetResult ruling = ruling_set(g, all, result.h_prime);
  result.centers = ruling.set;
  result.cluster_radius_bound = ruling.beta;
  result.rounds_charged += ruling.rounds_charged;

  // Step 2: Voronoi clusters around the centers (flooding, beta rounds).
  const VoronoiResult voronoi = voronoi_clusters(g, ruling.set);
  result.owner = voronoi.owner;
  result.parent = voronoi.parent;
  result.dist = voronoi.dist;
  result.rounds_charged += ruling.beta;

  // Step 3: each beacon's single private bit is drawn and up-cast to its
  // cluster center (pipelined up-cast: radius + #bits rounds).
  const auto num_clusters = result.centers.size();
  std::vector<NodeId> cluster_index(static_cast<std::size_t>(g.num_nodes()),
                                    -1);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    cluster_index[static_cast<std::size_t>(result.centers[c])] =
        static_cast<NodeId>(c);
  }
  result.bits.assign(num_clusters, {});
  for (const NodeId b : placement.beacons) {
    const NodeId owner = result.owner[static_cast<std::size_t>(b)];
    RLOCAL_ASSERT(owner != -1);
    const NodeId c = cluster_index[static_cast<std::size_t>(owner)];
    result.bits[static_cast<std::size_t>(c)].push_back(
        beacon_bits.next_bit());
  }
  int max_gathered = 0;
  for (const auto& bits : result.bits) {
    max_gathered = std::max(max_gathered, static_cast<int>(bits.size()));
  }
  result.rounds_charged += ruling.beta + max_gathered;

  // Step 4: isolation flags (a cluster with no neighboring cluster).
  result.isolated.assign(num_clusters, true);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId ov = result.owner[static_cast<std::size_t>(v)];
    for (const NodeId u : g.neighbors(v)) {
      const NodeId ou = result.owner[static_cast<std::size_t>(u)];
      if (ou != ov) {
        result.isolated[static_cast<std::size_t>(
            cluster_index[static_cast<std::size_t>(ov)])] = false;
      }
    }
  }
  result.rounds_charged += 1;

  result.min_bits_non_isolated = -1;
  for (std::size_t c = 0; c < num_clusters; ++c) {
    if (result.isolated[c]) continue;
    const int have = static_cast<int>(result.bits[c].size());
    if (result.min_bits_non_isolated < 0 ||
        have < result.min_bits_non_isolated) {
      result.min_bits_non_isolated = have;
    }
  }
  return result;
}

}  // namespace rlocal
