// Theorem 3.1 and Theorem 3.7: network decomposition when the only
// randomness is one private bit per beacon, with a beacon within h hops of
// every node.
//
// Theorem 3.1 pipeline (Lemmas 3.2 + 3.3):
//   1. gather_cluster_bits: deterministic ruling-set clustering; every
//      non-isolated cluster center ends up holding its beacons' bits;
//   2. contract clusters into the logical cluster graph CG;
//   3. run the multi-phase Elkin-Neiman construction on CG, each logical
//      vertex drawing its shifts from its own finite bit pool;
//   4. lift the CG decomposition back to G (strong diameter, congestion 1);
//      isolated clusters become their own color-0 clusters.
//   => (O(log n), h * poly(log n)) decomposition.
//
// Theorem 3.7 pipeline (removes the h factor from the diameter):
//   1. gather bits as above (O(log^4 n) per cluster in the paper);
//   2. each cluster turns its pool into a k-wise generator and shares it
//      cluster-internally (bits independent across clusters);
//   3. run the Theorem 3.6 phase/epoch construction directly on G, nodes
//      drawing through their cluster's generator.
//   => strong-diameter (O(log n), O(log^2 n)) decomposition.
#pragma once

#include "decomp/beacons.hpp"
#include "decomp/decomposition.hpp"
#include "decomp/shared_congest.hpp"
#include "graph/graph.hpp"

namespace rlocal {

struct OneBitOptions {
  /// Bits each non-isolated cluster must gather; 0 -> 2 * ceil(log2 n)^2
  /// (the Lemma 3.3 budget, with a bench-scale constant).
  int bits_per_cluster = 0;
  /// Ruling-set separation; 0 -> the paper's 10 * k * h (often larger than
  /// bench graphs; experiments pass a smaller value and *measure* the
  /// gathered-bit shortfall instead -- see EXPERIMENTS.md).
  int h_prime = 0;
  int en_phases = 0;  ///< phases for the cluster-graph EN; 0 -> default
  SharedCongestOptions congest;  ///< Theorem 3.7 inner options
};

struct OneBitResult {
  Decomposition decomposition;
  bool all_clustered = false;
  bool success = false;  ///< all clustered and no bit pool ran dry
  int colors = 0;
  int rounds_charged = 0;
  int num_clusters = 0;          ///< Lemma 3.2 clusters
  int num_isolated = 0;
  int min_bits_gathered = -1;    ///< over non-isolated clusters
  int exhausted_draws = 0;       ///< draws served after a pool ran dry
  int cluster_radius_bound = 0;  ///< Lemma 3.2 radius bound
};

/// Theorem 3.1.
OneBitResult one_bit_decomposition(const Graph& g,
                                   const BeaconPlacement& placement,
                                   BitSource& beacon_bits,
                                   const OneBitOptions& options = {});

/// Theorem 3.7.
OneBitResult one_bit_strong_decomposition(const Graph& g,
                                          const BeaconPlacement& placement,
                                          BitSource& beacon_bits,
                                          const OneBitOptions& options = {});

}  // namespace rlocal
