// Regime (A) of the paper: randomness exists only at a sparse set S of
// "beacon" nodes, each holding a single private random bit, with the promise
// that every node has a beacon within h = poly(log n) hops (Theorems 3.1,
// 3.7; Lemmas 3.2, 3.3).
//
// This file provides beacon placements (the adversary's choice) and the
// Lemma 3.2 construction: a deterministic CONGEST clustering via an
// (h', h' log n)-ruling set, h' = 10kh, such that every non-isolated cluster
// provably contains >= k beacons, whose bits are up-cast to the cluster
// center.
#pragma once

#include <vector>

#include "decomp/ruling_set.hpp"
#include "graph/graph.hpp"
#include "rnd/bitsource.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

struct BeaconPlacement {
  std::vector<NodeId> beacons;
  int h = 0;  ///< promised covering radius
};

/// Greedy h-dominating set in ascending-id order (dense placement).
BeaconPlacement place_beacons_greedy(const Graph& g, int h);

/// Farthest-first traversal: close to the sparsest placement that still
/// honors the h-hop promise (the adversarial end of the spectrum).
BeaconPlacement place_beacons_sparse(const Graph& g, int h);

/// Random placement, repaired greedily to honor the promise.
BeaconPlacement place_beacons_random(const Graph& g, int h, double density,
                                     std::uint64_t seed);

/// True iff every node has a beacon within h hops.
bool placement_covers(const Graph& g, const BeaconPlacement& placement);

/// Lemma 3.2 output: disjoint connected clusters, each either isolated
/// (property A) or holding the gathered beacon bits at its center
/// (property B).
struct BitGatheringResult {
  std::vector<NodeId> centers;            ///< ruling-set cluster centers
  std::vector<NodeId> owner;              ///< per node: its cluster center
  std::vector<NodeId> parent;             ///< BFS-tree parent toward center
  std::vector<std::int32_t> dist;         ///< distance to own center
  std::vector<std::vector<bool>> bits;    ///< per center: gathered bits
  std::vector<bool> isolated;             ///< per center: no neighbor cluster
  int h_prime = 0;                        ///< ruling-set separation used
  int cluster_radius_bound = 0;           ///< h' * id-bits
  int rounds_charged = 0;
  int min_bits_non_isolated = 0;          ///< measured Lemma 3.2 property
};

/// Gathers beacon bits per Lemma 3.2. `k` is the number of bits each
/// non-isolated cluster must hold; `h_prime` <= 0 selects the paper's
/// 10 * k * h. Beacon bits are drawn i.i.d. from `beacon_bits` (one per
/// beacon, honoring the model).
BitGatheringResult gather_cluster_bits(const Graph& g,
                                       const BeaconPlacement& placement,
                                       int k, BitSource& beacon_bits,
                                       int h_prime = 0);

}  // namespace rlocal
