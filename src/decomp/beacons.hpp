// Regime (A) of the paper: randomness exists only at a sparse set S of
// "beacon" nodes, each holding a single private random bit, with the promise
// that every node has a beacon within h = poly(log n) hops (Theorems 3.1,
// 3.7; Lemmas 3.2, 3.3).
//
// This file provides beacon placements (the adversary's choice) and the
// Lemma 3.2 construction: a deterministic CONGEST clustering via an
// (h', h' log n)-ruling set, h' = 10kh, such that every non-isolated cluster
// provably contains >= k beacons, whose bits are up-cast to the cluster
// center.
#pragma once

#include <string>
#include <vector>

#include "decomp/ruling_set.hpp"
#include "graph/graph.hpp"
#include "rnd/bitsource.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

struct BeaconPlacement {
  std::vector<NodeId> beacons;
  int h = 0;  ///< promised covering radius
};

/// Greedy h-dominating set in ascending-id order (dense placement).
BeaconPlacement place_beacons_greedy(const Graph& g, int h);

/// Farthest-first traversal: close to the sparsest placement that still
/// honors the h-hop promise (the adversarial end of the spectrum).
BeaconPlacement place_beacons_sparse(const Graph& g, int h);

/// Random placement, repaired greedily to honor the promise.
BeaconPlacement place_beacons_random(const Graph& g, int h, double density,
                                     std::uint64_t seed);

/// Adversarially *clustered* placement: the whole beacon budget is dumped
/// into one tight ball (around the smallest-identifier node), then repaired
/// greedily so the h-hop promise still holds -- the "many wasted bits in
/// one region, bare minimum elsewhere" end of the spectrum, complementing
/// the farthest-first adversary. Deterministic in (graph, h).
BeaconPlacement place_beacons_clustered(const Graph& g, int h);

/// True iff every node has a beacon within h hops.
bool placement_covers(const Graph& g, const BeaconPlacement& placement);

// ---- Placement registry ---------------------------------------------------
//
// Named strategies, so adversarial placements are a first-class sweep axis
// (ROADMAP open item): solver params carry the numeric id (ParamMaps are
// numeric), benches and docs use the names. `random` additionally reads a
// `density` knob.

struct PlacementStrategyInfo {
  int id;
  const char* name;
  const char* summary;
  /// The strategy itself; `density`/`seed` are read by `random` only. The
  /// registry table is the single id -> strategy source of truth.
  BeaconPlacement (*place)(const Graph& g, int h, double density,
                           std::uint64_t seed);
};

/// All registered strategies, in id order:
///   0 deterministic          greedy h-dominating set (dense, id order)
///   1 adversarial_far        farthest-first traversal (sparsest legal)
///   2 random                 i.i.d. density + greedy repair
///   3 adversarial_clustered  one tight ball + greedy repair
const std::vector<PlacementStrategyInfo>& beacon_placement_registry();

/// Name -> id; throws InvariantError on unknown names.
int beacon_placement_id(const std::string& name);
/// Id -> name; throws InvariantError on unknown ids.
const char* beacon_placement_name(int id);

/// Runs strategy `id`. `density` and `seed` are read by `random` only.
BeaconPlacement place_beacons(int id, const Graph& g, int h, double density,
                              std::uint64_t seed);

/// Lemma 3.2 output: disjoint connected clusters, each either isolated
/// (property A) or holding the gathered beacon bits at its center
/// (property B).
struct BitGatheringResult {
  std::vector<NodeId> centers;            ///< ruling-set cluster centers
  std::vector<NodeId> owner;              ///< per node: its cluster center
  std::vector<NodeId> parent;             ///< BFS-tree parent toward center
  std::vector<std::int32_t> dist;         ///< distance to own center
  std::vector<std::vector<bool>> bits;    ///< per center: gathered bits
  std::vector<bool> isolated;             ///< per center: no neighbor cluster
  int h_prime = 0;                        ///< ruling-set separation used
  int cluster_radius_bound = 0;           ///< h' * id-bits
  int rounds_charged = 0;
  int min_bits_non_isolated = 0;          ///< measured Lemma 3.2 property
};

/// Gathers beacon bits per Lemma 3.2. `k` is the number of bits each
/// non-isolated cluster must hold; `h_prime` <= 0 selects the paper's
/// 10 * k * h. Beacon bits are drawn i.i.d. from `beacon_bits` (one per
/// beacon, honoring the model).
BitGatheringResult gather_cluster_bits(const Graph& g,
                                       const BeaconPlacement& placement,
                                       int k, BitSource& beacon_bits,
                                       int h_prime = 0);

}  // namespace rlocal
