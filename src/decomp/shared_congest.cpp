#include "decomp/shared_congest.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "sim/programs/top_two.hpp"
#include "support/math.hpp"

namespace rlocal {

namespace {

/// Number of epochs so the sampling probability reaches 1: smallest p with
/// 2^p * logn / n >= 1 (plus one warm-up epoch).
int epochs_for(NodeId n, int logn) {
  int p = 1;
  while (std::ldexp(static_cast<double>(logn), p) <
         static_cast<double>(n)) {
    ++p;
  }
  return p + 1;
}

/// Counts, for every live node, how many centers reach it (analysis-only
/// instrumentation for the paper's O(log n) reach bound).
int measure_reach(const Graph& g, const std::vector<std::int32_t>& start,
                  const std::vector<bool>& live) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> reach(n, 0);
  std::vector<std::int32_t> dist(n, -1);
  std::deque<NodeId> queue;
  for (NodeId c = 0; c < g.num_nodes(); ++c) {
    const std::int32_t budget = start[static_cast<std::size_t>(c)];
    if (budget < 0) continue;
    // BFS from c within the live subgraph, bounded by `budget` hops.
    std::vector<NodeId> touched;
    dist[static_cast<std::size_t>(c)] = 0;
    touched.push_back(c);
    queue.assign(1, c);
    ++reach[static_cast<std::size_t>(c)];
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      if (dist[static_cast<std::size_t>(v)] == budget) continue;
      for (const NodeId u : g.neighbors(v)) {
        if (!live[static_cast<std::size_t>(u)] ||
            dist[static_cast<std::size_t>(u)] != -1) {
          continue;
        }
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        touched.push_back(u);
        ++reach[static_cast<std::size_t>(u)];
        queue.push_back(u);
      }
    }
    for (const NodeId t : touched) dist[static_cast<std::size_t>(t)] = -1;
  }
  int max_reach = 0;
  for (const int r : reach) max_reach = std::max(max_reach, r);
  return max_reach;
}

}  // namespace

void EpochRandomness::center_coins(std::span<const NodeId> nodes, int phase,
                                   int epoch, double q,
                                   std::span<std::uint8_t> out) {
  RLOCAL_CHECK(out.size() >= nodes.size(),
               "center_coins output span is shorter than the node span");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = center_coin(nodes[i], phase, epoch, q) ? 1 : 0;
  }
}

void EpochRandomness::radius_draws(std::span<const NodeId> nodes, int phase,
                                   int epoch, int cap, std::span<int> out) {
  RLOCAL_CHECK(out.size() >= nodes.size(),
               "radius_draws output span is shorter than the node span");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = radius_draw(nodes[i], phase, epoch, cap);
  }
}

int shared_congest_epochs(NodeId n) {
  return epochs_for(n, log2n(static_cast<std::uint64_t>(
                            std::max<NodeId>(2, n))));
}

SharedCongestResult shared_congest_core(const Graph& g, EpochRandomness& rnd,
                                        const SharedCongestOptions& options) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const int logn = log2n(static_cast<std::uint64_t>(
      std::max<NodeId>(2, g.num_nodes())));
  const int phases = options.phases > 0 ? options.phases : 8 * logn;
  const int c = std::max(1, options.radius_scale);
  const int epochs = epochs_for(g.num_nodes(), logn);
  const int radius_cap = c * logn;  // w.h.p. bound on X_u

  SharedCongestResult result;
  result.epochs_per_phase = epochs;

  std::vector<NodeId> owner(n, -1);
  std::vector<int> color(n, -1);
  std::vector<NodeId> parent(n, -1);
  std::vector<bool> clustered(n, false);
  std::size_t clustered_count = 0;

  std::unordered_map<std::uint64_t, NodeId> node_of_id;
  node_of_id.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) node_of_id[g.id(v)] = v;

  std::vector<bool> live(n);
  std::vector<std::int32_t> start(n);
  // Election scratch, hoisted out of the phase loop: the live set, its
  // coins, the elected centers, and their radii (batched draws).
  std::vector<NodeId> live_nodes;
  std::vector<std::uint8_t> coins;
  std::vector<NodeId> centers;
  std::vector<int> radii;
  for (int phase = 0; phase < phases && clustered_count < n; ++phase) {
    result.phases_used = phase + 1;
    // Live = unclustered nodes; set-aside nodes leave `live` mid-phase.
    for (std::size_t v = 0; v < n; ++v) live[v] = !clustered[v];

    for (int epoch = 1; epoch <= epochs; ++epoch) {
      const int base_radius = (epochs - epoch) * c * logn;
      const double q = std::min(
          1.0, std::ldexp(static_cast<double>(logn), epoch) /
                   static_cast<double>(g.num_nodes()));
      // Election, batched: one coins draw over the whole live set, then one
      // radii draw over the elected centers. Draws are pure functions of
      // (node, phase, epoch), so this produces exactly the per-node values
      // of the scalar interleaved loop.
      live_nodes.clear();
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        start[static_cast<std::size_t>(v)] = -1;
        if (live[static_cast<std::size_t>(v)]) live_nodes.push_back(v);
      }
      coins.resize(live_nodes.size());
      rnd.center_coins(live_nodes, phase, epoch, q, coins);
      centers.clear();
      for (std::size_t i = 0; i < live_nodes.size(); ++i) {
        if (coins[i] != 0) centers.push_back(live_nodes[i]);
      }
      radii.resize(centers.size());
      rnd.radius_draws(centers, phase, epoch, radius_cap, radii);
      const bool any_center = !centers.empty();
      for (std::size_t i = 0; i < centers.size(); ++i) {
        const NodeId v = centers[i];
        const int x = radii[i];
        RLOCAL_CHECK(x >= 1 && x <= radius_cap, "radius outside [1, cap]");
        result.max_radius_drawn = std::max(result.max_radius_drawn, x);
        start[static_cast<std::size_t>(v)] =
            static_cast<std::int32_t>(base_radius + x);
        RLOCAL_CHECK(start[static_cast<std::size_t>(v)] < (1 << 16),
                     "measure exceeds wire format");
      }
      result.rounds_charged += 1;  // the election round
      if (!any_center) continue;

      if (options.collect_reach_stats) {
        result.max_centers_reaching = std::max(
            result.max_centers_reaching, measure_reach(g, start, live));
      }

      const TopTwoResult measures = reference_top_two(g, start, live);
      result.rounds_charged += base_radius + radius_cap + 2;

      // Decide: join (remove from live + phase color), set aside (remove
      // from live for this phase), or continue unreached.
      std::vector<NodeId> joined;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!live[static_cast<std::size_t>(v)]) continue;
        const MeasureEntry& best =
            measures.best[static_cast<std::size_t>(v)];
        if (!best.present()) continue;  // unreached; next epoch
        const MeasureEntry& sec =
            measures.second[static_cast<std::size_t>(v)];
        const std::int32_t m1 = best.value;
        const std::int32_t m2 = sec.present() ? sec.value : 0;
        if (m1 - m2 > 1) {
          const auto it = node_of_id.find(best.origin_id);
          RLOCAL_ASSERT(it != node_of_id.end());
          owner[static_cast<std::size_t>(v)] = it->second;
          color[static_cast<std::size_t>(v)] = phase;
          joined.push_back(v);
        } else {
          live[static_cast<std::size_t>(v)] = false;  // set aside
        }
      }
      // Tree parents within this epoch's live set (same argument as EN).
      for (const NodeId v : joined) {
        const NodeId o = owner[static_cast<std::size_t>(v)];
        if (o == v) continue;
        const std::int32_t m1 =
            measures.best[static_cast<std::size_t>(v)].value;
        NodeId chosen = -1;
        for (const NodeId u : g.neighbors(v)) {
          // Only nodes live in this epoch carry measures; the parent must
          // have joined the same cluster in this epoch.
          const MeasureEntry& ub =
              measures.best[static_cast<std::size_t>(u)];
          if (ub.present() && ub.origin_id == g.id(o) &&
              ub.value == m1 + 1 &&
              owner[static_cast<std::size_t>(u)] == o &&
              color[static_cast<std::size_t>(u)] == phase) {
            chosen = u;
            break;
          }
        }
        RLOCAL_ASSERT(chosen != -1);
        parent[static_cast<std::size_t>(v)] = chosen;
      }
      for (const NodeId v : joined) {
        live[static_cast<std::size_t>(v)] = false;
        clustered[static_cast<std::size_t>(v)] = true;
        ++clustered_count;
      }
    }
  }

  result.all_clustered = clustered_count == n;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!clustered[static_cast<std::size_t>(v)]) {
      result.unclustered.push_back(v);
    }
  }
  result.decomposition = decomposition_from_labels(
      g, owner, color, parent, /*allow_partial=*/!result.all_clustered);
  result.decomposition.num_colors = result.phases_used;
  return result;
}

namespace {

class RegimeEpochRandomness final : public EpochRandomness {
 public:
  explicit RegimeEpochRandomness(NodeRandomness& rnd, int epochs)
      : rnd_(&rnd), epochs_(epochs) {}

  bool center_coin(NodeId node, int phase, int epoch, double q) override {
    return rnd_->bernoulli(static_cast<std::uint64_t>(node),
                           stream(phase, epoch, 0), q);
  }
  int radius_draw(NodeId node, int phase, int epoch, int cap) override {
    return rnd_->geometric(static_cast<std::uint64_t>(node),
                           stream(phase, epoch, 1), cap);
  }

  // Whole-epoch draws ride the batch randomness plane (one gather per
  // epoch instead of one Horner chain per node); byte-identical to the
  // scalar entry points above by the BatchedDraws identity guarantee.
  void center_coins(std::span<const NodeId> nodes, int phase, int epoch,
                    double q, std::span<std::uint8_t> out) override {
    widen(nodes);
    rnd_->bernoulli_batch(nodes64_, stream(phase, epoch, 0), q, out);
  }
  void radius_draws(std::span<const NodeId> nodes, int phase, int epoch,
                    int cap, std::span<int> out) override {
    widen(nodes);
    rnd_->geometric_batch(nodes64_, stream(phase, epoch, 1), cap, out);
  }

 private:
  void widen(std::span<const NodeId> nodes) {
    nodes64_.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes64_[i] = static_cast<std::uint64_t>(nodes[i]);
    }
  }
  std::uint64_t stream(int phase, int epoch, int which) const {
    return (static_cast<std::uint64_t>(phase) *
                static_cast<std::uint64_t>(epochs_ + 1) +
            static_cast<std::uint64_t>(epoch)) *
               2 +
           static_cast<std::uint64_t>(which);
  }
  NodeRandomness* rnd_;
  int epochs_;
  std::vector<std::uint64_t> nodes64_;  ///< reused NodeId -> u64 widening
};

}  // namespace

SharedCongestResult shared_randomness_decomposition(
    const Graph& g, NodeRandomness& rnd,
    const SharedCongestOptions& options) {
  const int logn = log2n(static_cast<std::uint64_t>(
      std::max<NodeId>(2, g.num_nodes())));
  RegimeEpochRandomness provider(rnd, epochs_for(g.num_nodes(), logn));
  return shared_congest_core(g, provider, options);
}

}  // namespace rlocal
