#include "decomp/elkin_neiman.hpp"

#include <algorithm>
#include <unordered_map>

#include "rnd/prng.hpp"
#include "sim/programs/top_two.hpp"
#include "support/math.hpp"

namespace rlocal {

EnResult elkin_neiman_core(const Graph& g, const ShiftBatchDrawer& draw,
                           const EnOptions& options) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const int logn = log2n(static_cast<std::uint64_t>(
      std::max<NodeId>(2, g.num_nodes())));
  const int phases = options.phases > 0 ? options.phases : 10 * logn;
  const int cap = options.shift_cap > 0 ? options.shift_cap : 10 * logn;
  RLOCAL_CHECK(cap >= 1 && cap < (1 << 16), "shift cap out of range");

  EnResult result;
  result.shift_cap = cap;
  std::vector<NodeId> owner(n, -1);
  std::vector<int> color(n, -1);
  std::vector<NodeId> parent(n, -1);
  std::vector<bool> live(n, true);
  std::size_t live_count = n;

  // Origin identifiers -> node index, for decoding top-two results.
  std::unordered_map<std::uint64_t, NodeId> node_of_id;
  node_of_id.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) node_of_id[g.id(v)] = v;

  std::vector<std::int32_t> start(n);
  // Phase-batched shift draws: the live set is gathered once per phase and
  // handed to the drawer whole, so regime-backed drawers run one
  // geometric_batch instead of a Horner chain per node (values are
  // byte-identical to the per-node loop -- each node's shift is a pure
  // function of (node, phase)).
  std::vector<NodeId> live_nodes;
  std::vector<int> shifts;
  live_nodes.reserve(n);
  shifts.reserve(n);
  for (int phase = 0; phase < phases && live_count > 0; ++phase) {
    result.phases_used = phase + 1;
    live_nodes.clear();
    std::int64_t live_degree_sum = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (live[static_cast<std::size_t>(v)]) {
        live_nodes.push_back(v);
        live_degree_sum += g.degree(v);
      } else {
        start[static_cast<std::size_t>(v)] = -1;
      }
    }
    shifts.resize(live_nodes.size());
    draw(live_nodes, phase, cap, shifts);
    for (std::size_t i = 0; i < live_nodes.size(); ++i) {
      const int shift = shifts[i];
      RLOCAL_CHECK(shift >= 1 && shift <= cap, "shift outside [1, cap]");
      start[static_cast<std::size_t>(live_nodes[i])] = shift;
      result.max_shift = std::max(result.max_shift, shift);
      result.shift_bits += static_cast<std::uint64_t>(shift);
    }

    EngineOptions engine_options;
    engine_options.bandwidth_bits = options.bandwidth_bits;
    if (options.faults.enabled()) {
      engine_options.faults = options.faults;
      engine_options.fault_seed =
          mix3(options.fault_seed, static_cast<std::uint64_t>(phase),
               0x656E666C74ULL);  // "enflt"
    }
    const TopTwoResult measures =
        options.use_engine
            ? run_top_two(g, start, live, cap + 1, engine_options)
            : reference_top_two(g, start, live);
    result.rounds_charged += cap + 2;  // propagation + join decision
    // Model worst case matching the charged rounds: every live node may
    // broadcast its top-two in each of the (cap + 1) propagation rounds.
    const std::int64_t phase_messages =
        static_cast<std::int64_t>(cap + 1) * live_degree_sum;
    result.analytic_messages += phase_messages;
    result.analytic_bits +=
        phase_messages * 2 * top_two_entry_bits(g.num_nodes());

    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!live[static_cast<std::size_t>(v)]) continue;
      const MeasureEntry& best = measures.best[static_cast<std::size_t>(v)];
      RLOCAL_ASSERT(best.present());  // own offer always reaches v
      const std::int32_t m1 = best.value;
      const MeasureEntry& sec = measures.second[static_cast<std::size_t>(v)];
      const std::int32_t m2 = sec.present() ? sec.value : 0;
      if (m1 - m2 > 1) {
        const auto it = node_of_id.find(best.origin_id);
        RLOCAL_ASSERT(it != node_of_id.end());
        owner[static_cast<std::size_t>(v)] = it->second;
        color[static_cast<std::size_t>(v)] = phase;
      }
    }
    // Second pass: tree parents. For a clustered non-center v with measure
    // m1 and origin o, some live neighbor u has best (o, m1 + 1) and is
    // clustered with the same origin (see header); pick the smallest such.
    // Under faults that propagation invariant can break -- v's offer
    // arrived over a wire whose later updates were dropped, so no neighbor
    // still advertises (o, m1 + 1). Such nodes unjoin and stay live for
    // the next phase (degraded coverage is exactly what the quality score
    // measures), and the fixed-point loop cascades the unjoin to nodes
    // whose only candidate parents unjoined. On a reliable network one
    // iteration suffices and an unjoin is an invariant violation.
    bool reparent = true;
    while (reparent) {
      reparent = false;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!live[static_cast<std::size_t>(v)]) continue;
        const NodeId o = owner[static_cast<std::size_t>(v)];
        if (o == -1 || o == v) continue;
        const NodeId p = parent[static_cast<std::size_t>(v)];
        if (p != -1 && owner[static_cast<std::size_t>(p)] == o) continue;
        const std::int32_t m1 =
            measures.best[static_cast<std::size_t>(v)].value;
        NodeId chosen = -1;
        for (const NodeId u : g.neighbors(v)) {
          if (!live[static_cast<std::size_t>(u)]) continue;
          const MeasureEntry& ub =
              measures.best[static_cast<std::size_t>(u)];
          if (ub.present() && ub.origin_id == g.id(o) &&
              ub.value == m1 + 1 && owner[static_cast<std::size_t>(u)] == o) {
            chosen = u;
            break;
          }
        }
        RLOCAL_ASSERT(chosen != -1 || options.faults.enabled());
        if (chosen == -1) {
          owner[static_cast<std::size_t>(v)] = -1;
          color[static_cast<std::size_t>(v)] = -1;
        }
        parent[static_cast<std::size_t>(v)] = chosen;
        reparent = true;
      }
    }
    // Retire this phase's clustered nodes.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (live[static_cast<std::size_t>(v)] &&
          owner[static_cast<std::size_t>(v)] != -1) {
        live[static_cast<std::size_t>(v)] = false;
        --live_count;
      }
    }
  }

  result.all_clustered = live_count == 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (live[static_cast<std::size_t>(v)]) result.unclustered.push_back(v);
  }
  result.decomposition = decomposition_from_labels(
      g, owner, color, parent, /*allow_partial=*/!result.all_clustered);
  result.decomposition.num_colors = result.phases_used;
  return result;
}

EnResult elkin_neiman_core(const Graph& g, const ShiftDrawer& draw,
                           const EnOptions& options) {
  ShiftBatchDrawer batch = [&draw](std::span<const NodeId> nodes, int phase,
                                   int cap, std::span<int> out) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = draw(nodes[i], phase, cap);
    }
  };
  return elkin_neiman_core(g, batch, options);
}

EnResult elkin_neiman_decomposition(const Graph& g, NodeRandomness& rnd,
                                    const EnOptions& options) {
  std::vector<std::uint64_t> points;
  ShiftBatchDrawer drawer = [&rnd, &options, &points](
                                std::span<const NodeId> nodes, int phase,
                                int cap, std::span<int> out) {
    points.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      points[i] = static_cast<std::uint64_t>(nodes[i]);
    }
    rnd.geometric_batch(points,
                        options.stream_base +
                            static_cast<std::uint64_t>(phase),
                        cap, out);
  };
  return elkin_neiman_core(g, drawer, options);
}

}  // namespace rlocal
