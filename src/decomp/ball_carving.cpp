#include "decomp/ball_carving.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "cost/meter.hpp"
#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace rlocal {

BallCarvingResult ball_carving_decomposition(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  BallCarvingResult result;
  std::vector<NodeId> owner(n, -1);
  std::vector<int> color(n, -1);
  std::vector<NodeId> parent(n, -1);

  // Nodes still wanting a cluster, processed phase by phase.
  std::vector<bool> active(n, g.num_nodes() > 0);
  std::size_t remaining = n;

  // Node processing order: ascending identifier (deterministic and
  // independent of index layout).
  std::vector<NodeId> id_order(n);
  std::iota(id_order.begin(), id_order.end(), 0);
  std::sort(id_order.begin(), id_order.end(),
            [&g](NodeId a, NodeId b) { return g.id(a) < g.id(b); });

  int phase = 0;
  std::vector<bool> in_phase(n, false);
  std::vector<std::int32_t> dist(n, -1);
  while (remaining > 0) {
    RLOCAL_ASSERT(phase <= 2 * log2n(static_cast<std::uint64_t>(n)) + 2);
    // U := nodes available to this phase; D := nodes deferred to the next.
    for (std::size_t v = 0; v < n; ++v) in_phase[v] = active[v];
    for (const NodeId v : id_order) {
      if (!in_phase[static_cast<std::size_t>(v)]) continue;
      // This algorithm draws no randomness, so the sweep's per-cell
      // deadline reaches it here (per carve) instead of via the
      // NodeRandomness draw checkpoint.
      cost::checkpoint();
      // Grow a ball around v inside G[in_phase] while the next layer at
      // least doubles it.
      std::vector<NodeId> ball{v};
      std::vector<NodeId> boundary;
      dist[static_cast<std::size_t>(v)] = 0;
      parent[static_cast<std::size_t>(v)] = -1;
      std::size_t interior_end = 1;  // prefix of `ball` that is interior
      int radius = 0;
      std::deque<NodeId> frontier{v};
      while (true) {
        // Expand one layer.
        std::vector<NodeId> next_layer;
        for (const NodeId x : frontier) {
          for (const NodeId u : g.neighbors(x)) {
            if (!in_phase[static_cast<std::size_t>(u)]) continue;
            if (dist[static_cast<std::size_t>(u)] != -1) continue;
            dist[static_cast<std::size_t>(u)] =
                dist[static_cast<std::size_t>(x)] + 1;
            parent[static_cast<std::size_t>(u)] = x;
            next_layer.push_back(u);
          }
        }
        if (next_layer.empty()) {
          boundary.clear();
          break;  // ball swallowed its whole in-phase component
        }
        if (ball.size() + next_layer.size() >= 2 * ball.size()) {
          // Layer doubles the ball: absorb it and keep growing.
          for (const NodeId u : next_layer) ball.push_back(u);
          interior_end = ball.size();
          frontier.assign(next_layer.begin(), next_layer.end());
          ++radius;
        } else {
          boundary = std::move(next_layer);
          break;
        }
      }
      // Carve: interior becomes a cluster of this phase's color; boundary is
      // deferred; both leave the phase.
      result.max_ball_radius = std::max(result.max_ball_radius, radius);
      for (std::size_t i = 0; i < interior_end; ++i) {
        const NodeId u = ball[i];
        owner[static_cast<std::size_t>(u)] = v;
        color[static_cast<std::size_t>(u)] = phase;
        in_phase[static_cast<std::size_t>(u)] = false;
        active[static_cast<std::size_t>(u)] = false;
        --remaining;
      }
      for (const NodeId u : boundary) {
        in_phase[static_cast<std::size_t>(u)] = false;  // deferred
      }
      // Reset scratch distances for the touched nodes.
      for (const NodeId u : ball) dist[static_cast<std::size_t>(u)] = -1;
      for (const NodeId u : boundary) dist[static_cast<std::size_t>(u)] = -1;
    }
    ++phase;
  }
  result.phases = phase;
  // Owner of a center must be itself; parents inside carved balls point one
  // layer toward the center and never leave the ball (they were assigned
  // during the ball's own BFS). Boundary nodes had parents assigned during
  // some ball's BFS but were deferred; their labels get overwritten when
  // they are carved later, so reset stale parents of centers only.
  for (std::size_t v = 0; v < n; ++v) {
    if (owner[v] == static_cast<NodeId>(v)) parent[v] = -1;
  }
  result.decomposition =
      decomposition_from_labels(g, owner, color, parent, false);
  return result;
}

SmallComponentsResult decompose_components_by_gathering(const Graph& g) {
  SmallComponentsResult result;
  const Components comps = connected_components(g);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<NodeId>> members(
      static_cast<std::size_t>(comps.count));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    members[static_cast<std::size_t>(
                comps.component[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  std::vector<NodeId> owner(n, -1);
  std::vector<int> color(n, -1);
  std::vector<NodeId> parent(n, -1);
  int colors = 0;
  int max_diam = 0;
  for (const auto& comp_nodes : members) {
    const InducedSubgraph sub = induced_subgraph(g, comp_nodes);
    max_diam = std::max(max_diam, diameter(sub.graph));
    const BallCarvingResult carved = ball_carving_decomposition(sub.graph);
    colors = std::max(colors, carved.phases);
    for (const auto& cluster : carved.decomposition.clusters) {
      for (const NodeId local : cluster.members) {
        const NodeId global = sub.origin[static_cast<std::size_t>(local)];
        owner[static_cast<std::size_t>(global)] =
            sub.origin[static_cast<std::size_t>(cluster.center)];
        color[static_cast<std::size_t>(global)] = cluster.color;
      }
      for (const auto& [child, par] : cluster.tree_edges) {
        parent[static_cast<std::size_t>(
            sub.origin[static_cast<std::size_t>(child)])] =
            sub.origin[static_cast<std::size_t>(par)];
      }
    }
  }
  result.decomposition =
      decomposition_from_labels(g, owner, color, parent, false);
  result.colors = colors;
  result.rounds_charged = max_diam + 2;
  return result;
}

}  // namespace rlocal
