// Deterministic sequential ball-carving network decomposition.
//
// This is the classic ball-growing argument (Awerbuch-Peleg / Linial-Saks
// style): within a phase, repeatedly grow a ball from an arbitrary live node
// until the next BFS layer would double it (possible for at most log2 n
// steps), carve the interior as a cluster of this phase's color, and defer
// the boundary layer to the next phase. Boundaries are at most half of a
// phase's nodes, so O(log n) phases/colors suffice; carved balls have strong
// radius <= log2 n. Same-phase clusters are non-adjacent because each carve
// removes its boundary from the phase.
//
// Role in this library: it is the deterministic substrate standing in for
// the Panconesi-Srinivasan [PS92] / Ghaffari [Gha19] deterministic
// decompositions, used (a) on the poly(log n)-size leftover cluster graphs
// of the Theorem 4.2 shattering pipeline after gathering them at a leader,
// (b) as an SLOCAL algorithm with locality O(log n) (it reads only
// O(log n)-radius balls), and (c) as a baseline in experiments.
#pragma once

#include "decomp/decomposition.hpp"
#include "graph/graph.hpp"

namespace rlocal {

struct BallCarvingResult {
  Decomposition decomposition;
  int phases = 0;           ///< colors used
  int max_ball_radius = 0;  ///< max carved-ball radius (<= log2 n)
};

/// Deterministic; node order inside phases follows ascending identifiers.
BallCarvingResult ball_carving_decomposition(const Graph& g);

/// Runs ball carving independently inside every connected component, then
/// reuses one palette across components (components cannot conflict). As a
/// LOCAL-model algorithm this costs O(max component diameter) rounds
/// (gather + local computation + scatter) -- the gather-and-solve
/// substitution documented in DESIGN.md.
struct SmallComponentsResult {
  Decomposition decomposition;
  int colors = 0;
  int rounds_charged = 0;  ///< max component diameter + 2
};
SmallComponentsResult decompose_components_by_gathering(const Graph& g);

}  // namespace rlocal
