// Network decompositions (Section 2 of the paper): a partition of V into
// clusters, each with a spanning subtree of G and a color, such that
// same-color clusters are non-adjacent. The tree of a cluster may pass
// through nodes outside the cluster (weak diameter); congestion counts how
// many trees of one color touch a node. A strong-diameter decomposition has
// every tree contained in its own cluster (congestion 1 is then immediate).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace rlocal {

struct Cluster {
  NodeId center = -1;                ///< designated center (a member)
  int color = -1;                    ///< 0-based cluster color
  std::vector<NodeId> members;       ///< nodes owned by this cluster
  std::vector<NodeId> tree_nodes;    ///< nodes of the spanning tree T_i
  std::vector<std::pair<NodeId, NodeId>> tree_edges;  ///< edges of T_i
};

struct Decomposition {
  std::vector<Cluster> clusters;
  int num_colors = 0;
  std::vector<NodeId> cluster_of;  ///< per node: cluster index, or -1
};

/// Result of checking every requirement of Definition "network
/// decomposition" plus the measured parameters.
struct ValidationReport {
  bool valid = false;
  std::string error;               ///< first violated requirement, if any
  int colors_used = 0;
  int max_tree_diameter = 0;       ///< max over clusters (hop diameter of T_i)
  int max_cluster_size = 0;
  int max_congestion = 0;          ///< max clusters-of-one-color per node
  bool strong_diameter = false;    ///< every tree confined to its cluster
};

/// Validates that `d` is a proper (max_tree_diameter, colors_used)
/// decomposition of `g` and measures its parameters.
ValidationReport validate_decomposition(const Graph& g,
                                        const Decomposition& d);

/// Builds a Decomposition from per-node labels:
///   owner[v]  -- center node of v's cluster (owner[center] == center), or
///                -1 for "not clustered" (allowed only if allow_partial);
///   color[v]  -- color of v's cluster (must agree across the cluster);
///   parent[v] -- a neighbor one step toward the center along the cluster's
///                tree (-1 at centers). Parents must stay inside the cluster
///                (strong diameter construction).
Decomposition decomposition_from_labels(const Graph& g,
                                        const std::vector<NodeId>& owner,
                                        const std::vector<int>& color,
                                        const std::vector<NodeId>& parent,
                                        bool allow_partial = false);

/// Nodes with cluster_of == -1 (empty when the decomposition is total).
std::vector<NodeId> unclustered_nodes(const Decomposition& d);

}  // namespace rlocal
