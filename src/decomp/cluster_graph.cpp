#include "decomp/cluster_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "graph/algorithms.hpp"

namespace rlocal {

ClusterGraph build_cluster_graph(const Graph& g,
                                 const std::vector<NodeId>& owner) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  RLOCAL_CHECK(owner.size() == n, "owner size mismatch");
  ClusterGraph cg;
  cg.cluster_of.assign(n, -1);

  // Enumerate centers in ascending base-node order for determinism.
  std::map<NodeId, NodeId> index_of_center;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId o = owner[static_cast<std::size_t>(v)];
    if (o == -1) continue;
    RLOCAL_CHECK(o >= 0 && o < g.num_nodes(), "owner out of range");
    RLOCAL_CHECK(owner[static_cast<std::size_t>(o)] == o,
                 "center must own itself");
    index_of_center.emplace(o, 0);
  }
  cg.center.reserve(index_of_center.size());
  for (auto& [center, index] : index_of_center) {
    index = static_cast<NodeId>(cg.center.size());
    cg.center.push_back(center);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId o = owner[static_cast<std::size_t>(v)];
    if (o != -1) {
      cg.cluster_of[static_cast<std::size_t>(v)] = index_of_center[o];
    }
  }

  Graph::Builder builder(static_cast<NodeId>(cg.center.size()));
  // Cluster vertex ids: the identifier of the center (unique by uniqueness
  // of base ids), so cluster-level tie-breaks match center-id tie-breaks.
  for (std::size_t c = 0; c < cg.center.size(); ++c) {
    builder.set_id(static_cast<NodeId>(c), g.id(cg.center[c]));
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId cv = cg.cluster_of[static_cast<std::size_t>(v)];
    if (cv == -1) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (u <= v) continue;  // each base edge once; Builder dedupes pairs
      const NodeId cu = cg.cluster_of[static_cast<std::size_t>(u)];
      if (cu != -1 && cu != cv) builder.add_edge(cv, cu);
    }
  }
  cg.graph = std::move(builder).build();

  // Radii: distance from each member to its center, measured inside the
  // cluster's node set (the Voronoi tree keeps clusters internally
  // connected, so this is finite).
  cg.radius.assign(cg.center.size(), 0);
  for (std::size_t c = 0; c < cg.center.size(); ++c) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (cg.cluster_of[static_cast<std::size_t>(v)] ==
          static_cast<NodeId>(c)) {
        members.push_back(v);
      }
    }
    const InducedSubgraph sub = induced_subgraph(g, members);
    NodeId local_center = -1;
    for (std::size_t i = 0; i < sub.origin.size(); ++i) {
      if (sub.origin[i] == cg.center[c]) {
        local_center = static_cast<NodeId>(i);
      }
    }
    RLOCAL_ASSERT(local_center != -1);
    const auto dist = bfs_distances(sub.graph, local_center);
    std::int32_t r = 0;
    for (const std::int32_t d : dist) {
      RLOCAL_CHECK(d != kUnreachable,
                   "cluster is not internally connected");
      r = std::max(r, d);
    }
    cg.radius[c] = r;
    cg.max_radius = std::max(cg.max_radius, static_cast<int>(r));
  }
  return cg;
}

Decomposition lift_decomposition(const Graph& g, const ClusterGraph& cg,
                                 const Decomposition& cd) {
  RLOCAL_CHECK(cd.cluster_of.size() ==
                   static_cast<std::size_t>(cg.graph.num_nodes()),
               "cluster decomposition does not match cluster graph");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Decomposition lifted;
  lifted.num_colors = cd.num_colors;
  lifted.cluster_of.assign(n, -1);

  // Reverse map: base members per cluster-graph vertex.
  std::vector<std::vector<NodeId>> members_of(
      static_cast<std::size_t>(cg.graph.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId cv = cg.cluster_of[static_cast<std::size_t>(v)];
    if (cv != -1) members_of[static_cast<std::size_t>(cv)].push_back(v);
  }

  for (std::size_t lc = 0; lc < cd.clusters.size(); ++lc) {
    const Cluster& logical = cd.clusters[lc];
    Cluster base;
    base.color = logical.color;
    // Union of the base members of every cluster-graph vertex in `logical`.
    std::vector<bool> in_union(n, false);
    for (const NodeId cv : logical.members) {
      for (const NodeId v : members_of[static_cast<std::size_t>(cv)]) {
        in_union[static_cast<std::size_t>(v)] = true;
      }
    }
    base.center = cg.center[static_cast<std::size_t>(logical.members[0])];
    if (logical.center >= 0) {
      base.center = cg.center[static_cast<std::size_t>(logical.center)];
    }
    // BFS inside the union from the base center to build the spanning tree.
    std::deque<NodeId> queue{base.center};
    std::vector<NodeId> parent(n, -1);
    std::vector<bool> visited(n, false);
    visited[static_cast<std::size_t>(base.center)] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      base.members.push_back(v);
      base.tree_nodes.push_back(v);
      if (v != base.center) {
        base.tree_edges.emplace_back(v, parent[static_cast<std::size_t>(v)]);
      }
      for (const NodeId u : g.neighbors(v)) {
        if (in_union[static_cast<std::size_t>(u)] &&
            !visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          parent[static_cast<std::size_t>(u)] = v;
          queue.push_back(u);
        }
      }
    }
    // The union must be internally connected (cluster-graph clusters are
    // connected and their edges witness base adjacency through members).
    std::size_t union_size = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_union[v]) ++union_size;
    }
    RLOCAL_CHECK(base.members.size() == union_size,
                 "lifted cluster union is not connected");
    const auto index = static_cast<NodeId>(lifted.clusters.size());
    for (const NodeId v : base.members) {
      lifted.cluster_of[static_cast<std::size_t>(v)] = index;
    }
    lifted.clusters.push_back(std::move(base));
  }
  return lifted;
}

}  // namespace rlocal
