#include "problems/conflict_free.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"

namespace rlocal {

namespace {

/// One size class of live edges, satisfied via conditional-expectation
/// phases; assigns colors starting at *next_color and advances it.
/// Edges are indices into h.edges.
void solve_class(const Hypergraph& h, const std::vector<int>& edge_indices,
                 double marking_prob, CfMulticoloring* out, int* next_color) {
  if (edge_indices.empty()) return;
  const double p = marking_prob;
  RLOCAL_ASSERT(p > 0.0 && p < 1.0);

  std::vector<int> live = edge_indices;
  // Per-vertex incidence within this class.
  std::vector<std::vector<int>> edges_of(
      static_cast<std::size_t>(h.num_vertices));
  std::vector<bool> touched(static_cast<std::size_t>(h.num_vertices), false);
  std::vector<std::int32_t> vertices;
  for (const int e : live) {
    for (const std::int32_t v : h.edges[static_cast<std::size_t>(e)]) {
      edges_of[static_cast<std::size_t>(v)].push_back(e);
      if (!touched[static_cast<std::size_t>(v)]) {
        touched[static_cast<std::size_t>(v)] = true;
        vertices.push_back(v);
      }
    }
  }
  std::sort(vertices.begin(), vertices.end());

  const int max_phases =
      32 * log2n(static_cast<std::uint64_t>(live.size()) + 1) + 32;
  // Per-edge state for the current phase.
  std::vector<int> marked_count(h.edges.size(), 0);
  std::vector<int> undecided_count(h.edges.size(), 0);
  std::vector<bool> is_live(h.edges.size(), false);
  for (const int e : live) is_live[static_cast<std::size_t>(e)] = true;

  for (int phase = 0; phase < max_phases && !live.empty(); ++phase) {
    const int color = (*next_color)++;
    for (const int e : live) {
      marked_count[static_cast<std::size_t>(e)] = 0;
      undecided_count[static_cast<std::size_t>(e)] =
          static_cast<int>(h.edges[static_cast<std::size_t>(e)].size());
    }
    // Exact P[e ends with exactly one marked | current state].
    auto edge_probability = [&](int e, int extra_marked,
                                int fewer_undecided) {
      const int a = marked_count[static_cast<std::size_t>(e)] + extra_marked;
      const int u =
          undecided_count[static_cast<std::size_t>(e)] - fewer_undecided;
      if (a >= 2) return 0.0;
      if (a == 1) return std::pow(1.0 - p, u);
      return u * p * std::pow(1.0 - p, u - 1);
    };
    // Greedy conditional expectations over the class's vertices.
    std::vector<bool> picked(static_cast<std::size_t>(h.num_vertices), false);
    for (const std::int32_t v : vertices) {
      double delta = 0.0;  // E[mark v] - E[do not mark v]
      for (const int e : edges_of[static_cast<std::size_t>(v)]) {
        if (!is_live[static_cast<std::size_t>(e)]) continue;
        delta += edge_probability(e, 1, 1) - edge_probability(e, 0, 1);
      }
      const bool mark = delta > 0.0;
      picked[static_cast<std::size_t>(v)] = mark;
      for (const int e : edges_of[static_cast<std::size_t>(v)]) {
        if (!is_live[static_cast<std::size_t>(e)]) continue;
        undecided_count[static_cast<std::size_t>(e)] -= 1;
        if (mark) marked_count[static_cast<std::size_t>(e)] += 1;
      }
    }
    // Commit: picked vertices receive the phase color; edges with exactly
    // one picked vertex are satisfied.
    for (const std::int32_t v : vertices) {
      if (picked[static_cast<std::size_t>(v)]) {
        out->colors_of[static_cast<std::size_t>(v)].push_back(color);
      }
    }
    std::vector<int> still_live;
    for (const int e : live) {
      if (marked_count[static_cast<std::size_t>(e)] == 1) {
        is_live[static_cast<std::size_t>(e)] = false;
      } else {
        still_live.push_back(e);
      }
    }
    live = std::move(still_live);
  }
  RLOCAL_ASSERT(live.empty());  // conditional expectations guarantee progress
}

/// Groups edge indices by size class (size in [2^{j-1}, 2^j)).
std::vector<std::vector<int>> group_by_size(
    const Hypergraph& h, const std::vector<int>& edge_indices) {
  std::vector<std::vector<int>> classes;
  for (const int e : edge_indices) {
    const auto size = h.edges[static_cast<std::size_t>(e)].size();
    RLOCAL_ASSERT(size >= 1);
    const int cls = floor_log2(static_cast<std::uint64_t>(size));
    if (static_cast<std::size_t>(cls) >= classes.size()) {
      classes.resize(static_cast<std::size_t>(cls) + 1);
    }
    classes[static_cast<std::size_t>(cls)].push_back(e);
  }
  return classes;
}

void solve_all_classes(const Hypergraph& h,
                       const std::vector<int>& edge_indices,
                       CfMulticoloring* out, int* next_color, int* phases) {
  for (const auto& cls : group_by_size(h, edge_indices)) {
    if (cls.empty()) continue;
    const auto size =
        h.edges[static_cast<std::size_t>(cls.front())].size();
    // Marking probability ~ 1/size keeps P[exactly one] constant
    // (class sizes vary by at most 2x around the representative).
    const double p = std::min(0.5, 1.0 / static_cast<double>(size));
    const int before = *next_color;
    solve_class(h, cls, p, out, next_color);
    *phases += *next_color - before;
  }
}

}  // namespace

CfDeterministicResult cf_multicolor_deterministic(const Hypergraph& h) {
  h.check();
  CfDeterministicResult result;
  result.coloring.colors_of.assign(
      static_cast<std::size_t>(h.num_vertices), {});
  std::vector<int> all(h.edges.size());
  for (std::size_t e = 0; e < h.edges.size(); ++e) {
    all[e] = static_cast<int>(e);
  }
  int next_color = 0;
  solve_all_classes(h, all, &result.coloring, &next_color, &result.phases);
  result.coloring.num_colors = next_color;
  return result;
}

CfKwiseResult cf_multicolor_kwise(const Hypergraph& h, NodeRandomness& rnd,
                                  int small_threshold) {
  h.check();
  const int logn = log2n(static_cast<std::uint64_t>(
      std::max<std::int32_t>(2, h.num_vertices)));
  CfKwiseResult result;
  result.small_threshold =
      small_threshold > 0 ? small_threshold : 4 * logn * logn;
  result.coloring.colors_of.assign(
      static_cast<std::size_t>(h.num_vertices), {});

  // Split edges into small (solved directly) and large size classes
  // (restricted to their marked vertices first). Every class gets a
  // disjoint palette because next_color only advances.
  std::vector<int> small_edges;
  std::vector<std::vector<int>> large_by_class;
  for (std::size_t e = 0; e < h.edges.size(); ++e) {
    const auto size = h.edges[e].size();
    if (static_cast<int>(size) <= result.small_threshold) {
      small_edges.push_back(static_cast<int>(e));
    } else {
      const int cls = floor_log2(static_cast<std::uint64_t>(size));
      if (static_cast<std::size_t>(cls) >= large_by_class.size()) {
        large_by_class.resize(static_cast<std::size_t>(cls) + 1);
      }
      large_by_class[static_cast<std::size_t>(cls)].push_back(
          static_cast<int>(e));
    }
  }

  int next_color = 0;
  int phases = 0;
  solve_all_classes(h, small_edges, &result.coloring, &next_color, &phases);

  for (std::size_t cls = 0; cls < large_by_class.size(); ++cls) {
    if (large_by_class[cls].empty()) continue;
    ++result.classes_marked;
    // Mark with probability Theta(log n) / 2^cls via the k-wise regime;
    // stream = class index isolates classes from each other.
    const double p = std::min(
        0.5, 4.0 * static_cast<double>(logn) /
                 std::ldexp(1.0, static_cast<int>(cls)));
    std::vector<bool> marked(static_cast<std::size_t>(h.num_vertices));
    for (std::int32_t v = 0; v < h.num_vertices; ++v) {
      marked[static_cast<std::size_t>(v)] = rnd.bernoulli(
          static_cast<std::uint64_t>(v), static_cast<std::uint64_t>(cls), p);
    }
    // Build the restricted hypergraph for this class.
    Hypergraph restricted;
    restricted.num_vertices = h.num_vertices;
    for (const int e : large_by_class[cls]) {
      std::vector<std::int32_t> sub;
      for (const std::int32_t v : h.edges[static_cast<std::size_t>(e)]) {
        if (marked[static_cast<std::size_t>(v)]) sub.push_back(v);
      }
      if (sub.empty()) {
        // Marking failed for this edge (probability poly(log n)^{-Theta(1)}
        // per the k-wise Chernoff bound); fall back to the full edge.
        ++result.empty_restrictions;
        sub = h.edges[static_cast<std::size_t>(e)];
      } else {
        const int m = static_cast<int>(sub.size());
        result.min_marked =
            result.min_marked < 0 ? m : std::min(result.min_marked, m);
        result.max_marked = std::max(result.max_marked, m);
      }
      restricted.edges.push_back(std::move(sub));
    }
    std::vector<int> all(restricted.edges.size());
    for (std::size_t e = 0; e < restricted.edges.size(); ++e) {
      all[e] = static_cast<int>(e);
    }
    solve_all_classes(restricted, all, &result.coloring, &next_color,
                      &phases);
  }

  result.coloring.num_colors = next_color;
  result.valid = is_conflict_free(h, result.coloring);
  return result;
}

}  // namespace rlocal
