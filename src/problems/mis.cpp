#include "problems/mis.hpp"

#include <algorithm>
#include <numeric>

namespace rlocal {

std::vector<bool> greedy_mis(const Graph& g,
                             const std::vector<NodeId>& order) {
  RLOCAL_CHECK(order.size() == static_cast<std::size_t>(g.num_nodes()),
               "order must cover all nodes");
  std::vector<bool> in_mis(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<bool> blocked(static_cast<std::size_t>(g.num_nodes()), false);
  for (const NodeId v : order) {
    if (blocked[static_cast<std::size_t>(v)]) continue;
    in_mis[static_cast<std::size_t>(v)] = true;
    blocked[static_cast<std::size_t>(v)] = true;
    for (const NodeId u : g.neighbors(v)) {
      blocked[static_cast<std::size_t>(u)] = true;
    }
  }
  return in_mis;
}

std::int64_t mis_quality(const Graph& g, const std::vector<bool>& in_mis) {
  RLOCAL_CHECK(in_mis.size() == static_cast<std::size_t>(g.num_nodes()),
               "in_mis must cover all nodes");
  std::int64_t score = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_mis[static_cast<std::size_t>(v)]) {
      // Each violated edge counted once, from its smaller endpoint.
      for (const NodeId u : g.neighbors(v)) {
        if (u > v && in_mis[static_cast<std::size_t>(u)]) ++score;
      }
    } else {
      bool covered = false;
      for (const NodeId u : g.neighbors(v)) {
        if (in_mis[static_cast<std::size_t>(u)]) {
          covered = true;
          break;
        }
      }
      if (!covered) ++score;
    }
  }
  return score;
}

std::vector<bool> greedy_mis_by_id(const Graph& g) {
  std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&g](NodeId a, NodeId b) { return g.id(a) < g.id(b); });
  return greedy_mis(g, order);
}

}  // namespace rlocal
