#include "problems/hypergraph.hpp"

#include <algorithm>
#include <random>

#include "support/math.hpp"

namespace rlocal {

void Hypergraph::check() const {
  for (const auto& edge : edges) {
    RLOCAL_CHECK(!edge.empty(), "empty hyperedge");
    for (const std::int32_t v : edge) {
      RLOCAL_CHECK(v >= 0 && v < num_vertices, "hyperedge vertex range");
    }
  }
}

std::size_t Hypergraph::max_edge_size() const {
  std::size_t best = 0;
  for (const auto& edge : edges) best = std::max(best, edge.size());
  return best;
}

bool is_conflict_free(const Hypergraph& h, const CfMulticoloring& c) {
  if (c.colors_of.size() != static_cast<std::size_t>(h.num_vertices)) {
    return false;
  }
  std::vector<int> count(static_cast<std::size_t>(c.num_colors), 0);
  for (const auto& edge : h.edges) {
    std::fill(count.begin(), count.end(), 0);
    for (const std::int32_t v : edge) {
      for (const int col : c.colors_of[static_cast<std::size_t>(v)]) {
        if (col < 0 || col >= c.num_colors) return false;
        ++count[static_cast<std::size_t>(col)];
      }
    }
    bool ok = false;
    for (const int k : count) {
      if (k == 1) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

Hypergraph make_classed_hypergraph(std::int32_t num_vertices,
                                   std::int32_t edges_per_class,
                                   int num_classes, std::uint64_t seed) {
  RLOCAL_CHECK(num_vertices >= 2, "need at least two vertices");
  RLOCAL_CHECK(num_classes >= 1, "need at least one class");
  std::mt19937_64 rng(seed);
  Hypergraph h;
  h.num_vertices = num_vertices;
  std::vector<std::int32_t> pool(static_cast<std::size_t>(num_vertices));
  for (std::int32_t v = 0; v < num_vertices; ++v) {
    pool[static_cast<std::size_t>(v)] = v;
  }
  for (int cls = 1; cls <= num_classes; ++cls) {
    const std::int64_t lo = std::int64_t{1} << (cls - 1);
    const std::int64_t hi =
        std::min<std::int64_t>(num_vertices, (std::int64_t{1} << cls) - 1);
    if (lo > hi) break;
    for (std::int32_t e = 0; e < edges_per_class; ++e) {
      const auto size = static_cast<std::int32_t>(
          lo + static_cast<std::int64_t>(
                   rng() % static_cast<std::uint64_t>(hi - lo + 1)));
      // Partial Fisher-Yates for a uniform size-subset.
      std::vector<std::int32_t> edge;
      edge.reserve(static_cast<std::size_t>(size));
      for (std::int32_t i = 0; i < size; ++i) {
        const auto j = static_cast<std::size_t>(
            i + static_cast<std::int64_t>(
                    rng() % static_cast<std::uint64_t>(num_vertices - i)));
        std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
        edge.push_back(pool[static_cast<std::size_t>(i)]);
      }
      std::sort(edge.begin(), edge.end());
      h.edges.push_back(std::move(edge));
    }
  }
  return h;
}

}  // namespace rlocal
