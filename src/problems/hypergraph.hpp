// Hypergraphs and conflict-free multicolorings (Theorem 3.5).
//
// A multicoloring assigns each vertex a *set* of colors; it is conflict-free
// when every hyperedge has some color held by exactly one of its vertices.
// [GKM17] showed network decomposition reduces to conflict-free hypergraph
// multicoloring; the paper's Theorem 3.5 contributes the k-wise-independent
// marking step that shrinks all hyperedges to poly(log n) size.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace rlocal {

struct Hypergraph {
  std::int32_t num_vertices = 0;
  std::vector<std::vector<std::int32_t>> edges;

  void check() const;
  std::size_t max_edge_size() const;
};

struct CfMulticoloring {
  std::vector<std::vector<int>> colors_of;  ///< per vertex: held colors
  int num_colors = 0;
};

/// True iff every hyperedge has a color held by exactly one of its vertices.
bool is_conflict_free(const Hypergraph& h, const CfMulticoloring& c);

/// Random hypergraph whose i-th size class has edges of size in
/// [2^{i-1}, 2^i), mirroring the paper's class structure.
Hypergraph make_classed_hypergraph(std::int32_t num_vertices,
                                   std::int32_t edges_per_class,
                                   int num_classes, std::uint64_t seed);

}  // namespace rlocal
