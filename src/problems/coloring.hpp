// (Delta+1)-vertex coloring: with MIS, the other classic problem the paper
// cites as solvable in poly(log n) randomized rounds. The randomized
// algorithm is the standard random-trial scheme, drawing through a
// randomness regime so experiment E9 can compare regimes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

struct ColoringResult {
  std::vector<int> color;  ///< -1 where the budget ran out
  bool success = false;
  int iterations = 0;
  int rounds_charged = 0;  ///< 2 CONGEST rounds per iteration
  /// Analytic CONGEST message accounting matching rounds_charged: in both
  /// rounds of an iteration every still-uncolored node broadcasts (its
  /// proposal, then its adopt/retry decision), each message one palette
  /// color plus a flag wide. Deterministic in the coins, so sweeps carry
  /// message totals without a simulated wire.
  std::int64_t analytic_messages = 0;
  std::int64_t analytic_bits = 0;
};

/// Random-trial (Delta+1)-coloring: every uncolored node proposes a uniform
/// color from its remaining palette; a proposal sticks unless a neighbor
/// with smaller identifier proposed the same color in the same iteration
/// (or a colored neighbor already owns it). Terminates in O(log n)
/// iterations w.h.p. `max_iterations <= 0` uses 16 * ceil(log2 n) + 16.
ColoringResult random_coloring(const Graph& g, NodeRandomness& rnd,
                               int max_iterations = 0);

/// True iff `color` is a proper coloring with entries in [0, max_colors).
bool is_valid_coloring(const Graph& g, const std::vector<int>& color,
                       int max_colors);

/// Fault-plane quality score (docs/faults.md): the number of monochromatic
/// edges plus the number of uncolored nodes (color < 0). 0 iff the coloring
/// is proper and total.
std::int64_t coloring_quality(const Graph& g, const std::vector<int>& color);

}  // namespace rlocal
