#include "problems/splitting.hpp"

#include <cmath>

namespace rlocal {

SplittingResult random_splitting(const BipartiteGraph& h, NodeRandomness& rnd,
                                 std::uint64_t stream) {
  SplittingResult result;
  const std::uint64_t before = rnd.derived_bits();
  result.red.resize(static_cast<std::size_t>(h.num_right()));
  for (std::int32_t v = 0; v < h.num_right(); ++v) {
    result.red[static_cast<std::size_t>(v)] =
        rnd.bit(static_cast<std::uint64_t>(v), stream);
  }
  result.violations = count_splitting_violations(h, result.red);
  result.derived_bits = rnd.derived_bits() - before;
  return result;
}

int count_splitting_violations(const BipartiteGraph& h,
                               const std::vector<bool>& red) {
  RLOCAL_CHECK(red.size() == static_cast<std::size_t>(h.num_right()),
               "coloring size mismatch");
  int violations = 0;
  for (std::int32_t u = 0; u < h.num_left(); ++u) {
    bool saw_red = false;
    bool saw_blue = false;
    for (const std::int32_t v : h.left_neighbors(u)) {
      if (red[static_cast<std::size_t>(v)]) {
        saw_red = true;
      } else {
        saw_blue = true;
      }
    }
    if (!(saw_red && saw_blue)) ++violations;
  }
  return violations;
}

double splitting_failure_upper_bound(const BipartiteGraph& h) {
  double bound = 0.0;
  for (std::int32_t u = 0; u < h.num_left(); ++u) {
    const auto deg = static_cast<double>(h.left_neighbors(u).size());
    bound += std::pow(2.0, 1.0 - deg);
  }
  return std::min(1.0, bound);
}

}  // namespace rlocal
