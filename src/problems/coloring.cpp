#include "problems/coloring.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace rlocal {

ColoringResult random_coloring(const Graph& g, NodeRandomness& rnd,
                               int max_iterations) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const int logn = log2n(static_cast<std::uint64_t>(
      std::max<NodeId>(2, g.num_nodes())));
  const int budget = max_iterations > 0 ? max_iterations : 16 * logn + 16;
  const int palette = g.max_degree() + 1;

  ColoringResult result;
  result.color.assign(n, -1);
  std::vector<int> proposal(n, -1);
  std::vector<bool> taken;  // scratch: palette colors already owned nearby

  const int color_bits = log2n(static_cast<std::uint64_t>(palette) + 1) + 1;
  for (int iteration = 1; iteration <= budget; ++iteration) {
    bool any_uncolored = false;
    std::int64_t uncolored_degree_sum = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      proposal[static_cast<std::size_t>(v)] = -1;
      if (result.color[static_cast<std::size_t>(v)] != -1) continue;
      any_uncolored = true;
      uncolored_degree_sum += g.degree(v);
      // Remaining palette: colors in [0, deg(v)] not owned by neighbors.
      taken.assign(static_cast<std::size_t>(g.degree(v)) + 1, false);
      for (const NodeId u : g.neighbors(v)) {
        const int cu = result.color[static_cast<std::size_t>(u)];
        if (cu >= 0 && cu <= g.degree(v)) {
          taken[static_cast<std::size_t>(cu)] = true;
        }
      }
      std::vector<int> free_colors;
      for (int col = 0; col <= g.degree(v); ++col) {
        if (!taken[static_cast<std::size_t>(col)]) free_colors.push_back(col);
      }
      RLOCAL_ASSERT(!free_colors.empty());  // palette size deg+1 guarantees it
      const std::uint64_t word = rnd.chunk(
          static_cast<std::uint64_t>(v),
          static_cast<std::uint64_t>(iteration));
      proposal[static_cast<std::size_t>(v)] = free_colors[static_cast<
          std::size_t>(word % free_colors.size())];
    }
    if (!any_uncolored) {
      result.success = true;
      result.iterations = iteration - 1;
      result.rounds_charged = 2 * (iteration - 1);
      RLOCAL_ASSERT(is_valid_coloring(g, result.color, palette));
      return result;
    }
    // Both rounds of this iteration: proposal + decision broadcasts.
    result.analytic_messages += 2 * uncolored_degree_sum;
    result.analytic_bits += 2 * uncolored_degree_sum * color_bits;
    // Conflict resolution: a proposal sticks unless an uncolored neighbor
    // with smaller id proposed the same color.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const int pv = proposal[static_cast<std::size_t>(v)];
      if (pv < 0) continue;
      bool keep = true;
      for (const NodeId u : g.neighbors(v)) {
        if (proposal[static_cast<std::size_t>(u)] == pv &&
            g.id(u) < g.id(v)) {
          keep = false;
          break;
        }
      }
      if (keep) result.color[static_cast<std::size_t>(v)] = pv;
    }
  }
  result.iterations = budget;
  result.rounds_charged = 2 * budget;
  result.success =
      std::find(result.color.begin(), result.color.end(), -1) ==
      result.color.end();
  return result;
}

std::int64_t coloring_quality(const Graph& g, const std::vector<int>& color) {
  RLOCAL_CHECK(color.size() == static_cast<std::size_t>(g.num_nodes()),
               "color must cover all nodes");
  std::int64_t score = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int cv = color[static_cast<std::size_t>(v)];
    if (cv < 0) {
      ++score;
      continue;
    }
    // Each monochromatic edge counted once, from its smaller endpoint.
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && color[static_cast<std::size_t>(u)] == cv) ++score;
    }
  }
  return score;
}

bool is_valid_coloring(const Graph& g, const std::vector<int>& color,
                       int max_colors) {
  if (color.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int cv = color[static_cast<std::size_t>(v)];
    if (cv < 0 || cv >= max_colors) return false;
    for (const NodeId u : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(u)] == cv) return false;
    }
  }
  return true;
}

}  // namespace rlocal
