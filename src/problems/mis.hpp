// Maximal independent set: the problem behind Linial's question that frames
// the paper. The randomized algorithm (Luby) lives in sim/programs/luby.hpp;
// this header adds the sequential-greedy baseline (the canonical locality-1
// SLOCAL algorithm) and the problem checker used by the derandomization
// machinery (MIS is O(1)-locally checkable).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "sim/programs/luby.hpp"

namespace rlocal {

/// Sequential greedy MIS in the given processing order (SLOCAL locality 1).
std::vector<bool> greedy_mis(const Graph& g, const std::vector<NodeId>& order);

/// Fault-plane quality score (docs/faults.md): the number of independence
/// violations (edges with both endpoints in the set) plus the number of
/// uncovered nodes (neither in the set nor adjacent to it). 0 iff `in_mis`
/// is a maximal independent set; undecided nodes score as not-in-set.
std::int64_t mis_quality(const Graph& g, const std::vector<bool>& in_mis);

/// Greedy MIS in ascending-identifier order.
std::vector<bool> greedy_mis_by_id(const Graph& g);

}  // namespace rlocal
