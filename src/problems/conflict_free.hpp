// Conflict-free hypergraph multicoloring (Theorem 3.5).
//
// Two pieces, mirroring the paper's proof:
//
//  * cf_multicolor_deterministic -- the small-edges base case standing in
//    for the deterministic algorithm of [GKM17]: edges are grouped in size
//    classes; per class, phases pick a fresh color and a vertex subset by
//    the method of conditional expectations, maximizing the exact expected
//    number of live edges with exactly one picked vertex (marking prob.
//    ~ 1/size keeps that expectation a constant fraction, so each phase
//    deterministically satisfies >= max(1, Omega(live)) edges and
//    O(log #edges) colors per class suffice).
//
//  * cf_multicolor_kwise -- the paper's reduction: per size class with
//    edges larger than the small threshold, mark vertices with probability
//    Theta(log n)/2^i using k-wise independent bits; each such edge keeps
//    Theta(log n) marked vertices w.h.p., and the base case colors the
//    restricted (now small) edges with a per-class palette. Per-class
//    palettes make the restriction sound: a class-i color is only ever held
//    by class-i-marked vertices, so "exactly one in the restriction" is
//    "exactly one in the full edge".
#pragma once

#include "problems/hypergraph.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

struct CfDeterministicResult {
  CfMulticoloring coloring;
  int phases = 0;  ///< total color classes spent
};

CfDeterministicResult cf_multicolor_deterministic(const Hypergraph& h);

struct CfKwiseResult {
  CfMulticoloring coloring;
  bool valid = false;
  int small_threshold = 0;
  int classes_marked = 0;      ///< classes that went through marking
  int empty_restrictions = 0;  ///< edges whose marking came up empty
                               ///< (fell back to the full edge)
  int min_marked = -1;         ///< over marked (large) edges
  int max_marked = 0;
};

/// `small_threshold <= 0` selects 4 * ceil(log2 n)^2 where n = #vertices.
CfKwiseResult cf_multicolor_kwise(const Hypergraph& h, NodeRandomness& rnd,
                                  int small_threshold = 0);

}  // namespace rlocal
