// The splitting problem of Ghaffari-Kuhn-Maus [GKM17] (Lemma 3.4): given a
// bipartite H = (U, V, E) where every u in U has at least Omega(log^c n)
// neighbors in V, 2-color V red/blue so every u sees both colors.
//
// Randomized, this is a zero-round problem: each V-node flips a coin. It is
// P-SLOCAL-complete to solve deterministically in poly(log n) rounds, which
// is why the paper uses it to show O(log n) shared random bits already
// separate the distributed question from the centralized P vs BPP analogy.
#pragma once

#include <vector>

#include "graph/bipartite.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

struct SplittingResult {
  std::vector<bool> red;  ///< color of each right node
  int violations = 0;     ///< left nodes missing one of the colors
  std::uint64_t derived_bits = 0;
};

/// Zero-round randomized splitting under any regime: right node v is colored
/// by its own derived bit.
SplittingResult random_splitting(const BipartiteGraph& h, NodeRandomness& rnd,
                                 std::uint64_t stream = 0);

/// Number of left nodes whose neighborhood is monochromatic (0 == valid).
int count_splitting_violations(const BipartiteGraph& h,
                               const std::vector<bool>& red);

/// Union-bound estimate of the failure probability under fully independent
/// coins: sum over u of 2^(1 - deg(u)) (the paper's Chernoff/union-bound
/// argument specialized to exact monochromaticity).
double splitting_failure_upper_bound(const BipartiteGraph& h);

}  // namespace rlocal
