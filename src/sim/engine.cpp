#include "sim/engine.hpp"

#include <algorithm>

#include "cost/meter.hpp"
#include "obs/obs.hpp"
#include "support/math.hpp"

namespace rlocal {

void Context::send(int port, std::span<const std::uint64_t> words, int bits) {
  RLOCAL_CHECK(port >= 0 && port < static_cast<int>(neighbor_count_),
               "send: port out of range");
  engine_->submit(self_, port, words, bits);
}

void Context::broadcast(std::span<const std::uint64_t> words, int bits) {
  if (neighbor_count_ == 0) return;
  engine_->submit_broadcast(self_, words, bits);
}

Engine::Engine(const Graph& g, EngineOptions options)
    : graph_(&g), options_(options) {
  if (options_.faults.enabled()) {
    // Realizing the spec is the only up-front fault work (per-node crash and
    // skew draws); the span makes schedule construction attributable.
    obs::ObsSpan fault_span("faults", "fault_inject");
    faults_.emplace(options_.faults, options_.fault_seed, g.num_nodes());
  }
  bandwidth_bits_ =
      options_.bandwidth_bits > 0
          ? options_.bandwidth_bits
          : 32 * log2n(static_cast<std::uint64_t>(std::max<NodeId>(
                    2, g.num_nodes())));
  // Build reverse port map: port p of u points to neighbor v; find the port
  // q of v that points back to u (neighbor lists are sorted, so binary
  // search works).
  reverse_port_.resize(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    auto& rev = reverse_port_[static_cast<std::size_t>(u)];
    rev.resize(nbrs.size());
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
      const NodeId v = nbrs[p];
      const auto back = g.neighbors(v);
      const auto it = std::lower_bound(back.begin(), back.end(), u);
      RLOCAL_ASSERT(it != back.end() && *it == u);
      rev[p] = static_cast<int>(it - back.begin());
    }
  }
}

void Engine::submit_at(NodeId from, int port, int bits, std::uint32_t offset,
                       std::uint32_t count) {
  // The declared bit count is the semantic on-the-wire size (fields are
  // conceptually bit-packed); the payload words are a convenience encoding.
  // Only the declared size is bandwidth-checked -- programs are first-party.
  if (options_.model == CommModel::kCongest && bits > bandwidth_bits_) {
    throw CongestViolation(
        "message of " + std::to_string(bits) + " bits exceeds " +
        std::to_string(bandwidth_bits_) + "-bit CONGEST bandwidth");
  }
  auto& used = port_used_[static_cast<std::size_t>(from)];
  RLOCAL_CHECK(!used[static_cast<std::size_t>(port)],
               "a node may send at most one message per port per round");
  used[static_cast<std::size_t>(port)] = true;

  stats_.messages += 1;
  stats_.total_bits += bits;
  stats_.max_message_bits = std::max(stats_.max_message_bits, bits);

  const NodeId to = graph_->neighbors(from)[static_cast<std::size_t>(port)];
  const int to_port = reverse_port_[static_cast<std::size_t>(from)]
                                   [static_cast<std::size_t>(port)];
  send_arena_.push(to, to_port, bits, offset, count);
}

void Engine::submit(NodeId from, int port,
                    std::span<const std::uint64_t> words, int bits) {
  const std::uint32_t offset = send_arena_.append_words(words);
  submit_at(from, port, bits, offset,
            static_cast<std::uint32_t>(words.size()));
}

void Engine::submit_broadcast(NodeId from,
                              std::span<const std::uint64_t> words,
                              int bits) {
  // One payload copy shared by every port's slot: broadcast costs
  // O(words + degree) arena traffic instead of O(words * degree).
  const std::uint32_t offset = send_arena_.append_words(words);
  const auto count = static_cast<std::uint32_t>(words.size());
  const int degree = graph_->degree(from);
  for (int p = 0; p < degree; ++p) submit_at(from, p, bits, offset, count);
}

void Engine::deliver_round(int round) {
  std::swap(send_arena_, deliver_arena_);
  send_arena_.clear();
  const auto slots = deliver_arena_.slots();
  const auto n = static_cast<std::size_t>(graph_->num_nodes());
  // Fault plane, pass 1: classify every slot (deliver / drop / delay) and
  // pull previously delayed messages due this round. Decisions are pure
  // functions of (schedule, directed edge, round), so the classification is
  // independent of slot order and thread schedule.
  due_.clear();
  if (faults_.has_value()) {
    if (const auto it = delayed_.find(round); it != delayed_.end()) {
      due_ = std::move(it->second);
      delayed_.erase(it);
    }
    slot_action_.assign(slots.size(), 0);  // 0 deliver, 1 drop, 2 delay
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const auto& slot = slots[s];
      if (faults_->drop(slot.to, slot.to_port, round)) {
        slot_action_[s] = 1;
        stats_.dropped_messages += 1;
        stats_.dropped_bits += slot.bits;
        continue;
      }
      // neighbors(to)[to_port] is the sender (the reverse-port contract);
      // its skew defers the delivery whole rounds, one coin already spent.
      const NodeId sender =
          graph_->neighbors(slot.to)[static_cast<std::size_t>(slot.to_port)];
      const int skew = faults_->skew(sender);
      if (skew > 0) {
        slot_action_[s] = 2;
        const auto words = deliver_arena_.words(slot);
        delayed_[round + skew].push_back(
            DelayedMessage{slot.to, slot.to_port, slot.bits,
                           {words.begin(), words.end()}});
      }
    }
  }
  // CSR index: count per destination, prefix-sum, then fill in submission
  // order (stable per node, matching the old per-node push_back order).
  // Delayed messages due this round precede the round's own arrivals.
  std::fill(inbox_cursor_.begin(), inbox_cursor_.end(), 0u);
  for (const auto& delayed : due_) {
    ++inbox_cursor_[static_cast<std::size_t>(delayed.to)];
  }
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (faults_.has_value() && slot_action_[s] != 0) continue;
    ++inbox_cursor_[static_cast<std::size_t>(slots[s].to)];
  }
  std::uint32_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    inbox_offset_[v] = total;
    total += inbox_cursor_[v];
    inbox_cursor_[v] = inbox_offset_[v];
  }
  inbox_offset_[n] = total;
  incoming_.resize(total);
  for (const auto& delayed : due_) {
    stats_.skewed_deliveries += 1;
    incoming_[inbox_cursor_[static_cast<std::size_t>(delayed.to)]++] =
        Incoming{delayed.to_port, delayed.bits,
                 {delayed.words.data(), delayed.words.size()}};
  }
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (faults_.has_value() && slot_action_[s] != 0) continue;
    const auto& slot = slots[s];
    incoming_[inbox_cursor_[static_cast<std::size_t>(slot.to)]++] =
        Incoming{slot.to_port, slot.bits, deliver_arena_.words(slot)};
  }
}

EngineStats Engine::run(const ProgramFactory& factory) {
  // Whole-run attribution: phase time for the profile's `engine` column and
  // a span bracketing the run. Both are RAII, so every exit (completion,
  // deadline, CongestViolation unwind) closes them.
  obs::PhaseTimer phase_timer(obs::Phase::kEngine);
  obs::ObsSpan run_span("engine", "engine_run");
  {
    static obs::Counter& runs_total = obs::counter("rlocal_engine_runs_total");
    runs_total.add();
  }

  const NodeId n = graph_->num_nodes();
  programs_.clear();
  programs_.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) programs_.push_back(factory(v));

  stats_ = EngineStats{};
  // Report whatever executed into the active cost meter on EVERY exit --
  // normal completion, the engine's own per-round deadline check, and
  // exceptions thrown from program code (a NodeRandomness draw checkpoint
  // expiring mid-round, a CongestViolation from submit). The partial cost
  // a deadline/violation record carries depends on this firing during
  // unwinding too.
  struct MeterReport {
    const Engine* engine;
    ~MeterReport() { engine->report_run_to_meter(); }
  } report{this};
  // Same every-exit discipline for the observability totals: messages the
  // run actually executed and the largest arena footprint any round held.
  struct ObsReport {
    const Engine* engine;
    std::size_t arena_high_water = 0;
    ~ObsReport() {
      static obs::Counter& messages_total =
          obs::counter("rlocal_engine_messages_total");
      static obs::Gauge& arena_gauge =
          obs::gauge("rlocal_arena_high_water_bytes");
      messages_total.add(
          static_cast<std::uint64_t>(engine->stats_.messages));
      arena_gauge.record_max(arena_high_water);
      if (engine->faults_.has_value()) {
        static obs::Counter& dropped_total =
            obs::counter("rlocal_faults_dropped_total");
        static obs::Counter& crashed_total =
            obs::counter("rlocal_faults_crashed_nodes_total");
        dropped_total.add(
            static_cast<std::uint64_t>(engine->stats_.dropped_messages));
        crashed_total.add(
            static_cast<std::uint64_t>(engine->stats_.crashed_nodes));
      }
    }
  } obs_report{this};
  stats_.faulted = faults_.has_value();
  delayed_.clear();
  due_.clear();
  send_arena_.clear();
  deliver_arena_.clear();
  incoming_.clear();
  inbox_offset_.assign(static_cast<std::size_t>(n) + 1, 0u);
  inbox_cursor_.assign(static_cast<std::size_t>(n), 0u);
  port_used_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    port_used_[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(graph_->degree(v)), false);
  }

  auto make_context = [&](NodeId v, int round) {
    Context ctx;
    ctx.engine_ = this;
    ctx.self_ = v;
    ctx.self_id_ = graph_->id(v);
    ctx.round_ = round;
    ctx.num_nodes_ = n;
    ctx.neighbor_count_ = graph_->neighbors(v).size();
    const std::size_t lo = inbox_offset_[static_cast<std::size_t>(v)];
    const std::size_t hi = inbox_offset_[static_cast<std::size_t>(v) + 1];
    ctx.inbox_ = std::span<const Incoming>(incoming_.data() + lo, hi - lo);
    return ctx;
  };

  // Round 0: on_start (may send).
  for (NodeId v = 0; v < n; ++v) {
    Context ctx = make_context(v, 0);
    programs_[static_cast<std::size_t>(v)]->on_start(ctx);
  }
  stats_.per_round_messages.push_back(stats_.messages);

  for (int round = 1; round <= options_.max_rounds; ++round) {
    // One span per round (disabled cost: a relaxed load + branch at each
    // end). Covers the halting check, delivery, and every on_round call.
    obs::ObsSpan round_span("engine", "engine_round");
    static obs::Histogram& round_hist = obs::histogram(
        "rlocal_span_latency_seconds{span=\"engine_round\"}");
    static obs::Counter& round_spans =
        obs::counter("rlocal_spans_total{span=\"engine_round\"}");
    obs::LatencyTimer round_latency(round_hist, round_spans);
    // Per-round cooperative cancellation (a sweep cell's deadline token
    // reaches the engine here; no-op outside a metered run). The rounds
    // and messages executed before expiry still reach the meter via the
    // MeterReport guard above.
    cost::checkpoint();
    // Crash-stop takes effect at the round boundary: a node crashing at
    // round c participates fully through c-1, then never runs again.
    // Tallied here, before the halting check, so a crash that *ends* the
    // run (everyone else already halted) is still metered, and tallied
    // per round entered so partial (deadline/violation) runs meter
    // correctly.
    if (faults_.has_value()) {
      for (NodeId v = 0; v < n; ++v) {
        if (faults_->crash_round(v) == round) ++stats_.crashed_nodes;
      }
    }
    // Check halting before delivering: if everyone halted we are done. A
    // crash-stopped node counts as halted -- it stays in the graph but takes
    // no further rounds, so it must not keep the run alive.
    bool all_halted = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!programs_[static_cast<std::size_t>(v)]->halted() &&
          !(faults_.has_value() && faults_->crashed(v, round))) {
        all_halted = false;
        break;
      }
    }
    if (all_halted) {
      stats_.completed = true;
      return stats_;
    }

    // Deliver messages sent in the previous round (arena swap + CSR fill;
    // the new send arena is empty and the delivered spans stay stable for
    // the whole round).
    deliver_round(round);
    obs_report.arena_high_water =
        std::max(obs_report.arena_high_water, deliver_arena_.byte_size());
    for (auto& used : port_used_) {
      std::fill(used.begin(), used.end(), false);
    }

    stats_.rounds = round;
    {
      static obs::Counter& rounds_total =
          obs::counter("rlocal_engine_rounds_total");
      rounds_total.add();
    }
    const std::int64_t messages_before = stats_.messages;
    for (NodeId v = 0; v < n; ++v) {
      auto& program = *programs_[static_cast<std::size_t>(v)];
      if (faults_.has_value() && faults_->crashed(v, round)) continue;
      if (program.halted()) continue;
      Context ctx = make_context(v, round);
      program.on_round(ctx);
    }
    stats_.per_round_messages.push_back(stats_.messages - messages_before);
  }

  stats_.completed = true;
  for (NodeId v = 0; v < n; ++v) {
    if (!programs_[static_cast<std::size_t>(v)]->halted() &&
        !(faults_.has_value() &&
          faults_->crashed(v, options_.max_rounds))) {
      stats_.completed = false;
      break;
    }
  }
  return stats_;
}

void Engine::report_run_to_meter() const {
  // The LOCAL model enforces no cap, so it reports 0 -- the cost ledger's
  // "zero-bit-cap" invariant for non-CONGEST runs.
  cost::record_engine_run(
      stats_.rounds, stats_.messages, stats_.total_bits,
      stats_.max_message_bits,
      options_.model == CommModel::kCongest ? bandwidth_bits_ : 0,
      stats_.per_round_messages);
  if (faults_.has_value()) {
    // Armed schedules always report (possibly all-zero) fault tallies, so a
    // faulted cell's cost block carries a faults section deterministically.
    cost::record_engine_faults(stats_.dropped_messages, stats_.dropped_bits,
                               stats_.crashed_nodes,
                               stats_.skewed_deliveries);
  }
}

}  // namespace rlocal
