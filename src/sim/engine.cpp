#include "sim/engine.hpp"

#include <algorithm>

#include "cost/meter.hpp"
#include "support/math.hpp"

namespace rlocal {

void Context::send(int port, Message message) {
  RLOCAL_CHECK(port >= 0 && port < static_cast<int>(neighbor_count_),
               "send: port out of range");
  engine_->submit(self_, port, std::move(message));
}

void Context::broadcast(const Message& message) {
  for (int p = 0; p < static_cast<int>(neighbor_count_); ++p) {
    send(p, message);
  }
}

Engine::Engine(const Graph& g, EngineOptions options)
    : graph_(&g), options_(options) {
  bandwidth_bits_ =
      options_.bandwidth_bits > 0
          ? options_.bandwidth_bits
          : 32 * log2n(static_cast<std::uint64_t>(std::max<NodeId>(
                    2, g.num_nodes())));
  // Build reverse port map: port p of u points to neighbor v; find the port
  // q of v that points back to u (neighbor lists are sorted, so binary
  // search works).
  reverse_port_.resize(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    auto& rev = reverse_port_[static_cast<std::size_t>(u)];
    rev.resize(nbrs.size());
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
      const NodeId v = nbrs[p];
      const auto back = g.neighbors(v);
      const auto it = std::lower_bound(back.begin(), back.end(), u);
      RLOCAL_ASSERT(it != back.end() && *it == u);
      rev[p] = static_cast<int>(it - back.begin());
    }
  }
}

void Engine::submit(NodeId from, int port, Message message) {
  // The declared bit count is the semantic on-the-wire size (fields are
  // conceptually bit-packed); the payload words are a convenience encoding.
  // Only the declared size is bandwidth-checked -- programs are first-party.
  if (options_.model == CommModel::kCongest &&
      message.bits > bandwidth_bits_) {
    throw CongestViolation(
        "message of " + std::to_string(message.bits) + " bits exceeds " +
        std::to_string(bandwidth_bits_) + "-bit CONGEST bandwidth");
  }
  auto& used = port_used_[static_cast<std::size_t>(from)];
  RLOCAL_CHECK(!used[static_cast<std::size_t>(port)],
               "a node may send at most one message per port per round");
  used[static_cast<std::size_t>(port)] = true;

  stats_.messages += 1;
  stats_.total_bits += message.bits;
  stats_.max_message_bits = std::max(stats_.max_message_bits, message.bits);

  const NodeId to = graph_->neighbors(from)[static_cast<std::size_t>(port)];
  const int to_port = reverse_port_[static_cast<std::size_t>(from)]
                                   [static_cast<std::size_t>(port)];
  pending_.push_back(Pending{to, to_port, std::move(message)});
}

EngineStats Engine::run(const ProgramFactory& factory) {
  const NodeId n = graph_->num_nodes();
  programs_.clear();
  programs_.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) programs_.push_back(factory(v));

  stats_ = EngineStats{};
  // Report whatever executed into the active cost meter on EVERY exit --
  // normal completion, the engine's own per-round deadline check, and
  // exceptions thrown from program code (a NodeRandomness draw checkpoint
  // expiring mid-round, a CongestViolation from submit). The partial cost
  // a deadline/violation record carries depends on this firing during
  // unwinding too.
  struct MeterReport {
    const Engine* engine;
    ~MeterReport() { engine->report_run_to_meter(); }
  } report{this};
  pending_.clear();
  port_used_.assign(static_cast<std::size_t>(n), {});
  for (NodeId v = 0; v < n; ++v) {
    port_used_[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(graph_->degree(v)), false);
  }

  std::vector<std::vector<Incoming>> inboxes(static_cast<std::size_t>(n));
  auto make_context = [&](NodeId v, int round) {
    Context ctx;
    ctx.engine_ = this;
    ctx.self_ = v;
    ctx.self_id_ = graph_->id(v);
    ctx.round_ = round;
    ctx.num_nodes_ = n;
    ctx.neighbor_count_ = graph_->neighbors(v).size();
    ctx.inbox_ = &inboxes[static_cast<std::size_t>(v)];
    return ctx;
  };

  // Round 0: on_start (may send).
  for (NodeId v = 0; v < n; ++v) {
    Context ctx = make_context(v, 0);
    programs_[static_cast<std::size_t>(v)]->on_start(ctx);
  }
  stats_.per_round_messages.push_back(stats_.messages);

  for (int round = 1; round <= options_.max_rounds; ++round) {
    // Per-round cooperative cancellation (a sweep cell's deadline token
    // reaches the engine here; no-op outside a metered run). The rounds
    // and messages executed before expiry still reach the meter via the
    // MeterReport guard above.
    cost::checkpoint();
    // Check halting before delivering: if everyone halted we are done.
    bool all_halted = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!programs_[static_cast<std::size_t>(v)]->halted()) {
        all_halted = false;
        break;
      }
    }
    if (all_halted) {
      stats_.completed = true;
      return stats_;
    }

    // Deliver messages sent in the previous round.
    for (auto& box : inboxes) box.clear();
    for (auto& p : pending_) {
      inboxes[static_cast<std::size_t>(p.to)].push_back(
          Incoming{p.to_port, std::move(p.message)});
    }
    pending_.clear();
    for (auto& used : port_used_) {
      std::fill(used.begin(), used.end(), false);
    }

    stats_.rounds = round;
    const std::int64_t messages_before = stats_.messages;
    for (NodeId v = 0; v < n; ++v) {
      auto& program = *programs_[static_cast<std::size_t>(v)];
      if (program.halted()) continue;
      Context ctx = make_context(v, round);
      program.on_round(ctx);
    }
    stats_.per_round_messages.push_back(stats_.messages - messages_before);
  }

  stats_.completed = true;
  for (NodeId v = 0; v < n; ++v) {
    if (!programs_[static_cast<std::size_t>(v)]->halted()) {
      stats_.completed = false;
      break;
    }
  }
  return stats_;
}

void Engine::report_run_to_meter() const {
  // The LOCAL model enforces no cap, so it reports 0 -- the cost ledger's
  // "zero-bit-cap" invariant for non-CONGEST runs.
  cost::record_engine_run(
      stats_.rounds, stats_.messages, stats_.total_bits,
      stats_.max_message_bits,
      options_.model == CommModel::kCongest ? bandwidth_bits_ : 0,
      stats_.per_round_messages);
}

}  // namespace rlocal
