// Synchronous message-passing engine: the LOCAL / CONGEST model.
//
// Execution follows the standard definition (Section 2 of the paper):
// computation proceeds in synchronous rounds; per round each node may send
// one message to each neighbor; messages sent in round r are delivered at
// the beginning of round r+1. In the CONGEST model each message is limited
// to `bandwidth_bits` (default 32 * ceil(log2 n)); the engine enforces the
// limit and throws CongestViolation on overflow, so algorithms cannot cheat.
//
// Programs are per-node objects; the engine owns them for the duration of a
// run. Nodes know n (non-uniform algorithms), their own unique identifier,
// and their neighbor ports -- they do NOT know neighbor identities beyond
// what messages tell them, matching the KT0 knowledge assumption.
//
// Message storage is arena-based: payload words live in a per-round flat
// buffer (MessageArena) that send and delivery double-buffer between
// rounds, and delivered messages are word *spans* into the deliver-side
// arena -- the round loop performs zero per-message heap allocations at
// steady state (see docs/perf.md for the lifetime rules).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "sim/faults.hpp"

namespace rlocal {

class CongestViolation : public std::runtime_error {
 public:
  explicit CongestViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// A message: up to a few words of payload with a declared bit size (the
/// declared size is what the bandwidth check uses; it must cover the words).
/// Convenience *construction* type only -- on submission the words are
/// copied into the engine's per-round MessageArena, so hot-loop programs
/// should prefer the span-based Context::send/broadcast overloads (stack
/// words, zero heap traffic) over building a Message per round.
struct Message {
  std::vector<std::uint64_t> words;
  int bits = 0;

  static Message single(std::uint64_t word, int bits = 64) {
    Message m;
    m.words = {word};
    m.bits = bits;
    return m;
  }
};

/// One delivered message: a word span into the engine's deliver-side arena.
/// The span (and the Incoming itself) is valid for the duration of the
/// receiving on_round call only -- the arena is recycled when the next
/// round's delivery swap happens. Programs that need a payload beyond the
/// round must copy the words out.
struct Incoming {
  int port;  ///< which neighbor port delivered it
  int bits;  ///< declared on-the-wire size
  std::span<const std::uint64_t> words;
};

/// Per-round message storage: payload words live in one reused flat buffer
/// and per-message routing headers (slots) in another, so a round of
/// traffic costs zero heap allocations at steady state. The engine keeps
/// two arenas -- programs write the send arena while they read spans into
/// the deliver arena, and the round boundary swaps them (double buffering
/// is what keeps delivered spans stable for the whole round).
class MessageArena {
 public:
  struct Slot {
    NodeId to;
    int to_port;
    int bits;
    std::uint32_t offset;  ///< first payload word in the flat buffer
    std::uint32_t count;   ///< payload word count
  };

  /// Drops all slots and words but keeps capacity.
  void clear() {
    words_.clear();
    slots_.clear();
  }

  /// Appends a payload, returning its offset; broadcast fan-out appends the
  /// words once and shares the offset across per-port slots.
  std::uint32_t append_words(std::span<const std::uint64_t> words) {
    const auto offset = static_cast<std::uint32_t>(words_.size());
    words_.insert(words_.end(), words.begin(), words.end());
    return offset;
  }

  void push(NodeId to, int to_port, int bits, std::uint32_t offset,
            std::uint32_t count) {
    slots_.push_back(Slot{to, to_port, bits, offset, count});
  }

  std::span<const Slot> slots() const { return slots_; }
  std::span<const std::uint64_t> words(const Slot& slot) const {
    return {words_.data() + slot.offset, slot.count};
  }

  /// Live payload + slot bytes this round; feeds the engine's
  /// `rlocal_arena_high_water_bytes` gauge (docs/observability.md).
  std::size_t byte_size() const {
    return words_.size() * sizeof(std::uint64_t) +
           slots_.size() * sizeof(Slot);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<Slot> slots_;
};

class Engine;

/// Per-round view handed to a node program.
class Context {
 public:
  NodeId self() const { return self_; }
  std::uint64_t self_id() const { return self_id_; }
  int round() const { return round_; }
  NodeId num_nodes() const { return num_nodes_; }
  int degree() const { return static_cast<int>(neighbor_count_); }
  /// Messages delivered this round; spans are valid until on_round returns.
  std::span<const Incoming> inbox() const { return inbox_; }

  /// Sends `words` (declared size `bits`) to neighbor port p in
  /// [0, degree). At most one message per port per round. The words are
  /// copied into the engine's send arena, so stack buffers are fine and no
  /// heap allocation happens at steady state.
  void send(int port, std::span<const std::uint64_t> words, int bits);
  /// Convenience overload for the owning Message type.
  void send(int port, const Message& message) {
    send(port, message.words, message.bits);
  }
  /// Sends the same payload to every neighbor (the words are appended to
  /// the arena once and shared across ports).
  void broadcast(std::span<const std::uint64_t> words, int bits);
  void broadcast(const Message& message) {
    broadcast(message.words, message.bits);
  }

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
  NodeId self_ = 0;
  std::uint64_t self_id_ = 0;
  int round_ = 0;
  NodeId num_nodes_ = 0;
  std::size_t neighbor_count_ = 0;
  std::span<const Incoming> inbox_;
};

/// A node's program. The engine calls on_start once (round 0, may send),
/// then on_round every round with the delivered inbox, until every program
/// reports halted() or the round limit is hit.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual void on_start(Context& ctx) { (void)ctx; }
  virtual void on_round(Context& ctx) = 0;
  virtual bool halted() const = 0;
};

enum class CommModel { kLocal, kCongest };

struct EngineOptions {
  CommModel model = CommModel::kCongest;
  /// 0 means "use the default 32 * ceil(log2 n) bits".
  int bandwidth_bits = 0;
  int max_rounds = 1 << 16;
  /// Fault injection (sim/faults.hpp): when `faults.enabled()` the engine
  /// realizes the spec as a FaultSchedule keyed by `fault_seed` (the cell's
  /// master seed in a sweep) and applies it at the delivery step. The
  /// disabled default costs the reliable path nothing.
  FaultSpec faults{};
  std::uint64_t fault_seed = 0;
};

struct EngineStats {
  int rounds = 0;
  std::int64_t messages = 0;
  std::int64_t total_bits = 0;
  int max_message_bits = 0;
  bool completed = false;  ///< all live programs halted within max_rounds
  /// Messages submitted per round (index 0 = on_start sends). The raw data
  /// behind the cost ledger's per-round p50/p95/max histogram.
  std::vector<std::int64_t> per_round_messages;
  // Fault-injection tallies (all stay 0 on a reliable run). Send-side
  // counters above still include dropped/delayed traffic -- the sender paid
  // for the message; these meter what the network then did to it.
  bool faulted = false;  ///< a fault schedule was armed for this run
  std::int64_t dropped_messages = 0;
  std::int64_t dropped_bits = 0;
  int crashed_nodes = 0;  ///< nodes that crash-stopped during this run
  std::int64_t skewed_deliveries = 0;  ///< messages delivered late
};

class Engine {
 public:
  Engine(const Graph& g, EngineOptions options);

  using ProgramFactory =
      std::function<std::unique_ptr<NodeProgram>(NodeId node)>;

  /// Runs the protocol to completion; programs are created fresh per run.
  /// After the run, `programs()` exposes final states for result extraction.
  EngineStats run(const ProgramFactory& factory);

  const std::vector<std::unique_ptr<NodeProgram>>& programs() const {
    return programs_;
  }

  int bandwidth_bits() const { return bandwidth_bits_; }
  const Graph& graph() const { return *graph_; }
  /// The armed fault schedule, or nullptr on a reliable engine.
  const FaultSchedule* fault_schedule() const {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

 private:
  friend class Context;
  /// Bandwidth/port checks + stats for one message whose words are already
  /// in the send arena at [offset, offset + count).
  void submit_at(NodeId from, int port, int bits, std::uint32_t offset,
                 std::uint32_t count);
  void submit(NodeId from, int port, std::span<const std::uint64_t> words,
              int bits);
  void submit_broadcast(NodeId from, std::span<const std::uint64_t> words,
                        int bits);
  /// Swaps send/deliver arenas and rebuilds the CSR inbox index over the
  /// deliver arena's slots (counts -> prefix sums -> fill); all buffers are
  /// reused, so a steady-state round allocates nothing. Under an armed
  /// fault schedule the slots are filtered first: dropped deliveries are
  /// metered and discarded, skewed senders' payloads are copied into the
  /// cross-round delay buffer, and previously delayed messages due at
  /// `round` join the inbox ahead of this round's arrivals.
  void deliver_round(int round);
  /// Reports the finished run into the active cost meter (cost/meter.hpp);
  /// no-op outside a metered cell.
  void report_run_to_meter() const;

  const Graph* graph_;
  EngineOptions options_;
  int bandwidth_bits_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;

  // Double-buffered per-round message arenas: programs submit into send_
  // while the round's inbox spans point into deliver_ (see MessageArena).
  MessageArena send_arena_;
  MessageArena deliver_arena_;
  // CSR inbox over deliver_arena_: node v's messages are
  // incoming_[inbox_offset_[v] .. inbox_offset_[v + 1]).
  std::vector<Incoming> incoming_;
  std::vector<std::uint32_t> inbox_offset_;  // n + 1 prefix sums
  std::vector<std::uint32_t> inbox_cursor_;  // fill cursors (scratch)
  std::vector<std::vector<bool>> port_used_;  // per node, per port, this round
  EngineStats stats_;
  // Reverse port map: for edge (u -> v) at u's port p, the port of u at v.
  std::vector<std::vector<int>> reverse_port_;

  // Fault plane (inactive on reliable runs). Skewed payloads are the one
  // per-message copy the engine makes: arena words only live one round, so
  // a message crossing round boundaries must own its words until delivery.
  std::optional<FaultSchedule> faults_;
  struct DelayedMessage {
    NodeId to;
    int to_port;
    int bits;
    std::vector<std::uint64_t> words;
  };
  std::map<int, std::vector<DelayedMessage>> delayed_;  // keyed by due round
  std::vector<DelayedMessage> due_;  // due this round; spans point in here
  std::vector<char> slot_action_;    // scratch: deliver/drop/delay per slot
};

}  // namespace rlocal
