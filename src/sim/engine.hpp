// Synchronous message-passing engine: the LOCAL / CONGEST model.
//
// Execution follows the standard definition (Section 2 of the paper):
// computation proceeds in synchronous rounds; per round each node may send
// one message to each neighbor; messages sent in round r are delivered at
// the beginning of round r+1. In the CONGEST model each message is limited
// to `bandwidth_bits` (default 32 * ceil(log2 n)); the engine enforces the
// limit and throws CongestViolation on overflow, so algorithms cannot cheat.
//
// Programs are per-node objects; the engine owns them for the duration of a
// run. Nodes know n (non-uniform algorithms), their own unique identifier,
// and their neighbor ports -- they do NOT know neighbor identities beyond
// what messages tell them, matching the KT0 knowledge assumption.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace rlocal {

class CongestViolation : public std::runtime_error {
 public:
  explicit CongestViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// A message: up to a few words of payload with a declared bit size (the
/// declared size is what the bandwidth check uses; it must cover the words).
struct Message {
  std::vector<std::uint64_t> words;
  int bits = 0;

  static Message single(std::uint64_t word, int bits = 64) {
    Message m;
    m.words = {word};
    m.bits = bits;
    return m;
  }
};

struct Incoming {
  int port;  ///< which neighbor port delivered it
  Message message;
};

class Engine;

/// Per-round view handed to a node program.
class Context {
 public:
  NodeId self() const { return self_; }
  std::uint64_t self_id() const { return self_id_; }
  int round() const { return round_; }
  NodeId num_nodes() const { return num_nodes_; }
  int degree() const { return static_cast<int>(neighbor_count_); }
  const std::vector<Incoming>& inbox() const { return *inbox_; }

  /// Sends to neighbor port p in [0, degree). At most one message per port
  /// per round.
  void send(int port, Message message);
  /// Sends the same message to every neighbor.
  void broadcast(const Message& message);

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
  NodeId self_ = 0;
  std::uint64_t self_id_ = 0;
  int round_ = 0;
  NodeId num_nodes_ = 0;
  std::size_t neighbor_count_ = 0;
  const std::vector<Incoming>* inbox_ = nullptr;
};

/// A node's program. The engine calls on_start once (round 0, may send),
/// then on_round every round with the delivered inbox, until every program
/// reports halted() or the round limit is hit.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual void on_start(Context& ctx) { (void)ctx; }
  virtual void on_round(Context& ctx) = 0;
  virtual bool halted() const = 0;
};

enum class CommModel { kLocal, kCongest };

struct EngineOptions {
  CommModel model = CommModel::kCongest;
  /// 0 means "use the default 32 * ceil(log2 n) bits".
  int bandwidth_bits = 0;
  int max_rounds = 1 << 16;
};

struct EngineStats {
  int rounds = 0;
  std::int64_t messages = 0;
  std::int64_t total_bits = 0;
  int max_message_bits = 0;
  bool completed = false;  ///< all programs halted within max_rounds
  /// Messages submitted per round (index 0 = on_start sends). The raw data
  /// behind the cost ledger's per-round p50/p95/max histogram.
  std::vector<std::int64_t> per_round_messages;
};

class Engine {
 public:
  Engine(const Graph& g, EngineOptions options);

  using ProgramFactory =
      std::function<std::unique_ptr<NodeProgram>(NodeId node)>;

  /// Runs the protocol to completion; programs are created fresh per run.
  /// After the run, `programs()` exposes final states for result extraction.
  EngineStats run(const ProgramFactory& factory);

  const std::vector<std::unique_ptr<NodeProgram>>& programs() const {
    return programs_;
  }

  int bandwidth_bits() const { return bandwidth_bits_; }
  const Graph& graph() const { return *graph_; }

 private:
  friend class Context;
  void submit(NodeId from, int port, Message message);
  /// Reports the finished run into the active cost meter (cost/meter.hpp);
  /// no-op outside a metered cell.
  void report_run_to_meter() const;

  const Graph* graph_;
  EngineOptions options_;
  int bandwidth_bits_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;

  // Per-round outboxes: (destination node, destination port, message).
  struct Pending {
    NodeId to;
    int to_port;
    Message message;
  };
  std::vector<Pending> pending_;
  std::vector<std::vector<bool>> port_used_;  // per node, per port, this round
  EngineStats stats_;
  // Reverse port map: for edge (u -> v) at u's port p, the port of u at v.
  std::vector<std::vector<int>> reverse_port_;
};

}  // namespace rlocal
