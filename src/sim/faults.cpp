#include "sim/faults.hpp"

#include <cstdio>
#include <cstdlib>

#include "rnd/prng.hpp"
#include "support/assert.hpp"

namespace rlocal {
namespace {

// Domain separators for the fault stream's evaluation points. The stream
// itself is keyed by mix3(cell_seed, kFaultPlane, ...), so it shares no
// coins with NodeRandomness (which derives from the same cell seed through
// regime-specific paths); the per-decision domains below keep drop, crash,
// crash-round and skew draws on disjoint points of that one stream.
constexpr std::uint64_t kFaultPlane = 0x6661756C7473ULL;   // "faults"
constexpr std::uint64_t kFaultInject = 0x696E6A656374ULL;  // "inject"
constexpr std::uint64_t kDropDomain = 0x64726F70ULL;       // "drop"
constexpr std::uint64_t kCrashDomain = 0x6372617368ULL;    // "crash"
constexpr std::uint64_t kCrashRoundDomain = 0x6372726E64ULL;  // "crrnd"
constexpr std::uint64_t kSkewDomain = 0x736B6577ULL;  // "skew"

/// Independence degree of the fault stream. Fault coins need no more
/// independence than the algorithms' own k-wise regimes use; 16 matches the
/// default scarce-regime k and keeps schedule construction cheap.
constexpr int kFaultK = 16;

/// Shortest decimal that round-trips: %g (6 significant digits) when it
/// re-parses exactly, %.17g otherwise. Coordinate names are identity (cell
/// seeds and store frames hash them), so lossy formatting is not an option.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  if (std::strtod(buffer, nullptr) != value) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

/// Parses `text` after `prefix` as a double; false when the prefix does not
/// match or trailing characters remain before `end` (std::string::npos =
/// the whole string).
bool parse_component(const std::string& text, const std::string& prefix,
                     double* out) {
  if (text.rfind(prefix, 0) != 0 || text.size() == prefix.size()) {
    return false;
  }
  const char* begin = text.c_str() + prefix.size();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::string FaultSpec::name() const {
  if (!enabled()) return "none";
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += '+';
    out += part;
  };
  if (drop_prob > 0.0) append("drop" + format_double(drop_prob));
  if (crash_fraction > 0.0) {
    append("crash" + format_double(crash_fraction) + "@" +
           std::to_string(crash_round_cap));
  }
  if (skew_max > 0) append("skew" + std::to_string(skew_max));
  return out;
}

std::optional<FaultSpec> FaultSpec::parse(const std::string& text) {
  if (text == "none") return FaultSpec::none();
  if (text.empty()) return std::nullopt;
  FaultSpec spec;
  bool saw_drop = false;
  bool saw_crash = false;
  bool saw_skew = false;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t plus = text.find('+', at);
    const std::string token = text.substr(
        at, plus == std::string::npos ? std::string::npos : plus - at);
    at = plus == std::string::npos ? text.size() + 1 : plus + 1;
    double value = 0.0;
    if (parse_component(token, "drop", &value)) {
      if (saw_drop || value < 0.0 || value >= 1.0) return std::nullopt;
      saw_drop = true;
      spec.drop_prob = value;
    } else if (token.rfind("crash", 0) == 0) {
      if (saw_crash) return std::nullopt;
      saw_crash = true;
      std::string fraction_text = token.substr(5);
      const std::size_t sep = fraction_text.find('@');
      if (sep != std::string::npos) {
        const std::string cap_text = fraction_text.substr(sep + 1);
        fraction_text = fraction_text.substr(0, sep);
        char* end = nullptr;
        const long cap = std::strtol(cap_text.c_str(), &end, 10);
        if (cap_text.empty() || end == nullptr || *end != '\0' || cap < 1 ||
            cap > (1 << 20)) {
          return std::nullopt;
        }
        spec.crash_round_cap = static_cast<int>(cap);
      }
      if (!parse_component("crash" + fraction_text, "crash", &value) ||
          value < 0.0 || value >= 1.0) {
        return std::nullopt;
      }
      spec.crash_fraction = value;
    } else if (parse_component(token, "skew", &value)) {
      const int skew = static_cast<int>(value);
      if (saw_skew || value != skew || skew < 0 || skew > (1 << 10)) {
        return std::nullopt;
      }
      saw_skew = true;
      spec.skew_max = skew;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

bool operator==(const FaultSpec& a, const FaultSpec& b) {
  // The canonical name is the identity (it omits don't-care fields, e.g.
  // the crash-round cap of a spec that crashes nobody).
  return a.name() == b.name();
}

FaultSchedule::FaultSchedule(const FaultSpec& spec, std::uint64_t cell_seed,
                             NodeId n)
    : spec_(spec),
      stream_(KWiseGenerator::from_seed(
          kFaultK, 64, mix3(cell_seed, kFaultPlane, kFaultInject))) {
  RLOCAL_CHECK(spec.drop_prob >= 0.0 && spec.drop_prob < 1.0 &&
                   spec.crash_fraction >= 0.0 && spec.crash_fraction < 1.0 &&
                   spec.crash_round_cap >= 1 && spec.skew_max >= 0,
               "fault spec out of range: " + spec.name());
  crash_round_.assign(static_cast<std::size_t>(n), -1);
  skew_.assign(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto node = static_cast<std::uint64_t>(v);
    if (spec_.crash_fraction > 0.0 &&
        stream_.bernoulli(mix3(kCrashDomain, node, 0),
                          spec_.crash_fraction)) {
      // Uniform crash round in [1, cap]; the 64-bit modulo bias is < 2^-44
      // for any cap the parser admits.
      crash_round_[static_cast<std::size_t>(v)] = static_cast<int>(
          1 + stream_.value(mix3(kCrashRoundDomain, node, 0)) %
                  static_cast<std::uint64_t>(spec_.crash_round_cap));
    }
    if (spec_.skew_max > 0) {
      skew_[static_cast<std::size_t>(v)] = static_cast<int>(
          stream_.value(mix3(kSkewDomain, node, 0)) %
          static_cast<std::uint64_t>(spec_.skew_max + 1));
    }
  }
}

bool FaultSchedule::drop(NodeId to, int to_port, int round) const {
  if (spec_.drop_prob <= 0.0) return false;
  // One coin per (directed edge, scheduled round): (to, to_port) names the
  // directed edge uniquely, so the decision is slot-order-independent.
  const std::uint64_t edge =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to)) << 28) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(to_port));
  return stream_.bernoulli(
      mix3(kDropDomain, edge, static_cast<std::uint64_t>(round)),
      spec_.drop_prob);
}

}  // namespace rlocal
