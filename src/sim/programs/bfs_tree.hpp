// Multi-source BFS / Voronoi clustering as a message-passing program:
// sources announce themselves; every node adopts the nearest source, ties
// broken by smaller source identifier, and remembers the port that delivered
// the winning offer (its tree parent). Message = source id (O(log n) bits).
//
// This is the distributed counterpart of voronoi_clusters(); tests assert
// the two agree exactly.
#pragma once

#include "graph/algorithms.hpp"
#include "sim/engine.hpp"

namespace rlocal {

class BfsTreeProgram final : public NodeProgram {
 public:
  BfsTreeProgram(bool is_source, std::uint64_t own_id, int depth)
      : is_source_(is_source), own_id_(own_id), depth_(depth) {}

  void on_start(Context& ctx) override;
  void on_round(Context& ctx) override;
  bool halted() const override { return done_; }

  bool reached() const { return owner_id_ != kNoOwner; }
  std::uint64_t owner_id() const { return owner_id_; }
  std::int32_t dist() const { return dist_; }
  int parent_port() const { return parent_port_; }

  static constexpr std::uint64_t kNoOwner = ~0ULL;

 private:
  bool is_source_;
  std::uint64_t own_id_;
  int depth_;
  std::uint64_t owner_id_ = kNoOwner;
  std::int32_t dist_ = kUnreachable;
  int parent_port_ = -1;
  bool announced_ = false;
  bool done_ = false;
};

struct BfsTreeResult {
  std::vector<std::uint64_t> owner_id;  ///< kNoOwner where unreached
  std::vector<std::int32_t> dist;       ///< kUnreachable where unreached
  std::vector<int> parent_port;         ///< -1 at sources / unreached
  EngineStats stats;
};

/// Runs for `depth` rounds (covering radius); depth <= 0 means n rounds.
BfsTreeResult run_bfs_tree(const Graph& g, const std::vector<NodeId>& sources,
                           int depth, const EngineOptions& options = {});

}  // namespace rlocal
