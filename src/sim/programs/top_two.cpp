#include "sim/programs/top_two.hpp"

#include <queue>
#include <tuple>

#include "support/math.hpp"

namespace rlocal {

namespace {

int entry_bits(NodeId n) {
  return 3 * log2n(static_cast<std::uint64_t>(n)) + 2 + 16;
}

}  // namespace

int top_two_entry_bits(NodeId n) { return entry_bits(n); }

void TopTwoProgram::offer(const MeasureEntry& entry) {
  if (!entry.present() || !participates_) return;
  if (entry.origin_id == best_.origin_id && best_.present()) {
    if (entry.beats(best_)) {
      best_ = entry;
      dirty_ = true;
    }
    return;
  }
  if (entry.beats(best_)) {
    second_ = best_;
    best_ = entry;
    dirty_ = true;
    return;
  }
  if (second_.present() && entry.origin_id == second_.origin_id) {
    if (entry.beats(second_)) {
      second_ = entry;
      dirty_ = true;
    }
    return;
  }
  if (entry.beats(second_)) {
    second_ = entry;
    dirty_ = true;
  }
}

void TopTwoProgram::maybe_broadcast(Context& ctx) {
  if (!dirty_ || !participates_) return;
  dirty_ = false;
  // Forward decayed values; entries that would go negative die here.
  MeasureEntry a = best_;
  MeasureEntry b = second_;
  if (a.present()) a.value -= 1;
  if (b.present()) b.value -= 1;
  if (a.present() && a.value < 0) a = MeasureEntry{};
  if (b.present() && b.value < 0) b = MeasureEntry{};
  if (!a.present() && !b.present()) return;
  // Wire format: up to two (origin id, value) pairs, packed on the stack --
  // the arena copies them on submit, so no per-message heap traffic.
  std::uint64_t words[4];
  int entries = 0;
  for (const MeasureEntry* e : {&a, &b}) {
    if (!e->present()) continue;
    words[2 * entries] = e->origin_id;
    words[2 * entries + 1] = static_cast<std::uint64_t>(e->value);
    ++entries;
  }
  ctx.broadcast(std::span<const std::uint64_t>(
                    words, static_cast<std::size_t>(2 * entries)),
                entries * entry_bits(ctx.num_nodes()));
}

void TopTwoProgram::on_start(Context& ctx) {
  if (participates_ && start_value_ >= 0) {
    RLOCAL_CHECK(start_value_ < (1 << 16), "start value exceeds wire format");
    best_ = MeasureEntry{own_id_, start_value_};
    dirty_ = true;
  }
  maybe_broadcast(ctx);
  if (rounds_ <= 0) done_ = true;
}

void TopTwoProgram::on_round(Context& ctx) {
  for (const auto& in : ctx.inbox()) {
    const auto w = in.words;
    RLOCAL_ASSERT(w.size() % 2 == 0);
    for (std::size_t i = 0; i + 1 < w.size(); i += 2) {
      offer(MeasureEntry{w[i], static_cast<std::int32_t>(w[i + 1])});
    }
  }
  if (ctx.round() >= rounds_) {
    done_ = true;
    return;
  }
  maybe_broadcast(ctx);
}

TopTwoResult run_top_two(const Graph& g,
                         const std::vector<std::int32_t>& start_value,
                         const std::vector<bool>& participates, int rounds,
                         const EngineOptions& options) {
  RLOCAL_CHECK(start_value.size() == static_cast<std::size_t>(g.num_nodes()),
               "start_value size mismatch");
  RLOCAL_CHECK(participates.size() == static_cast<std::size_t>(g.num_nodes()),
               "participates size mismatch");
  Engine engine(g, options);
  TopTwoResult result;
  result.stats = engine.run([&](NodeId v) {
    return std::make_unique<TopTwoProgram>(
        participates[static_cast<std::size_t>(v)], g.id(v),
        start_value[static_cast<std::size_t>(v)], rounds);
  });
  const auto n = static_cast<std::size_t>(g.num_nodes());
  result.best.resize(n);
  result.second.resize(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& p = static_cast<const TopTwoProgram&>(
        *engine.programs()[static_cast<std::size_t>(v)]);
    result.best[static_cast<std::size_t>(v)] = p.best();
    result.second[static_cast<std::size_t>(v)] = p.second();
  }
  return result;
}

TopTwoResult reference_top_two(const Graph& g,
                               const std::vector<std::int32_t>& start_value,
                               const std::vector<bool>& participates) {
  RLOCAL_CHECK(start_value.size() == static_cast<std::size_t>(g.num_nodes()),
               "start_value size mismatch");
  RLOCAL_CHECK(participates.size() == static_cast<std::size_t>(g.num_nodes()),
               "participates size mismatch");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  TopTwoResult result;
  result.best.resize(n);
  result.second.resize(n);

  // Monotone relaxation: process offers in decreasing (value, -id) order, so
  // each node's best fills first, then its second; only entries that enter a
  // node's top-two are relayed (exact, see header).
  struct QueueEntry {
    std::int32_t value;
    std::uint64_t origin_id;
    NodeId node;
  };
  auto cmp = [](const QueueEntry& a, const QueueEntry& b) {
    if (a.value != b.value) return a.value < b.value;       // max-heap
    return a.origin_id > b.origin_id;                       // smaller id first
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(cmp)>
      heap(cmp);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (participates[static_cast<std::size_t>(v)] &&
        start_value[static_cast<std::size_t>(v)] >= 0) {
      heap.push(QueueEntry{start_value[static_cast<std::size_t>(v)], g.id(v),
                           v});
    }
  }
  auto try_insert = [&](NodeId v, const MeasureEntry& e) -> bool {
    auto& best = result.best[static_cast<std::size_t>(v)];
    auto& second = result.second[static_cast<std::size_t>(v)];
    if (best.present() && best.origin_id == e.origin_id) return false;
    if (!best.present()) {
      best = e;
      return true;
    }
    if (second.present() && second.origin_id == e.origin_id) return false;
    if (!second.present()) {
      second = e;
      return true;
    }
    return false;  // monotone order: later offers never beat filled slots
  };
  while (!heap.empty()) {
    const QueueEntry top = heap.top();
    heap.pop();
    if (!participates[static_cast<std::size_t>(top.node)]) continue;
    if (!try_insert(top.node, MeasureEntry{top.origin_id, top.value})) {
      continue;
    }
    if (top.value == 0) continue;
    for (const NodeId u : g.neighbors(top.node)) {
      if (participates[static_cast<std::size_t>(u)]) {
        heap.push(QueueEntry{top.value - 1, top.origin_id, u});
      }
    }
  }
  return result;
}

}  // namespace rlocal
