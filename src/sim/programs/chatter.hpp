// Synthetic broadcast-heavy traffic: every node sends a two-word payload to
// every neighbor every round for a fixed number of rounds -- the densest
// legal CONGEST pattern (one message per port per round). Not a paper
// algorithm; the load generator behind the engine's allocation-gate test
// and the BM_EngineArenaRound throughput counter, shared so the two always
// measure the same traffic shape.
#pragma once

#include <span>

#include "sim/engine.hpp"

namespace rlocal {

class ChatterProgram final : public NodeProgram {
 public:
  ChatterProgram(std::uint64_t id, int rounds) : id_(id), rounds_(rounds) {}

  void on_start(Context& ctx) override { chatter(ctx); }
  void on_round(Context& ctx) override {
    std::uint64_t sum = 0;
    for (const auto& in : ctx.inbox()) {
      sum += in.words[0];
      if (in.words.size() > 1) sum += in.words[1];
    }
    sum_ = sum;
    if (ctx.round() >= rounds_) {
      done_ = true;
      return;
    }
    chatter(ctx);
  }
  bool halted() const override { return done_; }

 private:
  void chatter(Context& ctx) {
    // Stack words: the arena copies them on submit (see docs/perf.md).
    const std::uint64_t words[2] = {id_, sum_};
    ctx.broadcast(std::span<const std::uint64_t>(words, 2), 64);
  }

  std::uint64_t id_;
  std::uint64_t sum_ = 0;
  int rounds_;
  bool done_ = false;
};

}  // namespace rlocal
