#include "sim/programs/luby.hpp"

#include "support/math.hpp"

namespace rlocal {

namespace {

constexpr int kPriorityBits = 24;

int priority_message_bits(NodeId n) {
  return kPriorityBits + 3 * log2n(static_cast<std::uint64_t>(n)) + 2;
}

int default_iterations(NodeId n) {
  return 8 * log2n(static_cast<std::uint64_t>(std::max<NodeId>(2, n))) + 8;
}

std::uint64_t draw_priority(NodeRandomness& rnd, NodeId node, int iteration) {
  return rnd.chunk(static_cast<std::uint64_t>(node),
                   static_cast<std::uint64_t>(iteration)) >>
         (64 - kPriorityBits);
}

/// True when (p_a, id_a) beats (p_b, id_b): higher priority, ties to the
/// smaller identifier.
bool beats(std::uint64_t p_a, std::uint64_t id_a, std::uint64_t p_b,
           std::uint64_t id_b) {
  if (p_a != p_b) return p_a > p_b;
  return id_a < id_b;
}

}  // namespace

void LubyMisProgram::draw_and_announce(Context& ctx) {
  ++iteration_;
  if (iteration_ > max_iterations_) {
    halted_ = true;  // budget exhausted; stays kUndecided (failure)
    return;
  }
  priority_ = draw_priority(*rnd_, node_, iteration_);
  const std::uint64_t words[2] = {priority_, own_id_};
  ctx.broadcast(std::span<const std::uint64_t>(words, 2),
                priority_message_bits(ctx.num_nodes()));
}

void LubyMisProgram::on_start(Context& ctx) { draw_and_announce(ctx); }

void LubyMisProgram::on_round(Context& ctx) {
  const int phase = (ctx.round() - 1) % 2;
  if (phase == 0) {
    // Offers from undecided neighbors arrived; JOIN messages cannot arrive
    // in this phase because joins are announced in phase 1... except the
    // very message we are processing is from the previous phase 0, so the
    // inbox holds (priority, id) pairs only.
    bool wins = true;
    for (const auto& in : ctx.inbox()) {
      const auto w = in.words;
      RLOCAL_ASSERT(w.size() == 2);
      if (!beats(priority_, own_id_, w[0], w[1])) {
        wins = false;
        break;
      }
    }
    if (wins) {
      state_ = State::kInMis;
      ctx.broadcast(std::span<const std::uint64_t>{}, 1);  // JOIN
      halted_ = true;
    }
  } else {
    // Phase 1 delivered JOIN announcements (empty payloads).
    for (const auto& in : ctx.inbox()) {
      if (in.words.empty()) {
        state_ = State::kOut;
        halted_ = true;
        return;
      }
    }
    draw_and_announce(ctx);
  }
}

LubyMisResult run_luby_mis(const Graph& g, NodeRandomness& rnd,
                           int max_iterations, const EngineOptions& options) {
  const int budget =
      max_iterations > 0 ? max_iterations : default_iterations(g.num_nodes());
  const std::uint64_t bits_before = rnd.derived_bits();
  Engine engine(g, options);
  LubyMisResult result;
  result.stats = engine.run([&](NodeId v) {
    return std::make_unique<LubyMisProgram>(g.id(v), v, &rnd, budget);
  });
  const auto n = static_cast<std::size_t>(g.num_nodes());
  result.in_mis.assign(n, false);
  result.success = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& p = static_cast<const LubyMisProgram&>(
        *engine.programs()[static_cast<std::size_t>(v)]);
    result.in_mis[static_cast<std::size_t>(v)] =
        p.state() == LubyMisProgram::State::kInMis;
    if (p.state() == LubyMisProgram::State::kUndecided) {
      result.success = false;
    }
    result.iterations = std::max(result.iterations, p.iterations_used());
  }
  result.random_bits = rnd.derived_bits() - bits_before;
  return result;
}

LubyMisResult reference_luby_mis(const Graph& g, NodeRandomness& rnd,
                                 int max_iterations) {
  const int budget =
      max_iterations > 0 ? max_iterations : default_iterations(g.num_nodes());
  const std::uint64_t bits_before = rnd.derived_bits();
  const auto n = static_cast<std::size_t>(g.num_nodes());
  enum class S { kUndecided, kIn, kOut };
  std::vector<S> state(n, S::kUndecided);
  LubyMisResult result;
  result.in_mis.assign(n, false);
  const int offer_bits = priority_message_bits(g.num_nodes());

  std::vector<std::uint64_t> priority(n, 0);
  // Batched priority plane: one priority_batch call per iteration over the
  // undecided set replaces one full Horner chain per node (the per-draw
  // values are byte-identical to the scalar rnd.chunk path, so the engine
  // cross-check still sees the same coins).
  std::vector<std::uint64_t> undecided;
  std::vector<std::uint64_t> drawn;
  undecided.reserve(n);
  drawn.reserve(n);
  for (int iteration = 1; iteration <= budget; ++iteration) {
    undecided.clear();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (state[static_cast<std::size_t>(v)] == S::kUndecided) {
        undecided.push_back(static_cast<std::uint64_t>(v));
      }
    }
    if (undecided.empty()) {
      result.success = true;
      result.iterations = iteration - 1;
      result.random_bits = rnd.derived_bits() - bits_before;
      return result;
    }
    drawn.resize(undecided.size());
    rnd.priority_batch(undecided, static_cast<std::uint64_t>(iteration),
                       kPriorityBits, drawn);
    for (std::size_t i = 0; i < undecided.size(); ++i) {
      priority[static_cast<std::size_t>(undecided[i])] = drawn[i];
      // The announce broadcast of this iteration's protocol rounds.
      const auto deg = static_cast<std::int64_t>(
          g.degree(static_cast<NodeId>(undecided[i])));
      result.analytic_messages += deg;
      result.analytic_bits += deg * offer_bits;
    }
    result.iterations = iteration;
    std::vector<NodeId> joiners;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (state[static_cast<std::size_t>(v)] != S::kUndecided) continue;
      bool wins = true;
      for (const NodeId u : g.neighbors(v)) {
        if (state[static_cast<std::size_t>(u)] != S::kUndecided) continue;
        if (!beats(priority[static_cast<std::size_t>(v)], g.id(v),
                   priority[static_cast<std::size_t>(u)], g.id(u))) {
          wins = false;
          break;
        }
      }
      if (wins) joiners.push_back(v);
    }
    for (const NodeId v : joiners) {
      state[static_cast<std::size_t>(v)] = S::kIn;
      result.in_mis[static_cast<std::size_t>(v)] = true;
      // The 1-bit JOIN broadcast of the protocol's second phase.
      result.analytic_messages += g.degree(v);
      result.analytic_bits += g.degree(v);
      for (const NodeId u : g.neighbors(v)) {
        if (state[static_cast<std::size_t>(u)] == S::kUndecided) {
          state[static_cast<std::size_t>(u)] = S::kOut;
        }
      }
    }
  }
  result.success = true;
  for (const S s : state) {
    if (s == S::kUndecided) result.success = false;
  }
  result.random_bits = rnd.derived_bits() - bits_before;
  return result;
}

}  // namespace rlocal
