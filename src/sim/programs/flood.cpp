#include "sim/programs/flood.hpp"

#include "support/math.hpp"

namespace rlocal {

namespace {
int id_bits(NodeId n) { return 3 * log2n(static_cast<std::uint64_t>(n)) + 2; }
}  // namespace

void FloodMinProgram::on_start(Context& ctx) {
  if (depth_ <= 0) {
    done_ = true;
    return;
  }
  ctx.broadcast(std::span<const std::uint64_t>(&best_, 1),
                id_bits(ctx.num_nodes()));
}

void FloodMinProgram::on_round(Context& ctx) {
  bool improved = false;
  for (const auto& in : ctx.inbox()) {
    RLOCAL_ASSERT(!in.words.empty());
    if (in.words[0] < best_) {
      best_ = in.words[0];
      improved = true;
    }
  }
  if (ctx.round() >= depth_) {
    done_ = true;
    return;
  }
  if (improved) {
    ctx.broadcast(std::span<const std::uint64_t>(&best_, 1),
                  id_bits(ctx.num_nodes()));
  }
}

FloodMinResult run_flood_min(const Graph& g, int depth,
                             const EngineOptions& options) {
  Engine engine(g, options);
  FloodMinResult result;
  result.stats = engine.run([&](NodeId v) {
    return std::make_unique<FloodMinProgram>(g.id(v), depth);
  });
  result.min_id.resize(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result.min_id[static_cast<std::size_t>(v)] =
        static_cast<const FloodMinProgram&>(
            *engine.programs()[static_cast<std::size_t>(v)])
            .best();
  }
  return result;
}

}  // namespace rlocal
