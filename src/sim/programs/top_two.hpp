// Top-two measure propagation: the communication primitive of the
// Elkin-Neiman / MPX decomposition (Lemma 3.3, Theorem 3.6).
//
// Some nodes start as origins with an initial value r (their random shift).
// The measure of origin o at node v is r_o - dist(o, v), and every node must
// learn the two largest measures over *distinct* origins (plus the argmax
// origin id). Measures decay uniformly per hop, so propagating only the
// current top-two entries per node is exact -- which is precisely why the
// paper notes that clusters need only forward "the top two cluster names and
// radii" and the construction fits CONGEST.
//
// Each entry on the wire is (origin id, value <= 2^16); a message holds at
// most two entries. Non-participating nodes (already clustered / set aside)
// neither relay nor accumulate.
#pragma once

#include <optional>

#include "graph/graph.hpp"
#include "sim/engine.hpp"

namespace rlocal {

struct MeasureEntry {
  std::uint64_t origin_id = 0;
  std::int32_t value = -1;  ///< -1 means "absent"

  bool present() const { return value >= 0; }

  /// Ordering used everywhere: higher value wins, ties go to smaller id.
  bool beats(const MeasureEntry& other) const {
    if (!present()) return false;
    if (!other.present()) return true;
    if (value != other.value) return value > other.value;
    return origin_id < other.origin_id;
  }
};

class TopTwoProgram final : public NodeProgram {
 public:
  /// `start_value < 0` means the node is not an origin. Runs `rounds` rounds.
  TopTwoProgram(bool participates, std::uint64_t own_id,
                std::int32_t start_value, int rounds)
      : participates_(participates),
        own_id_(own_id),
        start_value_(start_value),
        rounds_(rounds) {}

  void on_start(Context& ctx) override;
  void on_round(Context& ctx) override;
  bool halted() const override { return done_; }

  const MeasureEntry& best() const { return best_; }
  const MeasureEntry& second() const { return second_; }

 private:
  void offer(const MeasureEntry& entry);
  void maybe_broadcast(Context& ctx);

  bool participates_;
  std::uint64_t own_id_;
  std::int32_t start_value_;
  int rounds_;
  MeasureEntry best_;
  MeasureEntry second_;
  bool dirty_ = false;
  bool done_ = false;
};

struct TopTwoResult {
  std::vector<MeasureEntry> best;
  std::vector<MeasureEntry> second;
  EngineStats stats;
};

/// `start_value[v] < 0` for non-origins; `participates[v]` gates relaying.
TopTwoResult run_top_two(const Graph& g,
                         const std::vector<std::int32_t>& start_value,
                         const std::vector<bool>& participates, int rounds,
                         const EngineOptions& options = {});

/// Centralized reference (multi-source relaxation); used by tests to verify
/// the program and by large-scale experiments for speed.
TopTwoResult reference_top_two(const Graph& g,
                               const std::vector<std::int32_t>& start_value,
                               const std::vector<bool>& participates);

/// Declared wire size of one (origin id, value) measure entry at network
/// size n -- a full top-two message carries two; exposed so callers that
/// execute the reference path can charge the model's analytic message cost.
int top_two_entry_bits(NodeId n);

}  // namespace rlocal
