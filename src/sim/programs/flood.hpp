// FloodMin: every node learns the minimum identifier within `depth` hops.
// Runs exactly `depth` rounds; message = one identifier (O(log n) bits).
// Used to cross-validate the engine against centralized BFS, and as the
// primitive behind leader election within clusters.
#pragma once

#include "graph/graph.hpp"
#include "sim/engine.hpp"

namespace rlocal {

class FloodMinProgram final : public NodeProgram {
 public:
  FloodMinProgram(std::uint64_t own_id, int depth)
      : best_(own_id), depth_(depth) {}

  void on_start(Context& ctx) override;
  void on_round(Context& ctx) override;
  bool halted() const override { return done_; }

  std::uint64_t best() const { return best_; }

 private:
  std::uint64_t best_;
  int depth_;
  bool done_ = false;
};

/// Convenience runner: returns the min id within `depth` hops of every node,
/// plus engine stats.
struct FloodMinResult {
  std::vector<std::uint64_t> min_id;
  EngineStats stats;
};
FloodMinResult run_flood_min(const Graph& g, int depth,
                             const EngineOptions& options = {});

}  // namespace rlocal
