// Luby's maximal independent set algorithm [Lub86, ABI86] as a
// message-passing CONGEST program, with the randomness regime injected via
// the NodeRandomness facade (so the same protocol runs under full
// independence, k-wise independence, or shared seeds -- experiment E9).
//
// Each iteration takes two rounds:
//   phase 0: undecided nodes draw a priority for this iteration and
//            broadcast (priority, id);
//   phase 1: a node whose (priority, id) beats every offer it received
//            joins the MIS and broadcasts JOIN (an empty-payload message);
//            undecided nodes seeing a JOIN retire at the next phase 0.
// Decided nodes fall silent, which is how neighbors learn to ignore them.
#pragma once

#include "graph/graph.hpp"
#include "rnd/regime.hpp"
#include "sim/engine.hpp"

namespace rlocal {

class LubyMisProgram final : public NodeProgram {
 public:
  enum class State { kUndecided, kInMis, kOut };

  LubyMisProgram(std::uint64_t own_id, NodeId node, NodeRandomness* rnd,
                 int max_iterations)
      : own_id_(own_id), node_(node), rnd_(rnd),
        max_iterations_(max_iterations) {}

  void on_start(Context& ctx) override;
  void on_round(Context& ctx) override;
  bool halted() const override { return halted_; }

  State state() const { return state_; }
  int iterations_used() const { return iteration_; }

 private:
  void draw_and_announce(Context& ctx);

  std::uint64_t own_id_;
  NodeId node_;
  NodeRandomness* rnd_;
  int max_iterations_;
  State state_ = State::kUndecided;
  std::uint64_t priority_ = 0;
  int iteration_ = 0;
  bool halted_ = false;
};

struct LubyMisResult {
  std::vector<bool> in_mis;
  bool success = false;  ///< every node decided within the iteration budget
  int iterations = 0;
  EngineStats stats;
  std::uint64_t random_bits = 0;
  /// Analytic CONGEST message count of the protocol (reference path only;
  /// the engine path meters real wires instead): per iteration, every
  /// still-undecided node broadcasts its (priority, id) offer and every
  /// winner broadcasts JOIN -- exactly the sends the engine executes, so
  /// the two paths report identical totals on identical coins.
  std::int64_t analytic_messages = 0;
  std::int64_t analytic_bits = 0;
};

/// `max_iterations <= 0` uses the default 8 * ceil(log2 n) + 8.
LubyMisResult run_luby_mis(const Graph& g, NodeRandomness& rnd,
                           int max_iterations = 0,
                           const EngineOptions& options = {});

/// Centralized reference with identical randomness consumption; tests assert
/// it agrees with the engine run bit-for-bit.
LubyMisResult reference_luby_mis(const Graph& g, NodeRandomness& rnd,
                                 int max_iterations = 0);

}  // namespace rlocal
