#include "sim/programs/bfs_tree.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace rlocal {

namespace {
int id_bits(NodeId n) { return 3 * log2n(static_cast<std::uint64_t>(n)) + 2; }
}  // namespace

void BfsTreeProgram::on_start(Context& ctx) {
  if (is_source_) {
    owner_id_ = own_id_;
    dist_ = 0;
    ctx.broadcast(std::span<const std::uint64_t>(&owner_id_, 1),
                  id_bits(ctx.num_nodes()));
    announced_ = true;
  }
  if (depth_ <= 0) done_ = true;
}

void BfsTreeProgram::on_round(Context& ctx) {
  if (!announced_) {
    // First round in which any offer arrives fixes the distance; the best
    // (smallest) owner id among this round's offers wins.
    std::uint64_t best = kNoOwner;
    int best_port = -1;
    for (const auto& in : ctx.inbox()) {
      RLOCAL_ASSERT(!in.words.empty());
      if (in.words[0] < best) {
        best = in.words[0];
        best_port = in.port;
      }
    }
    if (best != kNoOwner) {
      owner_id_ = best;
      dist_ = ctx.round();
      parent_port_ = best_port;
      ctx.broadcast(std::span<const std::uint64_t>(&owner_id_, 1),
                    id_bits(ctx.num_nodes()));
      announced_ = true;
    }
  }
  if (ctx.round() >= depth_) done_ = true;
}

BfsTreeResult run_bfs_tree(const Graph& g, const std::vector<NodeId>& sources,
                           int depth, const EngineOptions& options) {
  const int effective_depth = depth > 0 ? depth : g.num_nodes();
  std::vector<bool> is_source(static_cast<std::size_t>(g.num_nodes()), false);
  for (const NodeId s : sources) {
    RLOCAL_CHECK(s >= 0 && s < g.num_nodes(), "source out of range");
    is_source[static_cast<std::size_t>(s)] = true;
  }
  Engine engine(g, options);
  BfsTreeResult result;
  result.stats = engine.run([&](NodeId v) {
    return std::make_unique<BfsTreeProgram>(
        is_source[static_cast<std::size_t>(v)], g.id(v), effective_depth);
  });
  const auto n = static_cast<std::size_t>(g.num_nodes());
  result.owner_id.resize(n);
  result.dist.resize(n);
  result.parent_port.resize(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& p = static_cast<const BfsTreeProgram&>(
        *engine.programs()[static_cast<std::size_t>(v)]);
    result.owner_id[static_cast<std::size_t>(v)] = p.owner_id();
    result.dist[static_cast<std::size_t>(v)] = p.dist();
    result.parent_port[static_cast<std::size_t>(v)] = p.parent_port();
  }
  return result;
}

}  // namespace rlocal
