// Fault injection for the synchronous engine: unreliable networks as a
// first-class, *deterministic* experiment axis (docs/faults.md).
//
// A FaultSpec names three classic failure modes -- per-delivery message
// drops, crash-stop nodes, per-node delivery skew -- and a FaultSchedule
// realizes a spec as a pure function of (spec, seed, graph size). Fault
// coins come from a dedicated GF(2^64) k-wise stream keyed by the cell's
// master seed with a fault-plane salt, addressed by (edge, round) or node:
// the schedule never touches NodeRandomness (algorithm randomness and its
// seed-bit ledgers are byte-identical to a schedule-free run of the same
// draws), and every decision is stateless, so a given (spec, seed) yields
// the same fault trace regardless of thread count, claim ownership, or
// kill/resume -- the determinism contract the sweep store depends on.
//
// The engine consumes the schedule at the MessageArena routing step
// (sim/engine.cpp): dropped messages vanish between send and delivery (the
// send-side cost meter already charged them; the faults cost block meters
// the loss), crashed nodes stop taking rounds but remain in the graph, and
// skewed senders' messages are buffered across round boundaries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "rnd/kwise.hpp"

namespace rlocal {

/// One fault regime: which failures an engine run is subjected to. The
/// canonical `name()` is the sweep-axis coordinate (store frames, cell-seed
/// derivation, rlocald grouping), so it must round-trip through `parse()`.
struct FaultSpec {
  /// Per-delivery drop probability in [0, 1); each (directed edge, round)
  /// delivery flips its own k-wise coin.
  double drop_prob = 0.0;
  /// Expected fraction of crash-stop nodes in [0, 1); each node flips one
  /// coin, and a crashing node draws its crash round uniformly from
  /// [1, crash_round_cap]. Crashed nodes stop participating (no on_round,
  /// counted halted) but stay in the graph.
  double crash_fraction = 0.0;
  int crash_round_cap = 16;
  /// Per-node delivery delay bound in rounds: each node draws a fixed skew
  /// in [0, skew_max] and all its messages arrive that many rounds late.
  int skew_max = 0;

  /// True when any failure mode is active; a disabled spec is the implicit
  /// "none" axis coordinate and costs the engine nothing.
  bool enabled() const {
    return drop_prob > 0.0 || crash_fraction > 0.0 || skew_max > 0;
  }

  static FaultSpec none() { return FaultSpec{}; }

  /// Canonical coordinate name: "none", or "+"-joined active components,
  /// e.g. "drop0.05", "crash0.1@8", "drop0.02+skew2".
  std::string name() const;

  /// Inverse of name(); nullopt on malformed or out-of-range text.
  static std::optional<FaultSpec> parse(const std::string& text);
};

bool operator==(const FaultSpec& a, const FaultSpec& b);

/// The realized fault trace of one engine run: pure decision functions over
/// a dedicated k-wise stream. Construction draws the per-node crash/skew
/// assignments once; drop coins are evaluated on demand per
/// (destination, port, round) -- each directed edge has one delivery coin
/// per round, so the trace is independent of slot visit order.
class FaultSchedule {
 public:
  FaultSchedule(const FaultSpec& spec, std::uint64_t cell_seed, NodeId n);

  const FaultSpec& spec() const { return spec_; }

  /// True when the delivery into `to` via its port `to_port` scheduled for
  /// `round` is dropped. (to, to_port) names the directed edge, so the coin
  /// is shared with no other delivery.
  bool drop(NodeId to, int to_port, int round) const;

  /// First round the node no longer participates in; -1 = never crashes.
  int crash_round(NodeId v) const {
    return crash_round_[static_cast<std::size_t>(v)];
  }
  bool crashed(NodeId v, int round) const {
    const int c = crash_round(v);
    return c >= 0 && round >= c;
  }

  /// Fixed delivery delay (rounds) of messages sent by `v`.
  int skew(NodeId v) const { return skew_[static_cast<std::size_t>(v)]; }

 private:
  FaultSpec spec_;
  KWiseGenerator stream_;
  std::vector<int> crash_round_;  ///< per node; -1 = never
  std::vector<int> skew_;         ///< per node delivery delay
};

}  // namespace rlocal
