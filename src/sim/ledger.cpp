#include "sim/ledger.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace rlocal {

void RoundLedger::charge(const std::string& label, std::int64_t rounds) {
  RLOCAL_CHECK(rounds >= 0, "cannot charge negative rounds");
  total_ += rounds;
  for (auto& e : entries_) {
    if (e.label == label) {
      e.rounds += rounds;
      return;
    }
  }
  entries_.push_back(Entry{label, rounds});
}

void RoundLedger::merge(const RoundLedger& other) {
  for (const auto& e : other.entries_) charge(e.label, e.rounds);
}

std::string RoundLedger::breakdown() const {
  std::ostringstream out;
  out << "total=" << total_;
  for (const auto& e : entries_) {
    out << " " << e.label << "=" << e.rounds;
  }
  return out.str();
}

}  // namespace rlocal
