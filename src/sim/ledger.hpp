// Round accounting for composed pipelines.
//
// The theorem pipelines (Thm 3.1, 3.6, 3.7, 4.2) compose graph primitives
// (ruling sets, floods, cluster-graph rounds) whose CONGEST round costs are
// known and engine-validated; the ledger charges those costs explicitly so
// every result can report its simulated round complexity with a breakdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlocal {

class RoundLedger {
 public:
  void charge(const std::string& label, std::int64_t rounds);
  void merge(const RoundLedger& other);

  std::int64_t total() const { return total_; }

  struct Entry {
    std::string label;
    std::int64_t rounds;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  std::string breakdown() const;

 private:
  std::int64_t total_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace rlocal
