// Cost accounting: the communication-model ledger every lab solver reports
// against (ROADMAP "cost-model plug point").
//
// The paper states its results against explicit models -- LOCAL vs CONGEST
// rounds, per-message bandwidth, seed-bit budgets (Section 2; Theorems
// 3.1/3.7 trade rounds against shared randomness) -- so the lab meters cost
// uniformly instead of letting each solver charge whatever it likes:
//
//   * every `lab::Solver` declares a CostModel (kLocal, kCongest,
//     kSequentialSLocal, kOracle);
//   * one CostLedger per cell collects rounds, messages, bits, the
//     per-round message histogram, and the enforced bandwidth cap;
//   * solvers that run on `sim::Engine` get messages/bits/rounds recorded
//     automatically (cost/meter.hpp -- the engine reports into the active
//     scope, the solver never hand-copies stats);
//   * pipeline/derand solvers charge rounds explicitly
//     (CostLedger::charge_rounds), exactly as their theorems account them.
//
// Mischarging is a checker failure, not silent drift: when the engine ran
// during a cell, the solver's explicitly charged rounds must cover the
// rounds the engine actually executed (charging *more* is legal -- theorem
// pipelines charge the model cost, e.g. (cap + 2) rounds per phase where
// the simulated primitive used cap + 1 -- but charging less means the
// record under-reports real communication). Registry::run_cell enforces
// this and stamps the verdict into the record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlocal::cost {

/// The communication model a solver's cost is stated in.
enum class CostModel {
  kLocal,             ///< synchronous rounds, unbounded message size
  kCongest,           ///< synchronous rounds, bandwidth-capped messages
  kSequentialSLocal,  ///< sequential/SLOCAL-style pass; rounds undefined
  kOracle,            ///< centralized computation (enumeration, checking)
};

/// Static per-model semantics (see docs/cost_model.md).
struct CostModelSpec {
  CostModel model;
  const char* name;      ///< canonical short name ("local", "congest", ...)
  const char* summary;   ///< one-line human description
  bool synchronous;      ///< round counts are meaningful in this model
  bool bandwidth_bound;  ///< per-message bit caps apply (CONGEST only)
};

const CostModelSpec& cost_model_spec(CostModel model);
const std::vector<CostModelSpec>& cost_model_registry();

/// Canonical name ("local", "congest", "slocal", "oracle").
std::string cost_model_name(CostModel model);
/// Inverse of cost_model_name; throws InvariantError on unknown names.
CostModel cost_model_from_name(const std::string& name);

/// One cell's communication cost. Scalar fields use -1 for "not measured"
/// (a sequential solver has no rounds; a reference-executed CONGEST solver
/// charges rounds but its messages were never on a simulated wire).
struct CostLedger {
  /// True once Registry::run_cell stamped and finalized the block; records
  /// produced outside the lab runner (or skipped cells) carry none.
  bool populated = false;
  CostModel model = CostModel::kOracle;

  // Resolved cost (after finalize()).
  std::int64_t rounds = -1;       ///< charged rounds, or engine rounds
  std::int64_t messages = -1;     ///< total messages (engine + explicit)
  std::int64_t total_bits = -1;   ///< total on-the-wire bits
  int max_message_bits = 0;       ///< largest single message observed
  /// Largest bandwidth cap actually *enforced* on a simulated wire during
  /// the cell (0 = no cap was enforced). LOCAL/sequential/oracle runs keep
  /// 0 -- the invariant tests/test_cost.cpp pins down. The cell's bandwidth
  /// *coordinate* is RunRecord::bandwidth_bits; this field says what the
  /// engine really enforced.
  int bandwidth_bits = 0;
  int engine_runs = 0;  ///< sim::Engine executions metered into this ledger

  // Per-round message histogram over all engine rounds (p50 = lower
  // median, p95 = ceil-rank; -1 until an engine run is metered).
  std::int64_t msgs_per_round_p50 = -1;
  std::int64_t msgs_per_round_p95 = -1;
  std::int64_t msgs_per_round_max = -1;

  /// Set by finalize(): the solver under-charged rounds relative to what
  /// the engine executed. run_cell turns this into a checker failure.
  bool mischarge = false;

  // Fault-injection tallies (sim/faults.hpp; docs/faults.md). `faults_active`
  // means a fault schedule was armed on at least one metered engine run --
  // the block is then serialized even when every tally is zero, so faulted
  // cells carry it deterministically; reliable cells never do.
  bool faults_active = false;
  std::int64_t faults_dropped_messages = 0;
  std::int64_t faults_dropped_bits = 0;
  std::int64_t faults_crashed_nodes = 0;
  std::int64_t faults_skewed_deliveries = 0;

  // --- Charging API (solvers; see file comment) -------------------------
  /// Explicitly charge `n` synchronous rounds (accumulates).
  void charge_rounds(std::int64_t n);
  /// Explicitly charge messages sent outside the engine (accumulates).
  void charge_messages(std::int64_t count, std::int64_t bits);

  // --- Metering API (cost/meter.hpp; engine-side) -----------------------
  /// Folds one engine execution into the ledger.
  void observe_engine(std::int64_t engine_rounds, std::int64_t engine_messages,
                      std::int64_t engine_bits, int engine_max_message_bits,
                      int enforced_bandwidth_bits,
                      const std::vector<std::int64_t>& per_round_messages);
  /// Folds one armed fault schedule's tallies into the ledger (the engine
  /// reports them alongside observe_engine when faults were injected).
  void observe_faults(std::int64_t dropped_messages,
                      std::int64_t dropped_bits, std::int64_t crashed_nodes,
                      std::int64_t skewed_deliveries);
  /// Folds another ledger's engine observations into this one (run_cell
  /// merges the meter's engine-side ledger into the solver's record).
  void merge_observations(const CostLedger& engine_side);

  /// Resolves `rounds` (explicit charges win; engine rounds otherwise),
  /// computes the histogram quantiles, sets `mischarge`, and drops the
  /// per-round working buffer. Idempotent on an already-final ledger.
  void finalize();

  /// Human-facing mischarge diagnosis ("cost: solver charged R rounds but
  /// the engine executed E"); empty when !mischarge.
  std::string mischarge_reason() const;

  std::int64_t charged_rounds() const { return charged_rounds_; }
  std::int64_t engine_rounds() const { return engine_rounds_; }

 private:
  std::int64_t charged_rounds_ = -1;  ///< -1: never explicitly charged
  std::int64_t engine_rounds_ = 0;    ///< summed over engine runs
  std::vector<std::int64_t> per_round_messages_;  ///< working buffer
};

}  // namespace rlocal::cost
