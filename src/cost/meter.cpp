#include "cost/meter.hpp"

namespace rlocal::cost {
namespace {

// One active scope per thread: sweep workers run one cell at a time, and a
// cell's engine executions all happen on the worker's own thread.
thread_local CostLedger* tl_ledger = nullptr;
thread_local const std::function<void()>* tl_checkpoint = nullptr;

}  // namespace

MeterScope::MeterScope(CostLedger* ledger, std::function<void()> checkpoint)
    : prev_ledger_(tl_ledger),
      checkpoint_(std::move(checkpoint)),
      prev_checkpoint_(tl_checkpoint) {
  tl_ledger = ledger;
  tl_checkpoint = checkpoint_ ? &checkpoint_ : nullptr;
}

MeterScope::~MeterScope() {
  tl_ledger = prev_ledger_;
  tl_checkpoint = prev_checkpoint_;
}

void record_engine_run(std::int64_t rounds, std::int64_t messages,
                       std::int64_t total_bits, int max_message_bits,
                       int enforced_bandwidth_bits,
                       const std::vector<std::int64_t>& per_round_messages) {
  if (tl_ledger == nullptr) return;
  tl_ledger->observe_engine(rounds, messages, total_bits, max_message_bits,
                            enforced_bandwidth_bits, per_round_messages);
}

void record_engine_faults(std::int64_t dropped_messages,
                          std::int64_t dropped_bits,
                          std::int64_t crashed_nodes,
                          std::int64_t skewed_deliveries) {
  if (tl_ledger == nullptr) return;
  tl_ledger->observe_faults(dropped_messages, dropped_bits, crashed_nodes,
                            skewed_deliveries);
}

void checkpoint() {
  if (tl_checkpoint != nullptr) (*tl_checkpoint)();
}

bool meter_active() { return tl_ledger != nullptr; }

}  // namespace rlocal::cost
