#include "cost/cost.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rlocal::cost {

const std::vector<CostModelSpec>& cost_model_registry() {
  static const std::vector<CostModelSpec> kRegistry = {
      {CostModel::kLocal, "local",
       "synchronous rounds, unbounded message size", true, false},
      {CostModel::kCongest, "congest",
       "synchronous rounds, bandwidth-capped messages", true, true},
      {CostModel::kSequentialSLocal, "slocal",
       "sequential / SLOCAL-style pass; rounds undefined", false, false},
      {CostModel::kOracle, "oracle",
       "centralized computation (enumeration, checking)", false, false},
  };
  return kRegistry;
}

const CostModelSpec& cost_model_spec(CostModel model) {
  for (const CostModelSpec& spec : cost_model_registry()) {
    if (spec.model == model) return spec;
  }
  RLOCAL_CHECK(false, "unknown cost model");
  return cost_model_registry().front();  // unreachable
}

std::string cost_model_name(CostModel model) {
  return cost_model_spec(model).name;
}

CostModel cost_model_from_name(const std::string& name) {
  for (const CostModelSpec& spec : cost_model_registry()) {
    if (name == spec.name) return spec.model;
  }
  RLOCAL_CHECK(false, "unknown cost model '" + name + "'");
  return CostModel::kOracle;  // unreachable
}

void CostLedger::charge_rounds(std::int64_t n) {
  RLOCAL_CHECK(n >= 0, "cannot charge negative rounds");
  charged_rounds_ = (charged_rounds_ < 0 ? 0 : charged_rounds_) + n;
}

void CostLedger::charge_messages(std::int64_t count, std::int64_t bits) {
  RLOCAL_CHECK(count >= 0 && bits >= 0, "cannot charge negative messages");
  messages = (messages < 0 ? 0 : messages) + count;
  total_bits = (total_bits < 0 ? 0 : total_bits) + bits;
}

void CostLedger::observe_engine(
    std::int64_t engine_rounds, std::int64_t engine_messages,
    std::int64_t engine_bits, int engine_max_message_bits,
    int enforced_bandwidth_bits,
    const std::vector<std::int64_t>& per_round_messages) {
  ++engine_runs;
  engine_rounds_ += engine_rounds;
  messages = (messages < 0 ? 0 : messages) + engine_messages;
  total_bits = (total_bits < 0 ? 0 : total_bits) + engine_bits;
  max_message_bits = std::max(max_message_bits, engine_max_message_bits);
  bandwidth_bits = std::max(bandwidth_bits, enforced_bandwidth_bits);
  per_round_messages_.insert(per_round_messages_.end(),
                             per_round_messages.begin(),
                             per_round_messages.end());
}

void CostLedger::observe_faults(std::int64_t dropped_messages,
                                std::int64_t dropped_bits,
                                std::int64_t crashed_nodes,
                                std::int64_t skewed_deliveries) {
  RLOCAL_CHECK(dropped_messages >= 0 && dropped_bits >= 0 &&
                   crashed_nodes >= 0 && skewed_deliveries >= 0,
               "fault tallies cannot be negative");
  faults_active = true;
  faults_dropped_messages += dropped_messages;
  faults_dropped_bits += dropped_bits;
  faults_crashed_nodes += crashed_nodes;
  faults_skewed_deliveries += skewed_deliveries;
}

void CostLedger::merge_observations(const CostLedger& engine_side) {
  if (engine_side.faults_active) {
    observe_faults(engine_side.faults_dropped_messages,
                   engine_side.faults_dropped_bits,
                   engine_side.faults_crashed_nodes,
                   engine_side.faults_skewed_deliveries);
  }
  if (engine_side.engine_runs == 0) return;
  engine_runs += engine_side.engine_runs;
  engine_rounds_ += engine_side.engine_rounds_;
  if (engine_side.messages >= 0) {
    messages = (messages < 0 ? 0 : messages) + engine_side.messages;
  }
  if (engine_side.total_bits >= 0) {
    total_bits = (total_bits < 0 ? 0 : total_bits) + engine_side.total_bits;
  }
  max_message_bits =
      std::max(max_message_bits, engine_side.max_message_bits);
  bandwidth_bits = std::max(bandwidth_bits, engine_side.bandwidth_bits);
  per_round_messages_.insert(per_round_messages_.end(),
                             engine_side.per_round_messages_.begin(),
                             engine_side.per_round_messages_.end());
}

void CostLedger::finalize() {
  if (!per_round_messages_.empty()) {
    std::vector<std::int64_t> sorted = per_round_messages_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    msgs_per_round_p50 = sorted[(n - 1) / 2];  // lower median
    msgs_per_round_p95 = sorted[(n * 95 + 99) / 100 - 1];  // ceil rank
    msgs_per_round_max = sorted.back();
    per_round_messages_.clear();
  }
  // Explicit charges are the model cost and win; engine rounds fill in for
  // solvers that only ever ran on the wire. A sequential/oracle solver that
  // charged nothing and ran no engine keeps rounds = -1 ("no round cost").
  if (charged_rounds_ >= 0) {
    rounds = charged_rounds_;
  } else if (engine_runs > 0) {
    rounds = engine_rounds_;
  }
  mischarge = engine_runs > 0 && charged_rounds_ >= 0 &&
              charged_rounds_ < engine_rounds_;
}

std::string CostLedger::mischarge_reason() const {
  if (!mischarge) return "";
  return "cost: solver charged " + std::to_string(charged_rounds_) +
         " rounds but the engine executed " + std::to_string(engine_rounds_);
}

}  // namespace rlocal::cost
