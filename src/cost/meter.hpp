// The run-scope meter: how engine executions and long-running library loops
// reach the current cell's cost ledger and cancellation token without
// threading either through every call signature.
//
// Registry::run_cell opens a MeterScope around Solver::run. While the scope
// is active (per thread -- sweep cells are one-per-worker):
//
//   * sim::Engine::run reports its EngineStats into the scope's ledger via
//     record_engine_run() (this is what makes engine-backed solvers'
//     messages/bits come from the engine, never hand-copied);
//   * checkpoint() invokes the scope's cancellation hook (the cell's
//     deadline token) -- the engine calls it once per round, and the
//     deterministic pipelines (ball carving, conditional expectations,
//     brute force) call it in their outer loops, so `cell_deadline_ms`
//     reaches code that draws no randomness at all.
//
// Outside a scope both entry points are no-ops, so direct engine/pipeline
// use (tests, examples) is unaffected. The hook may throw (DeadlineExpired)
// and must not observe or alter any computed values -- cancellation is
// deterministic-result-preserving, exactly like the NodeRandomness draw
// checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cost/cost.hpp"

namespace rlocal::cost {

class MeterScope {
 public:
  /// Arms `ledger` (and optionally `checkpoint`) as this thread's active
  /// meter; restores the previous scope on destruction (scopes nest).
  explicit MeterScope(CostLedger* ledger,
                      std::function<void()> checkpoint = nullptr);
  ~MeterScope();

  MeterScope(const MeterScope&) = delete;
  MeterScope& operator=(const MeterScope&) = delete;

 private:
  CostLedger* prev_ledger_;
  std::function<void()> checkpoint_;
  const std::function<void()>* prev_checkpoint_;
};

/// Folds one finished engine execution into the active ledger; no-op when
/// no scope is armed. `enforced_bandwidth_bits` is 0 when the run enforced
/// no cap (the LOCAL model).
void record_engine_run(std::int64_t rounds, std::int64_t messages,
                       std::int64_t total_bits, int max_message_bits,
                       int enforced_bandwidth_bits,
                       const std::vector<std::int64_t>& per_round_messages);

/// Folds an armed fault schedule's tallies into the active ledger; no-op
/// when no scope is armed. Called by the engine next to record_engine_run
/// whenever faults were injected (even if every tally is zero).
void record_engine_faults(std::int64_t dropped_messages,
                          std::int64_t dropped_bits,
                          std::int64_t crashed_nodes,
                          std::int64_t skewed_deliveries);

/// Cooperative cancellation point; cheap no-op without an armed hook.
void checkpoint();

/// True while a MeterScope is armed on this thread (tests).
bool meter_active();

}  // namespace rlocal::cost
