// Immutable undirected graph in CSR (compressed sparse row) form.
//
// Nodes are dense indices 0..n-1. Each node additionally carries a unique
// identifier (`id`) drawn from a polynomial range {0..n^c}, matching the
// LOCAL-model assumption of Theta(log n)-bit unique identifiers; generators
// assign ids and algorithms that break ties do so by id, never by index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace rlocal {

using NodeId = std::int32_t;  ///< dense node index in [0, n)

class Graph {
 public:
  /// An empty graph (0 nodes); assign from a Builder to populate.
  Graph() = default;

  /// Builder accumulates edges, then `build()` freezes into CSR.
  class Builder {
   public:
    explicit Builder(NodeId num_nodes);

    /// Adds undirected edge {u, v}. Self-loops and duplicates are rejected
    /// at build() time.
    void add_edge(NodeId u, NodeId v);

    /// Overrides the default identifier (which equals the index) of node v.
    void set_id(NodeId v, std::uint64_t id);

    Graph build() &&;

   private:
    NodeId num_nodes_;
    std::vector<std::pair<NodeId, NodeId>> edges_;
    std::vector<std::uint64_t> ids_;
  };

  NodeId num_nodes() const { return num_nodes_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjacency_.size()) / 2;
  }

  /// Neighbors of v, sorted ascending by node index.
  std::span<const NodeId> neighbors(NodeId v) const {
    RLOCAL_CHECK(v >= 0 && v < num_nodes_, "node index out of range");
    return std::span<const NodeId>(adjacency_.data() + offsets_[v],
                                   adjacency_.data() + offsets_[v + 1]);
  }

  NodeId degree(NodeId v) const {
    RLOCAL_CHECK(v >= 0 && v < num_nodes_, "node index out of range");
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  NodeId max_degree() const;

  bool has_edge(NodeId u, NodeId v) const;

  /// Unique Theta(log n)-bit identifier of v.
  std::uint64_t id(NodeId v) const {
    RLOCAL_CHECK(v >= 0 && v < num_nodes_, "node index out of range");
    return ids_[v];
  }

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::int64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;      // size 2m, sorted per node
  std::vector<std::uint64_t> ids_;     // size n, unique
};

}  // namespace rlocal
