#include "graph/bipartite.hpp"

#include <algorithm>
#include <random>

namespace rlocal {

BipartiteGraph::Builder::Builder(std::int32_t num_left, std::int32_t num_right)
    : num_left_(num_left), num_right_(num_right) {
  RLOCAL_CHECK(num_left >= 0 && num_right >= 0, "sizes must be non-negative");
}

void BipartiteGraph::Builder::add_edge(std::int32_t u, std::int32_t v) {
  RLOCAL_CHECK(u >= 0 && u < num_left_, "left endpoint out of range");
  RLOCAL_CHECK(v >= 0 && v < num_right_, "right endpoint out of range");
  edges_.emplace_back(u, v);
}

BipartiteGraph BipartiteGraph::Builder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  BipartiteGraph g;
  g.num_left_ = num_left_;
  g.num_right_ = num_right_;
  g.offsets_.assign(static_cast<std::size_t>(num_left_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    (void)v;
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    (void)u;
    g.adjacency_.push_back(v);
  }
  return g;
}

std::int32_t BipartiteGraph::min_left_degree() const {
  if (num_left_ == 0) return 0;
  std::int64_t best = num_right_;
  for (std::int32_t u = 0; u < num_left_; ++u) {
    best = std::min<std::int64_t>(
        best, offsets_[static_cast<std::size_t>(u) + 1] -
                  offsets_[static_cast<std::size_t>(u)]);
  }
  return static_cast<std::int32_t>(best);
}

BipartiteGraph make_random_splitting_instance(std::int32_t num_left,
                                              std::int32_t num_right,
                                              std::int32_t degree,
                                              std::uint64_t seed) {
  RLOCAL_CHECK(degree <= num_right, "degree exceeds right-side size");
  std::mt19937_64 rng(seed);
  BipartiteGraph::Builder b(num_left, num_right);
  std::vector<std::int32_t> pool(static_cast<std::size_t>(num_right));
  for (std::int32_t v = 0; v < num_right; ++v) {
    pool[static_cast<std::size_t>(v)] = v;
  }
  for (std::int32_t u = 0; u < num_left; ++u) {
    // Partial Fisher-Yates: pick `degree` distinct right nodes.
    for (std::int32_t i = 0; i < degree; ++i) {
      const auto j = static_cast<std::size_t>(
          i + static_cast<std::int64_t>(
                  rng() % static_cast<std::uint64_t>(num_right - i)));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
      b.add_edge(u, pool[static_cast<std::size_t>(i)]);
    }
  }
  return std::move(b).build();
}

BipartiteGraph make_window_splitting_instance(std::int32_t num_left,
                                              std::int32_t num_right,
                                              std::int32_t degree) {
  RLOCAL_CHECK(degree <= num_right, "degree exceeds right-side size");
  BipartiteGraph::Builder b(num_left, num_right);
  for (std::int32_t u = 0; u < num_left; ++u) {
    const std::int32_t start =
        num_left <= 1
            ? 0
            : static_cast<std::int32_t>(
                  (static_cast<std::int64_t>(u) * (num_right - degree)) /
                  std::max(1, num_left - 1));
    for (std::int32_t i = 0; i < degree; ++i) {
      b.add_edge(u, start + i);
    }
  }
  return std::move(b).build();
}

}  // namespace rlocal
