// Graph generators: the "workload zoo" used by tests and experiments.
//
// Theorems in the paper are for-all-graphs statements; the experiment suite
// sweeps this diverse family. All randomized generators are deterministic
// functions of their seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rlocal {

Graph make_path(NodeId n);
Graph make_cycle(NodeId n);
Graph make_complete(NodeId n);
Graph make_star(NodeId n);  ///< node 0 is the hub
Graph make_grid(NodeId rows, NodeId cols);
Graph make_torus(NodeId rows, NodeId cols);
/// Balanced tree where every internal node has `arity` children.
Graph make_balanced_tree(int arity, int depth);
/// Hypercube on 2^dim nodes.
Graph make_hypercube(int dim);
/// Path of `spine` nodes where every spine node hangs `legs` leaves.
Graph make_caterpillar(NodeId spine, NodeId legs);
/// `k` cliques of size `s` arranged in a ring, joined by single edges.
Graph make_ring_of_cliques(NodeId k, NodeId s);
/// Erdos-Renyi G(n, p).
Graph make_gnp(NodeId n, double p, std::uint64_t seed);
/// Random d-regular (configuration model with rejection; falls back to a
/// near-regular graph if a perfect matching is not found quickly).
Graph make_random_regular(NodeId n, int d, std::uint64_t seed);
/// Disjoint union of the given graphs (ids are re-spaced to stay unique).
Graph make_disjoint_union(const std::vector<const Graph*>& parts);

/// Shuffles node identifiers (not indices) pseudo-randomly within [0, n^3),
/// modeling adversarial Theta(log n)-bit ids.
Graph with_scrambled_ids(const Graph& g, std::uint64_t seed);

/// Named zoo used by parameterized tests and benches. An entry either holds
/// a materialized `graph`, or an empty graph plus a `factory` that rebuilds
/// it on demand -- the streaming form sweeps use to run n >> 10^6 grids
/// without holding every instance in RAM (lab::run_sweep builds such a
/// graph per cell and drops it before the cell's record is made durable).
/// The factory must be a pure function (same graph every call): per-cell
/// rebuilds and the sweep-store fingerprint both rely on it.
struct ZooEntry {
  std::string name;
  Graph graph;
  // NSDMI keeps two-field aggregate spellings ({"grid", make_grid(...)})
  // warning-free under -Wextra.
  std::function<Graph()> factory = nullptr;

  /// True when sweeps should build this entry per cell instead of reading
  /// `graph` (an empty graph with no factory is a spec error upstream).
  bool lazy() const { return factory != nullptr && graph.num_nodes() == 0; }
};

/// Builds the standard zoo at roughly the given size scale. Every graph has
/// between ~scale/2 and ~2*scale nodes. Entries carry both the built graph
/// and the rebuild factory.
std::vector<ZooEntry> make_zoo(NodeId scale, std::uint64_t seed);

/// The same zoo with construction deferred: every entry holds only its
/// factory (empty graph), so a sweep's resident set is one graph per worker
/// instead of the whole zoo.
std::vector<ZooEntry> make_zoo_lazy(NodeId scale, std::uint64_t seed);

}  // namespace rlocal
