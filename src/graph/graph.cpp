#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

namespace rlocal {

Graph::Builder::Builder(NodeId num_nodes) : num_nodes_(num_nodes) {
  RLOCAL_CHECK(num_nodes >= 0, "graph size must be non-negative");
  ids_.resize(static_cast<std::size_t>(num_nodes));
  for (NodeId v = 0; v < num_nodes; ++v) {
    ids_[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(v);
  }
}

void Graph::Builder::add_edge(NodeId u, NodeId v) {
  RLOCAL_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
               "edge endpoint out of range");
  RLOCAL_CHECK(u != v, "self-loops are not allowed");
  edges_.emplace_back(u, v);
}

void Graph::Builder::set_id(NodeId v, std::uint64_t id) {
  RLOCAL_CHECK(v >= 0 && v < num_nodes_, "node index out of range");
  ids_[static_cast<std::size_t>(v)] = id;
}

Graph Graph::Builder::build() && {
  // Deduplicate edges as unordered pairs.
  for (auto& [u, v] : edges_) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.ids_ = std::move(ids_);

  {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(g.ids_.size());
    for (const std::uint64_t id : g.ids_) {
      RLOCAL_CHECK(seen.insert(id).second, "node identifiers must be unique");
    }
  }

  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++counts[static_cast<std::size_t>(u) + 1];
    ++counts[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  g.offsets_ = counts;

  g.adjacency_.resize(static_cast<std::size_t>(edges_.size()) * 2);
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(u)]++)] = v;
    g.adjacency_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(g.adjacency_.begin() + g.offsets_[static_cast<std::size_t>(v)],
              g.adjacency_.begin() +
                  g.offsets_[static_cast<std::size_t>(v) + 1]);
  }
  return g;
}

NodeId Graph::max_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace rlocal
