#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "support/math.hpp"

namespace rlocal {

Graph make_path(NodeId n) {
  Graph::Builder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph make_cycle(NodeId n) {
  RLOCAL_CHECK(n >= 3, "cycle requires n >= 3");
  Graph::Builder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return std::move(b).build();
}

Graph make_complete(NodeId n) {
  Graph::Builder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph make_star(NodeId n) {
  RLOCAL_CHECK(n >= 1, "star requires n >= 1");
  Graph::Builder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

Graph make_grid(NodeId rows, NodeId cols) {
  Graph::Builder b(rows * cols);
  auto at = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph make_torus(NodeId rows, NodeId cols) {
  RLOCAL_CHECK(rows >= 3 && cols >= 3, "torus requires both sides >= 3");
  Graph::Builder b(rows * cols);
  auto at = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(at(r, c), at(r, (c + 1) % cols));
      b.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return std::move(b).build();
}

Graph make_balanced_tree(int arity, int depth) {
  RLOCAL_CHECK(arity >= 1 && depth >= 0, "bad tree parameters");
  // Count nodes: sum_{i=0..depth} arity^i.
  std::int64_t n = 0;
  std::int64_t level = 1;
  for (int i = 0; i <= depth; ++i) {
    n += level;
    level *= arity;
  }
  RLOCAL_CHECK(n < (1LL << 30), "tree too large");
  Graph::Builder b(static_cast<NodeId>(n));
  // Children of node v (BFS order) are arity*v + 1 .. arity*v + arity.
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    for (int c = 1; c <= arity; ++c) {
      const std::int64_t child = static_cast<std::int64_t>(arity) * v + c;
      if (child < n) b.add_edge(v, static_cast<NodeId>(child));
    }
  }
  return std::move(b).build();
}

Graph make_hypercube(int dim) {
  RLOCAL_CHECK(dim >= 0 && dim <= 20, "hypercube dim out of range");
  const NodeId n = static_cast<NodeId>(1) << dim;
  Graph::Builder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int d = 0; d < dim; ++d) {
      const NodeId u = v ^ (static_cast<NodeId>(1) << d);
      if (u > v) b.add_edge(v, u);
    }
  }
  return std::move(b).build();
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  RLOCAL_CHECK(spine >= 1 && legs >= 0, "bad caterpillar parameters");
  Graph::Builder b(spine * (1 + legs));
  for (NodeId s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) b.add_edge(s, next++);
  }
  return std::move(b).build();
}

Graph make_ring_of_cliques(NodeId k, NodeId s) {
  RLOCAL_CHECK(k >= 3 && s >= 1, "ring of cliques requires k >= 3, s >= 1");
  Graph::Builder b(k * s);
  auto at = [s](NodeId clique, NodeId member) { return clique * s + member; };
  for (NodeId c = 0; c < k; ++c) {
    for (NodeId i = 0; i < s; ++i) {
      for (NodeId j = i + 1; j < s; ++j) b.add_edge(at(c, i), at(c, j));
    }
    b.add_edge(at(c, s - 1), at((c + 1) % k, 0));
  }
  return std::move(b).build();
}

Graph make_gnp(NodeId n, double p, std::uint64_t seed) {
  RLOCAL_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
  std::mt19937_64 rng(seed);
  std::geometric_distribution<std::int64_t> skip(p);
  Graph::Builder b(n);
  if (p > 0.0) {
    // Skip-sampling over the n*(n-1)/2 potential edges.
    const std::int64_t total =
        static_cast<std::int64_t>(n) * (static_cast<std::int64_t>(n) - 1) / 2;
    std::int64_t pos = -1;
    while (true) {
      pos += 1 + skip(rng);
      if (pos >= total) break;
      // Invert pair index: find u such that the edge block of u contains pos.
      NodeId u = 0;
      std::int64_t acc = 0;
      std::int64_t remaining = pos;
      // Block of u has size n-1-u.
      while (true) {
        const std::int64_t block = n - 1 - u;
        if (remaining < block) break;
        remaining -= block;
        acc += block;
        ++u;
      }
      (void)acc;
      const NodeId v = static_cast<NodeId>(u + 1 + remaining);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph make_random_regular(NodeId n, int d, std::uint64_t seed) {
  RLOCAL_CHECK(n >= d + 1, "random regular requires n > d");
  RLOCAL_CHECK((static_cast<std::int64_t>(n) * d) % 2 == 0,
               "n*d must be even");
  std::mt19937_64 rng(seed);
  // Configuration model with retry: pair up node stubs; reject self-loops
  // and duplicate edges; after a bounded number of restarts, fall back to
  // keeping the valid pairs only (near-regular).
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (int attempt = 0; attempt < 64; ++attempt) {
    stubs.clear();
    for (NodeId v = 0; v < n; ++v) {
      for (int i = 0; i < d; ++i) stubs.push_back(v);
    }
    std::shuffle(stubs.begin(), stubs.end(), rng);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    bool ok = true;
    std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      NodeId u = stubs[i];
      NodeId v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      auto& au = adj[static_cast<std::size_t>(u)];
      if (std::find(au.begin(), au.end(), v) != au.end()) {
        ok = false;
        break;
      }
      au.push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
      pairs.emplace_back(u, v);
    }
    if (ok || attempt == 63) {
      Graph::Builder b(n);
      for (const auto& [u, v] : pairs) b.add_edge(u, v);
      return std::move(b).build();
    }
  }
  RLOCAL_ASSERT(false);  // unreachable
}

Graph make_disjoint_union(const std::vector<const Graph*>& parts) {
  std::int64_t total = 0;
  for (const Graph* g : parts) {
    RLOCAL_CHECK(g != nullptr, "null graph in union");
    total += g->num_nodes();
  }
  RLOCAL_CHECK(total < (1LL << 30), "union too large");
  Graph::Builder b(static_cast<NodeId>(total));
  NodeId base = 0;
  std::uint64_t id_base = 0;
  for (const Graph* g : parts) {
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      b.set_id(base + v, id_base + g->id(v));
      for (const NodeId u : g->neighbors(v)) {
        if (u > v) b.add_edge(base + v, base + u);
      }
    }
    base += g->num_nodes();
    // Space id ranges far apart so uniqueness is preserved.
    std::uint64_t max_id = 0;
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      max_id = std::max(max_id, g->id(v));
    }
    id_base += max_id + 1;
  }
  return std::move(b).build();
}

Graph with_scrambled_ids(const Graph& g, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  std::mt19937_64 rng(seed);
  // Sample n distinct ids from [0, n^3) -- the polynomial id range of the
  // LOCAL model -- via a shuffled stratified draw.
  const std::uint64_t range =
      std::max<std::uint64_t>(8, static_cast<std::uint64_t>(n) *
                                     static_cast<std::uint64_t>(n) *
                                     static_cast<std::uint64_t>(n));
  const std::uint64_t stride = range / std::max<NodeId>(n, 1);
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t lo = static_cast<std::uint64_t>(v) * stride;
    ids[static_cast<std::size_t>(v)] =
        lo + rng() % std::max<std::uint64_t>(stride, 1);
  }
  std::shuffle(ids.begin(), ids.end(), rng);
  Graph::Builder b(n);
  for (NodeId v = 0; v < n; ++v) {
    b.set_id(v, ids[static_cast<std::size_t>(v)]);
    for (const NodeId u : g.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  return std::move(b).build();
}

namespace {

/// The single definition of the zoo, as (name, pure factory) pairs; the
/// eager and lazy spellings below differ only in when the factories run.
std::vector<ZooEntry> zoo_entries(NodeId scale, std::uint64_t seed) {
  RLOCAL_CHECK(scale >= 16, "zoo scale must be >= 16");
  const auto side = static_cast<NodeId>(std::max(
      4.0, std::sqrt(static_cast<double>(scale))));
  int depth = 1;
  while ((ipow(2, static_cast<unsigned>(depth + 1)) - 1) <
         static_cast<std::uint64_t>(scale)) {
    ++depth;
  }
  std::vector<ZooEntry> zoo;
  const auto add = [&zoo](std::string name, std::function<Graph()> factory) {
    zoo.push_back({std::move(name), Graph{}, std::move(factory)});
  };
  add("path", [scale] { return make_path(scale); });
  add("cycle", [scale] { return make_cycle(scale); });
  add("grid", [side] { return make_grid(side, side); });
  add("torus", [side] { return make_torus(side, side); });
  add("binary_tree", [depth] { return make_balanced_tree(2, depth); });
  add("hypercube", [scale] {
    return make_hypercube(ceil_log2(static_cast<std::uint64_t>(scale)));
  });
  add("caterpillar", [scale] { return make_caterpillar(scale / 4, 3); });
  add("ring_of_cliques", [scale] {
    return make_ring_of_cliques(std::max<NodeId>(3, scale / 8), 8);
  });
  add("gnp_sparse", [scale, seed] {
    return make_gnp(scale, 3.0 / static_cast<double>(scale), seed);
  });
  add("random_4regular", [scale, seed] {
    return make_random_regular(scale + (scale % 2), 4, seed + 1);
  });
  // Scrambled-id variants of two of them, to exercise id-based tie breaks.
  add("path_scrambled", [scale, seed] {
    return with_scrambled_ids(make_path(scale), seed + 2);
  });
  add("grid_scrambled", [side, seed] {
    return with_scrambled_ids(make_grid(side, side), seed + 3);
  });
  return zoo;
}

}  // namespace

std::vector<ZooEntry> make_zoo(NodeId scale, std::uint64_t seed) {
  std::vector<ZooEntry> zoo = zoo_entries(scale, seed);
  for (ZooEntry& entry : zoo) entry.graph = entry.factory();
  return zoo;
}

std::vector<ZooEntry> make_zoo_lazy(NodeId scale, std::uint64_t seed) {
  return zoo_entries(scale, seed);
}

}  // namespace rlocal
