// Fundamental graph algorithms used as building blocks everywhere:
// BFS layers, multi-source BFS with owners (Voronoi clustering), connected
// components, eccentricities/diameter, graph powers, induced subgraphs.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace rlocal {

inline constexpr std::int32_t kUnreachable =
    std::numeric_limits<std::int32_t>::max();

/// Distances from `source`; kUnreachable where not connected.
std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId source);

/// Distances from the nearest of `sources` (empty -> all kUnreachable).
std::vector<std::int32_t> multi_source_distances(
    const Graph& g, const std::vector<NodeId>& sources);

/// Voronoi clustering: every node reachable from some source is assigned to
/// its nearest source; ties broken by smaller *identifier* of the source
/// (matching LOCAL-model tie-breaks). Unreachable nodes get owner -1.
struct VoronoiResult {
  std::vector<NodeId> owner;          ///< owning source per node, or -1
  std::vector<std::int32_t> dist;     ///< distance to owner, or kUnreachable
  std::vector<NodeId> parent;         ///< BFS-tree parent toward owner, or -1
};
VoronoiResult voronoi_clusters(const Graph& g,
                               const std::vector<NodeId>& sources);

/// Connected components; returns component index per node (0-based, dense).
struct Components {
  std::vector<NodeId> component;  ///< per node
  NodeId count = 0;
};
Components connected_components(const Graph& g);

/// Eccentricity of `v` within its component.
std::int32_t eccentricity(const Graph& g, NodeId v);

/// Exact diameter (max eccentricity over all nodes; O(n*m) -- use on small
/// graphs or per-cluster subgraphs only). Disconnected graphs: max over
/// components.
std::int32_t diameter(const Graph& g);

/// The r-th power graph: u~v iff 1 <= dist(u,v) <= r. Node ids preserved.
Graph power_graph(const Graph& g, int r);

/// Induced subgraph on `keep` (need not be sorted); `origin[i]` maps the new
/// index i back to the original node.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> origin;
};
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& keep);

/// True iff `s` is an independent set.
bool is_independent_set(const Graph& g, const std::vector<bool>& s);

/// True iff `s` is a maximal independent set.
bool is_maximal_independent_set(const Graph& g, const std::vector<bool>& s);

/// Greedy sequential coloring (first-fit in the given order); returns colors
/// 0-based. Used as baseline/validator fodder.
std::vector<int> greedy_coloring(const Graph& g,
                                 const std::vector<NodeId>& order);

}  // namespace rlocal
