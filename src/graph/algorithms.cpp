#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace rlocal {

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId source) {
  return multi_source_distances(g, {source});
}

std::vector<std::int32_t> multi_source_distances(
    const Graph& g, const std::vector<NodeId>& sources) {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()),
                                 kUnreachable);
  std::deque<NodeId> queue;
  for (const NodeId s : sources) {
    RLOCAL_CHECK(s >= 0 && s < g.num_nodes(), "source out of range");
    if (dist[static_cast<std::size_t>(s)] != 0) {
      dist[static_cast<std::size_t>(s)] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const std::int32_t dv = dist[static_cast<std::size_t>(v)];
    for (const NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == kUnreachable) {
        dist[static_cast<std::size_t>(u)] = dv + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

VoronoiResult voronoi_clusters(const Graph& g,
                               const std::vector<NodeId>& sources) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  VoronoiResult result;
  result.owner.assign(n, -1);
  result.dist.assign(n, kUnreachable);
  result.parent.assign(n, -1);

  // BFS layer by layer; within a layer, a node adopts the owner whose source
  // has the smallest identifier among all offers, which makes the result
  // independent of the order neighbors are scanned (it equals what the
  // distributed flooding with id-based tie-break computes).
  std::vector<NodeId> frontier;
  for (const NodeId s : sources) {
    RLOCAL_CHECK(s >= 0 && s < g.num_nodes(), "source out of range");
    result.owner[static_cast<std::size_t>(s)] = s;
    result.dist[static_cast<std::size_t>(s)] = 0;
    frontier.push_back(s);
  }
  std::int32_t layer = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++layer;
    next.clear();
    for (const NodeId v : frontier) {
      const NodeId owner_v = result.owner[static_cast<std::size_t>(v)];
      for (const NodeId u : g.neighbors(v)) {
        auto& owner_u = result.owner[static_cast<std::size_t>(u)];
        auto& dist_u = result.dist[static_cast<std::size_t>(u)];
        if (dist_u == kUnreachable) {
          owner_u = owner_v;
          dist_u = layer;
          result.parent[static_cast<std::size_t>(u)] = v;
          next.push_back(u);
        } else if (dist_u == layer &&
                   g.id(owner_v) < g.id(owner_u)) {
          owner_u = owner_v;
          result.parent[static_cast<std::size_t>(u)] = v;
        }
      }
    }
    // Owners of layer-L nodes are final once the whole L-1 frontier has been
    // scanned: every offer to a layer-L node originates one layer earlier,
    // and an inductive argument shows each node's owner equals the minimum-id
    // source at exactly its distance -- the distributed flooding result.
    frontier = next;
  }
  return result;
}

Components connected_components(const Graph& g) {
  Components result;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  result.component.assign(n, -1);
  NodeId next_component = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (result.component[static_cast<std::size_t>(start)] != -1) continue;
    stack.push_back(start);
    result.component[static_cast<std::size_t>(start)] = next_component;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId u : g.neighbors(v)) {
        if (result.component[static_cast<std::size_t>(u)] == -1) {
          result.component[static_cast<std::size_t>(u)] = next_component;
          stack.push_back(u);
        }
      }
    }
    ++next_component;
  }
  result.count = next_component;
  return result;
}

std::int32_t eccentricity(const Graph& g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  std::int32_t ecc = 0;
  for (const std::int32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t diameter(const Graph& g) {
  std::int32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, eccentricity(g, v));
  }
  return best;
}

Graph power_graph(const Graph& g, int r) {
  RLOCAL_CHECK(r >= 1, "graph power requires r >= 1");
  Graph::Builder b(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) b.set_id(v, g.id(v));
  // BFS to depth r from each node.
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::deque<NodeId> queue{v};
    dist[static_cast<std::size_t>(v)] = 0;
    touched.assign(1, v);
    while (!queue.empty()) {
      const NodeId x = queue.front();
      queue.pop_front();
      const std::int32_t dx = dist[static_cast<std::size_t>(x)];
      if (dx == r) continue;
      for (const NodeId u : g.neighbors(x)) {
        if (dist[static_cast<std::size_t>(u)] == -1) {
          dist[static_cast<std::size_t>(u)] = dx + 1;
          touched.push_back(u);
          queue.push_back(u);
          if (u > v) b.add_edge(v, u);
        }
      }
    }
    for (const NodeId t : touched) dist[static_cast<std::size_t>(t)] = -1;
  }
  return std::move(b).build();
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& keep) {
  InducedSubgraph result;
  result.origin = keep;
  std::sort(result.origin.begin(), result.origin.end());
  result.origin.erase(
      std::unique(result.origin.begin(), result.origin.end()),
      result.origin.end());
  std::vector<NodeId> index_of(static_cast<std::size_t>(g.num_nodes()), -1);
  for (std::size_t i = 0; i < result.origin.size(); ++i) {
    index_of[static_cast<std::size_t>(result.origin[i])] =
        static_cast<NodeId>(i);
  }
  Graph::Builder b(static_cast<NodeId>(result.origin.size()));
  for (std::size_t i = 0; i < result.origin.size(); ++i) {
    const NodeId v = result.origin[i];
    b.set_id(static_cast<NodeId>(i), g.id(v));
    for (const NodeId u : g.neighbors(v)) {
      const NodeId j = index_of[static_cast<std::size_t>(u)];
      if (j != -1 && j > static_cast<NodeId>(i)) {
        b.add_edge(static_cast<NodeId>(i), j);
      }
    }
  }
  result.graph = std::move(b).build();
  return result;
}

bool is_independent_set(const Graph& g, const std::vector<bool>& s) {
  RLOCAL_CHECK(s.size() == static_cast<std::size_t>(g.num_nodes()),
               "set size mismatch");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!s[static_cast<std::size_t>(v)]) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (s[static_cast<std::size_t>(u)]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, const std::vector<bool>& s) {
  if (!is_independent_set(g, s)) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (s[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (const NodeId u : g.neighbors(v)) {
      if (s[static_cast<std::size_t>(u)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

std::vector<int> greedy_coloring(const Graph& g,
                                 const std::vector<NodeId>& order) {
  RLOCAL_CHECK(order.size() == static_cast<std::size_t>(g.num_nodes()),
               "order must be a permutation of all nodes");
  std::vector<int> color(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<bool> used;
  for (const NodeId v : order) {
    used.assign(static_cast<std::size_t>(g.degree(v)) + 2, false);
    for (const NodeId u : g.neighbors(v)) {
      const int cu = color[static_cast<std::size_t>(u)];
      if (cu >= 0 && cu < static_cast<int>(used.size())) {
        used[static_cast<std::size_t>(cu)] = true;
      }
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

}  // namespace rlocal
