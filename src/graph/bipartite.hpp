// Bipartite graphs H = (U, V, E) for the splitting problem of Ghaffari,
// Kuhn, and Maus [GKM17] (Lemma 3.4 of the paper): color each node of V red
// or blue such that every node of U has at least one neighbor of each color.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace rlocal {

/// Left nodes ("constraints") indexed 0..num_left-1, right nodes
/// ("choosers") indexed 0..num_right-1. Edges stored CSR from the left side.
class BipartiteGraph {
 public:
  class Builder {
   public:
    Builder(std::int32_t num_left, std::int32_t num_right);
    void add_edge(std::int32_t u, std::int32_t v);
    BipartiteGraph build() &&;

   private:
    std::int32_t num_left_;
    std::int32_t num_right_;
    std::vector<std::pair<std::int32_t, std::int32_t>> edges_;
  };

  std::int32_t num_left() const { return num_left_; }
  std::int32_t num_right() const { return num_right_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjacency_.size());
  }

  /// Right-side neighbors of left node u.
  std::span<const std::int32_t> left_neighbors(std::int32_t u) const {
    RLOCAL_CHECK(u >= 0 && u < num_left_, "left index out of range");
    return std::span<const std::int32_t>(
        adjacency_.data() + offsets_[static_cast<std::size_t>(u)],
        adjacency_.data() + offsets_[static_cast<std::size_t>(u) + 1]);
  }

  std::int32_t min_left_degree() const;

 private:
  BipartiteGraph() = default;
  std::int32_t num_left_ = 0;
  std::int32_t num_right_ = 0;
  std::vector<std::int64_t> offsets_;
  std::vector<std::int32_t> adjacency_;
};

/// Random splitting instance: each of `num_left` constraint nodes picks
/// exactly `degree` distinct right neighbors uniformly at random.
BipartiteGraph make_random_splitting_instance(std::int32_t num_left,
                                              std::int32_t num_right,
                                              std::int32_t degree,
                                              std::uint64_t seed);

/// Structured instance: right nodes on a line, each left node connected to a
/// contiguous window of `degree` right nodes (high overlap between
/// constraints -- the hard regime for limited independence).
BipartiteGraph make_window_splitting_instance(std::int32_t num_left,
                                              std::int32_t num_right,
                                              std::int32_t degree);

}  // namespace rlocal
