// The payoff the paper's framing rests on: given a network decomposition
// with poly(log n) parameters, classic problems derandomize. Colors are
// processed in order; same-color clusters are non-adjacent, so each cluster
// decides its members locally (gathering its ball costs O(diameter) rounds)
// knowing every earlier color's output -- the [AGLP89]/[GKM17] scheme.
//
// Round cost charged: per color, 2 * (max cluster tree diameter) + 2 (gather
// + local solve + scatter), i.e. O(colors * diameter) total -- poly(log n)
// whenever the decomposition has poly(log n) parameters, which is exactly
// why P-RLOCAL problems land in deterministic poly(log n) time once a
// decomposition exists.
#pragma once

#include <vector>

#include "decomp/decomposition.hpp"
#include "graph/graph.hpp"

namespace rlocal {

struct DecompositionMisResult {
  std::vector<bool> in_mis;
  int rounds_charged = 0;
};

/// Deterministic MIS driven by a (valid) decomposition: clusters decide in
/// color order; members join unless a neighbor already joined.
DecompositionMisResult mis_from_decomposition(const Graph& g,
                                              const Decomposition& d);

struct DecompositionColoringResult {
  std::vector<int> color;  ///< proper (Delta+1)-coloring
  int rounds_charged = 0;
};

/// Deterministic (Delta+1)-coloring by the same color-ordered scheme.
DecompositionColoringResult coloring_from_decomposition(
    const Graph& g, const Decomposition& d);

}  // namespace rlocal
