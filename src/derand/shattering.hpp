// Theorem 4.2: boosting the success probability of network decomposition
// far beyond 1 - 1/poly(n) via graph shattering.
//
// Pipeline (following the paper's proof):
//   1. run the Elkin-Neiman decomposition (success 1 - 1/poly(n) per node);
//   2. V-bar := nodes left unclustered. Any (2t+1)-separated subset of
//      V-bar has independent failure events, so |separated subset| >= K
//      happens with probability <= n^-K -- the boosted error bound with
//      K = 2^{eps log^2 T};
//   3. compute a (2t+1, O(t log n))-ruling set of V-bar, grow Voronoi
//      clusters around it (these may pass through clustered nodes: weak
//      diameter), contract to the leftover cluster graph;
//   4. decompose the leftover cluster graph deterministically (here:
//      gather-and-ball-carve per component, standing in for [Gha19] /
//      [PS92]; see DESIGN.md) and lift, with a palette disjoint from
//      phase 1's so congestion stays 1 per color.
#pragma once

#include "decomp/decomposition.hpp"
#include "decomp/elkin_neiman.hpp"
#include "graph/graph.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

struct ShatteringOptions {
  /// Phases for the base EN run. Fewer phases force leftovers (useful for
  /// exercising the second stage); 0 means the w.h.p. default.
  int base_phases = 0;
  EnOptions en;  ///< further EN options (shift cap, stream base)
};

struct ShatteringResult {
  Decomposition decomposition;
  bool success = false;        ///< final decomposition total and valid
  bool base_complete = false;  ///< EN already clustered everything
  int base_rounds = 0;
  int total_rounds = 0;
  int colors = 0;
  // Shattering statistics (the quantities Theorem 4.2's analysis bounds):
  int leftover_nodes = 0;
  int leftover_components = 0;
  int max_leftover_component = 0;
  int separated_set_size = 0;  ///< greedy (2t+1)-separated subset of V-bar
  int ruling_set_size = 0;
};

ShatteringResult boosted_decomposition(const Graph& g, NodeRandomness& rnd,
                                       const ShatteringOptions& options = {});

/// Size of a greedily-built d-separated subset of `nodes` (lower bound on
/// the maximum; the quantity K bounds in Theorem 4.2's proof).
int greedy_separated_subset(const Graph& g, const std::vector<NodeId>& nodes,
                            int d);

}  // namespace rlocal
