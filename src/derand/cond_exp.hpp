// Method of conditional expectations: the deterministic engine behind the
// [GKM17]/[GHK18] derandomization framework the paper builds on (and behind
// our conflict-free base case). Here: deterministic splitting.
//
// For the splitting instance H = (U, V, E) the pessimistic estimator is
// exact: E[#monochromatic U-nodes] = sum_u (P[all red] + P[all blue] given
// the partial coloring). Processing V in any order and picking the color
// that does not increase the estimator keeps it non-increasing; when the
// initial value is < 1 (min degree >= log2(2|U|) + 1), the final coloring
// has zero violations -- a zero-randomness SLOCAL-style algorithm.
#pragma once

#include <vector>

#include "graph/bipartite.hpp"

namespace rlocal {

struct CondExpSplittingResult {
  std::vector<bool> red;
  int violations = 0;
  double initial_estimate = 0.0;  ///< E[#violations] before any choice
  double final_estimate = 0.0;    ///< equals #violations (all decided)
};

CondExpSplittingResult conditional_expectation_splitting(
    const BipartiteGraph& h);

}  // namespace rlocal
