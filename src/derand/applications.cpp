#include "derand/applications.hpp"

#include <algorithm>

namespace rlocal {

namespace {

/// Cluster indices grouped by color, and the per-color max tree diameter
/// (what the gather/scatter rounds cost).
struct ColorSchedule {
  std::vector<std::vector<std::size_t>> clusters_of_color;
  std::vector<int> gather_rounds;  ///< per color
};

ColorSchedule make_schedule(const Graph& g, const Decomposition& d) {
  RLOCAL_CHECK(d.cluster_of.size() == static_cast<std::size_t>(g.num_nodes()),
               "decomposition does not match graph");
  ColorSchedule schedule;
  schedule.clusters_of_color.resize(static_cast<std::size_t>(d.num_colors));
  schedule.gather_rounds.assign(static_cast<std::size_t>(d.num_colors), 0);
  for (std::size_t c = 0; c < d.clusters.size(); ++c) {
    const Cluster& cluster = d.clusters[c];
    RLOCAL_CHECK(cluster.color >= 0 && cluster.color < d.num_colors,
                 "cluster color out of range");
    schedule.clusters_of_color[static_cast<std::size_t>(cluster.color)]
        .push_back(c);
    // The gather depth is bounded by the cluster tree size (a conservative
    // stand-in for its diameter; exact diameters are available from
    // validate_decomposition when callers want tight accounting).
    schedule.gather_rounds[static_cast<std::size_t>(cluster.color)] =
        std::max(schedule.gather_rounds[static_cast<std::size_t>(
                     cluster.color)],
                 static_cast<int>(cluster.tree_nodes.size()));
  }
  return schedule;
}

}  // namespace

DecompositionMisResult mis_from_decomposition(const Graph& g,
                                              const Decomposition& d) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const ColorSchedule schedule = make_schedule(g, d);
  DecompositionMisResult result;
  result.in_mis.assign(n, false);
  std::vector<bool> decided(n, false);
  for (int color = 0; color < d.num_colors; ++color) {
    for (const std::size_t c :
         schedule.clusters_of_color[static_cast<std::size_t>(color)]) {
      // Each cluster solves locally, in ascending-id member order.
      std::vector<NodeId> members = d.clusters[c].members;
      std::sort(members.begin(), members.end(),
                [&g](NodeId a, NodeId b) { return g.id(a) < g.id(b); });
      for (const NodeId v : members) {
        bool blocked = false;
        for (const NodeId u : g.neighbors(v)) {
          if (result.in_mis[static_cast<std::size_t>(u)]) {
            blocked = true;
            break;
          }
        }
        if (!blocked) result.in_mis[static_cast<std::size_t>(v)] = true;
        decided[static_cast<std::size_t>(v)] = true;
      }
    }
    result.rounds_charged +=
        2 * schedule.gather_rounds[static_cast<std::size_t>(color)] + 2;
  }
  for (const bool was_decided : decided) {
    RLOCAL_CHECK(was_decided, "decomposition must cover every node");
  }
  return result;
}

DecompositionColoringResult coloring_from_decomposition(
    const Graph& g, const Decomposition& d) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const ColorSchedule schedule = make_schedule(g, d);
  DecompositionColoringResult result;
  result.color.assign(n, -1);
  std::vector<bool> used;
  for (int color = 0; color < d.num_colors; ++color) {
    for (const std::size_t c :
         schedule.clusters_of_color[static_cast<std::size_t>(color)]) {
      std::vector<NodeId> members = d.clusters[c].members;
      std::sort(members.begin(), members.end(),
                [&g](NodeId a, NodeId b) { return g.id(a) < g.id(b); });
      for (const NodeId v : members) {
        used.assign(static_cast<std::size_t>(g.degree(v)) + 2, false);
        for (const NodeId u : g.neighbors(v)) {
          const int cu = result.color[static_cast<std::size_t>(u)];
          if (cu >= 0 && cu <= g.degree(v)) {
            used[static_cast<std::size_t>(cu)] = true;
          }
        }
        int pick = 0;
        while (used[static_cast<std::size_t>(pick)]) ++pick;
        result.color[static_cast<std::size_t>(v)] = pick;
      }
    }
    result.rounds_charged +=
        2 * schedule.gather_rounds[static_cast<std::size_t>(color)] + 2;
  }
  return result;
}

}  // namespace rlocal
