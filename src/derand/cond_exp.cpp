#include "derand/cond_exp.hpp"

#include <cmath>

#include "cost/meter.hpp"
#include "problems/splitting.hpp"

namespace rlocal {

CondExpSplittingResult conditional_expectation_splitting(
    const BipartiteGraph& h) {
  CondExpSplittingResult result;
  const auto num_left = static_cast<std::size_t>(h.num_left());
  const auto num_right = static_cast<std::size_t>(h.num_right());

  // Right-side incidence lists (the CSR is left-based).
  std::vector<std::vector<std::int32_t>> lefts_of(num_right);
  for (std::int32_t u = 0; u < h.num_left(); ++u) {
    for (const std::int32_t v : h.left_neighbors(u)) {
      lefts_of[static_cast<std::size_t>(v)].push_back(u);
    }
  }

  // Per-left-node state under the partial coloring.
  std::vector<int> undecided(num_left, 0);
  std::vector<bool> saw_red(num_left, false);
  std::vector<bool> saw_blue(num_left, false);
  for (std::int32_t u = 0; u < h.num_left(); ++u) {
    undecided[static_cast<std::size_t>(u)] =
        static_cast<int>(h.left_neighbors(u).size());
  }

  auto estimate_of = [&](std::int32_t u) {
    // P[all red] + P[all blue] given the current partial coloring.
    const int k = undecided[static_cast<std::size_t>(u)];
    const double p = std::pow(0.5, k);
    double e = 0.0;
    if (!saw_blue[static_cast<std::size_t>(u)]) e += p;  // all-red possible
    if (!saw_red[static_cast<std::size_t>(u)]) e += p;   // all-blue possible
    return e;
  };

  double estimate = 0.0;
  for (std::int32_t u = 0; u < h.num_left(); ++u) estimate += estimate_of(u);
  result.initial_estimate = estimate;

  result.red.assign(num_right, false);
  for (std::int32_t v = 0; v < h.num_right(); ++v) {
    // Deterministic long-runner: the sweep deadline reaches the
    // derandomization loop through the run-scope checkpoint.
    cost::checkpoint();
    // Exact delta of the estimator for both choices of v's color.
    double delta_red = 0.0;
    double delta_blue = 0.0;
    for (const std::int32_t u : lefts_of[static_cast<std::size_t>(v)]) {
      const double before = estimate_of(u);
      undecided[static_cast<std::size_t>(u)] -= 1;

      const bool old_red = saw_red[static_cast<std::size_t>(u)];
      saw_red[static_cast<std::size_t>(u)] = true;
      delta_red += estimate_of(u) - before;
      saw_red[static_cast<std::size_t>(u)] = old_red;

      const bool old_blue = saw_blue[static_cast<std::size_t>(u)];
      saw_blue[static_cast<std::size_t>(u)] = true;
      delta_blue += estimate_of(u) - before;
      saw_blue[static_cast<std::size_t>(u)] = old_blue;

      undecided[static_cast<std::size_t>(u)] += 1;
    }
    const bool choose_red = delta_red <= delta_blue;
    result.red[static_cast<std::size_t>(v)] = choose_red;
    estimate += choose_red ? delta_red : delta_blue;
    for (const std::int32_t u : lefts_of[static_cast<std::size_t>(v)]) {
      undecided[static_cast<std::size_t>(u)] -= 1;
      if (choose_red) {
        saw_red[static_cast<std::size_t>(u)] = true;
      } else {
        saw_blue[static_cast<std::size_t>(u)] = true;
      }
    }
  }

  result.final_estimate = estimate;
  result.violations = count_splitting_violations(h, result.red);
  return result;
}

}  // namespace rlocal
