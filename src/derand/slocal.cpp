#include "derand/slocal.hpp"

#include <algorithm>
#include <deque>

namespace rlocal {

std::vector<NodeId> SlocalView::ball(int radius) const {
  RLOCAL_CHECK(radius >= 0, "radius must be non-negative");
  *max_radius_seen_ = std::max(*max_radius_seen_, radius);
  std::vector<NodeId> nodes{center_};
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g_->num_nodes()),
                                 -1);
  dist[static_cast<std::size_t>(center_)] = 0;
  std::deque<NodeId> queue{center_};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (dist[static_cast<std::size_t>(v)] == radius) continue;
    for (const NodeId u : g_->neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        nodes.push_back(u);
        queue.push_back(u);
      }
    }
  }
  return nodes;
}

std::int64_t SlocalView::state(NodeId u, int radius) const {
  RLOCAL_CHECK(radius >= 0, "radius must be non-negative");
  *max_radius_seen_ = std::max(*max_radius_seen_, radius);
  // Contract check: u must lie within the declared radius.
  const auto dist = bfs_distances(*g_, center_);
  RLOCAL_CHECK(dist[static_cast<std::size_t>(u)] <= radius,
               "SLOCAL step read outside its declared locality");
  return (*state_)[static_cast<std::size_t>(u)];
}

SlocalResult run_slocal(
    const Graph& g, const std::vector<NodeId>& order,
    const std::function<std::int64_t(const SlocalView&)>& step) {
  RLOCAL_CHECK(order.size() == static_cast<std::size_t>(g.num_nodes()),
               "order must cover all nodes");
  SlocalResult result;
  result.state.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  for (const NodeId v : order) {
    SlocalView view(g, v, result.state, &result.locality);
    result.state[static_cast<std::size_t>(v)] = step(view);
  }
  return result;
}

SlocalResult slocal_greedy_mis(const Graph& g,
                               const std::vector<NodeId>& order) {
  return run_slocal(g, order, [&g](const SlocalView& view) -> std::int64_t {
    for (const NodeId u : g.neighbors(view.center())) {
      if (view.state(u, 1) == 1) return 0;
    }
    return 1;
  });
}

SlocalResult slocal_greedy_coloring(const Graph& g,
                                    const std::vector<NodeId>& order) {
  return run_slocal(g, order, [&g](const SlocalView& view) -> std::int64_t {
    std::vector<bool> used(
        static_cast<std::size_t>(g.degree(view.center())) + 2, false);
    for (const NodeId u : g.neighbors(view.center())) {
      const std::int64_t cu = view.state(u, 1);
      if (cu >= 0 && cu < static_cast<std::int64_t>(used.size())) {
        used[static_cast<std::size_t>(cu)] = true;
      }
    }
    std::int64_t c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    return c;
  });
}

}  // namespace rlocal
