#include "derand/lie.hpp"

#include <cmath>

#include "support/math.hpp"

namespace rlocal {

EnResult run_with_pretended_n(const Graph& g, std::uint64_t pretended_n,
                              NodeRandomness& rnd) {
  RLOCAL_CHECK(pretended_n >= static_cast<std::uint64_t>(g.num_nodes()),
               "pretended N must be at least the actual size");
  const int logN = log2n(pretended_n);
  EnOptions options;
  options.phases = 10 * logN;
  options.shift_cap = 10 * logN;
  return elkin_neiman_decomposition(g, rnd, options);
}

double en_failure_upper_bound(NodeId actual_n, std::uint64_t pretended_n) {
  const int phases = 10 * log2n(pretended_n);
  // P[node unclustered after all phases] <= 2^-phases (EN16 Claim 6 gives
  // per-phase clustering probability >= 1/2); union bound over n nodes.
  const double log2_bound =
      std::log2(static_cast<double>(std::max<NodeId>(1, actual_n))) -
      static_cast<double>(phases);
  return std::pow(2.0, std::min(0.0, log2_bound));
}

double lie_required_log2_time(double n, double beta, double eps) {
  RLOCAL_CHECK(n >= 2 && beta > 2 && eps > 0, "bad Theorem 4.3 parameters");
  // Need 2^{eps log2^beta T(N)} >= n^2, i.e.
  // log2 T(N) >= (2 log2 n / eps)^{1/beta}.
  return std::pow(2.0 * std::log2(n) / eps, 1.0 / beta);
}

double lie_required_log2_n(double n, double eps) {
  RLOCAL_CHECK(n >= 2 && eps > 0, "bad Theorem 4.6 parameters");
  // Need 2^{log2^eps N} >= n^2, i.e. log2 N >= (2 log2 n)^{1/eps}.
  return std::pow(2.0 * std::log2(n), 1.0 / eps);
}

}  // namespace rlocal
