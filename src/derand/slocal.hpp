// The SLOCAL model of Ghaffari-Kuhn-Maus [GKM17], which the paper leans on:
// a sequential algorithm processes nodes in an arbitrary order; when node v
// is processed it may read the current state within radius r of v (its
// locality) and must commit v's output. P-RLOCAL = P-SLOCAL [GHK18], which
// is why poly(log n)-locality SLOCAL algorithms are the derandomization
// currency of the whole area.
//
// The executor measures the locality a given step function actually uses:
// each step receives a restricted View and the executor records the largest
// radius ever queried.
#pragma once

#include <functional>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace rlocal {

/// Read access to the current state within a ball around the processed
/// node; records the maximum radius queried.
class SlocalView {
 public:
  SlocalView(const Graph& g, NodeId center,
             const std::vector<std::int64_t>& state, int* max_radius_seen)
      : g_(&g), center_(center), state_(&state),
        max_radius_seen_(max_radius_seen) {}

  NodeId center() const { return center_; }

  /// Nodes at distance <= radius of the center (includes the center).
  std::vector<NodeId> ball(int radius) const;

  /// State of node u, provided dist(center, u) <= radius (the model's
  /// locality contract; checked).
  std::int64_t state(NodeId u, int radius) const;

 private:
  const Graph* g_;
  NodeId center_;
  const std::vector<std::int64_t>* state_;
  int* max_radius_seen_;
};

struct SlocalResult {
  std::vector<std::int64_t> state;  ///< final per-node outputs
  int locality = 0;                 ///< max radius any step queried
};

/// Runs `step` on every node in `order`; `step` returns the node's output,
/// which is immediately visible to later steps. Initial state is -1.
SlocalResult run_slocal(
    const Graph& g, const std::vector<NodeId>& order,
    const std::function<std::int64_t(const SlocalView&)>& step);

/// Greedy MIS as a locality-1 SLOCAL algorithm (output 1 = in MIS).
SlocalResult slocal_greedy_mis(const Graph& g,
                               const std::vector<NodeId>& order);

/// Greedy (Delta+1)-coloring as a locality-1 SLOCAL algorithm.
SlocalResult slocal_greedy_coloring(const Graph& g,
                                    const std::vector<NodeId>& order);

}  // namespace rlocal
