#include "derand/brute_force.hpp"

#include <algorithm>

#include "cost/meter.hpp"
#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace rlocal {

bool fixed_priority_mis_succeeds(const Graph& g,
                                 const std::vector<std::uint64_t>& phi,
                                 int round_budget) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  enum class S { kUndecided, kIn, kOut };
  std::vector<S> state(n, S::kUndecided);
  for (int it = 0; it < round_budget; ++it) {
    std::vector<NodeId> joiners;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (state[static_cast<std::size_t>(v)] != S::kUndecided) continue;
      bool wins = true;
      for (const NodeId u : g.neighbors(v)) {
        if (state[static_cast<std::size_t>(u)] != S::kUndecided) continue;
        const std::uint64_t pv = phi[static_cast<std::size_t>(g.id(v))];
        const std::uint64_t pu = phi[static_cast<std::size_t>(g.id(u))];
        if (pu > pv || (pu == pv && g.id(u) < g.id(v))) {
          wins = false;
          break;
        }
      }
      if (wins) joiners.push_back(v);
    }
    for (const NodeId v : joiners) {
      state[static_cast<std::size_t>(v)] = S::kIn;
      for (const NodeId u : g.neighbors(v)) {
        if (state[static_cast<std::size_t>(u)] == S::kUndecided) {
          state[static_cast<std::size_t>(u)] = S::kOut;
        }
      }
    }
  }
  std::vector<bool> in_mis(n, false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    in_mis[static_cast<std::size_t>(v)] =
        state[static_cast<std::size_t>(v)] == S::kIn;
  }
  return is_maximal_independent_set(g, in_mis);
}

BruteForceResult brute_force_derandomize_mis(const BruteForceOptions& opt) {
  RLOCAL_CHECK(opt.max_n >= 1 && opt.max_n <= 5,
               "family enumeration is exponential; max_n <= 5");
  RLOCAL_CHECK(opt.bits_per_id >= 1 && opt.bits_per_id <= 8,
               "bits_per_id in [1, 8]");
  RLOCAL_CHECK(
      static_cast<std::uint64_t>(opt.bits_per_id) *
              static_cast<std::uint64_t>(opt.max_n) <=
          24,
      "total seed space must stay enumerable");

  // Family G_n: all labelled graphs on exactly j nodes (ids 0..j-1) for
  // every j <= max_n, all edge subsets.
  std::vector<Graph> family;
  for (int j = 1; j <= opt.max_n; ++j) {
    const int pairs = j * (j - 1) / 2;
    for (std::uint64_t mask = 0; mask < (1ULL << pairs); ++mask) {
      Graph::Builder b(j);
      int bit = 0;
      for (NodeId u = 0; u < j; ++u) {
        for (NodeId v = u + 1; v < j; ++v) {
          if ((mask >> bit) & 1ULL) b.add_edge(u, v);
          ++bit;
        }
      }
      family.push_back(std::move(b).build());
    }
  }

  BruteForceResult result;
  result.graphs_in_family = family.size();
  const int total_bits = opt.bits_per_id * opt.max_n;
  result.seed_assignments = 1ULL << total_bits;

  std::uint64_t failure_sum = 0;
  for (std::uint64_t seed = 0; seed < result.seed_assignments; ++seed) {
    // Exhaustive enumeration draws no coins; the sweep deadline reaches it
    // once per seed assignment through the run-scope checkpoint.
    cost::checkpoint();
    // Decode phi: bits_per_id bits per identifier.
    std::vector<std::uint64_t> phi(static_cast<std::size_t>(opt.max_n));
    for (int i = 0; i < opt.max_n; ++i) {
      phi[static_cast<std::size_t>(i)] =
          (seed >> (i * opt.bits_per_id)) &
          ((1ULL << opt.bits_per_id) - 1);
    }
    std::uint64_t failures = 0;
    for (const Graph& g : family) {
      if (!fixed_priority_mis_succeeds(g, phi, opt.round_budget)) {
        ++failures;
      }
    }
    failure_sum += failures;
    result.worst_failures = std::max(result.worst_failures, failures);
    if (failures == 0) {
      ++result.perfect_seeds;
      if (result.witness_seed.empty()) result.witness_seed = phi;
    }
  }
  result.mean_failure_fraction =
      static_cast<double>(failure_sum) /
      (static_cast<double>(result.seed_assignments) *
       static_cast<double>(family.size()));
  result.derandomizable = result.perfect_seeds > 0;
  return result;
}

}  // namespace rlocal
