// Lemma 4.1: a randomized algorithm that succeeds with probability
// > 1 - 1/|G_n| on every graph in the family G_n admits a single random-seed
// assignment phi(id) that works for the whole family -- a counting argument
// over |G_n| < 2^{n^2} graphs. This module realizes the argument exactly, at
// the only scale where it is computable: it enumerates every labelled graph
// on <= max_n nodes and every assignment of `bits_per_id` random bits per
// identifier, runs a budgeted Luby MIS driven by those bits, and reports
// which assignments succeed everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rlocal {

struct BruteForceOptions {
  int max_n = 4;        ///< enumerate graphs on 1..max_n labelled nodes
  int bits_per_id = 2;  ///< random bits assigned to each identifier
  int round_budget = 1; ///< Luby iterations allowed (1 makes failures real)
};

struct BruteForceResult {
  std::uint64_t graphs_in_family = 0;
  std::uint64_t seed_assignments = 0;
  std::uint64_t perfect_seeds = 0;   ///< succeed on every family graph
  std::uint64_t worst_failures = 0;  ///< max #failing graphs over seeds
  double mean_failure_fraction = 0;  ///< avg over seeds of failing fraction
  bool derandomizable = false;       ///< perfect_seeds > 0
  std::vector<std::uint64_t> witness_seed;  ///< bits per id, if perfect
};

/// The algorithm being derandomized: Luby MIS where node with identifier i
/// uses phi(i) as its priority for all `round_budget` iterations (a
/// 2^bits-valued priority; ties break by identifier). Success on a graph =
/// the result is a maximal independent set after the budget.
BruteForceResult brute_force_derandomize_mis(const BruteForceOptions& opt);

/// Runs the budgeted fixed-priority Luby on one graph; exposed for tests.
bool fixed_priority_mis_succeeds(const Graph& g,
                                 const std::vector<std::uint64_t>& phi,
                                 int round_budget);

}  // namespace rlocal
