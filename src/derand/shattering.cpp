#include "derand/shattering.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "decomp/ball_carving.hpp"
#include "decomp/cluster_graph.hpp"
#include "decomp/ruling_set.hpp"
#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace rlocal {

int greedy_separated_subset(const Graph& g, const std::vector<NodeId>& nodes,
                            int d) {
  RLOCAL_CHECK(d >= 1, "separation must be >= 1");
  int count = 0;
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()),
                                 kUnreachable);
  std::vector<NodeId> chosen;
  for (const NodeId v : nodes) {
    if (dist[static_cast<std::size_t>(v)] < d) continue;
    chosen.push_back(v);
    ++count;
    dist = multi_source_distances(g, chosen);
  }
  return count;
}

namespace {

/// Builds the weak-diameter leftover clusters of Theorem 4.2's second stage
/// and appends them to `merged` with a palette starting at `palette_offset`.
/// Voronoi trees may pass through already-clustered nodes; each base node
/// lies in at most one Voronoi cluster, so congestion per leftover color
/// stays 1.
void attach_leftover_clusters(const Graph& g,
                              const std::vector<NodeId>& leftover,
                              const VoronoiResult& voronoi,
                              const std::vector<NodeId>& centers,
                              const Decomposition& logical,
                              int palette_offset, Decomposition* merged) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  // center -> logical vertex index.
  std::map<NodeId, NodeId> logical_index;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    logical_index[centers[c]] = static_cast<NodeId>(c);
  }
  // Leftover members per logical vertex.
  std::vector<std::vector<NodeId>> members_of(centers.size());
  for (const NodeId v : leftover) {
    const NodeId o = voronoi.owner[static_cast<std::size_t>(v)];
    RLOCAL_ASSERT(o != -1);
    members_of[static_cast<std::size_t>(logical_index.at(o))].push_back(v);
  }
  // One witness (leftover-adjacent) base edge per logical edge.
  std::map<std::pair<NodeId, NodeId>, std::pair<NodeId, NodeId>> witness;
  std::vector<bool> is_leftover(n, false);
  for (const NodeId v : leftover) is_leftover[static_cast<std::size_t>(v)] =
      true;
  for (const NodeId v : leftover) {
    const NodeId cv = logical_index.at(
        voronoi.owner[static_cast<std::size_t>(v)]);
    for (const NodeId u : g.neighbors(v)) {
      if (!is_leftover[static_cast<std::size_t>(u)]) continue;
      const NodeId cu = logical_index.at(
          voronoi.owner[static_cast<std::size_t>(u)]);
      if (cu == cv) continue;
      const auto key = std::minmax(cv, cu);
      witness.emplace(std::pair<NodeId, NodeId>(key.first, key.second),
                      std::pair<NodeId, NodeId>(v, u));
    }
  }

  for (const Cluster& lc : logical.clusters) {
    Cluster base;
    base.color = palette_offset + lc.color;
    base.center = centers[static_cast<std::size_t>(lc.center)];

    // Subgraph H: Voronoi paths member -> center, plus one witness edge per
    // logical tree edge (with the witnesses' own Voronoi paths).
    std::set<NodeId> h_nodes;
    std::set<std::pair<NodeId, NodeId>> h_edges;  // normalized (min,max)
    auto add_edge = [&h_edges, &h_nodes](NodeId a, NodeId b) {
      h_nodes.insert(a);
      h_nodes.insert(b);
      h_edges.insert({std::min(a, b), std::max(a, b)});
    };
    auto add_path_to_center = [&](NodeId x) {
      h_nodes.insert(x);
      NodeId cur = x;
      while (voronoi.parent[static_cast<std::size_t>(cur)] != -1) {
        const NodeId p = voronoi.parent[static_cast<std::size_t>(cur)];
        add_edge(cur, p);
        cur = p;
      }
    };
    for (const NodeId lv : lc.members) {
      for (const NodeId x : members_of[static_cast<std::size_t>(lv)]) {
        base.members.push_back(x);
        add_path_to_center(x);
      }
      // Include the Voronoi center itself even if it carries no members
      // (it anchors the paths).
      h_nodes.insert(centers[static_cast<std::size_t>(lv)]);
    }
    for (const auto& [a, b] : lc.tree_edges) {
      const auto key = std::minmax(a, b);
      const auto it =
          witness.find({key.first, key.second});
      RLOCAL_ASSERT(it != witness.end());
      const auto [x, y] = it->second;
      add_path_to_center(x);
      add_path_to_center(y);
      add_edge(x, y);
    }

    // Spanning tree of H from the base center (BFS over H's edges).
    std::map<NodeId, std::vector<NodeId>> adj;
    for (const auto& [a, b] : h_edges) {
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    for (const NodeId v : h_nodes) adj[v];
    std::set<NodeId> visited{base.center};
    std::deque<NodeId> queue{base.center};
    base.tree_nodes.push_back(base.center);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const NodeId u : adj[v]) {
        if (visited.insert(u).second) {
          base.tree_nodes.push_back(u);
          base.tree_edges.emplace_back(u, v);
          queue.push_back(u);
        }
      }
    }
    RLOCAL_CHECK(visited.size() == h_nodes.size(),
                 "leftover cluster subgraph is not connected");

    const auto index = static_cast<NodeId>(merged->clusters.size());
    for (const NodeId v : base.members) {
      RLOCAL_ASSERT(merged->cluster_of[static_cast<std::size_t>(v)] == -1);
      merged->cluster_of[static_cast<std::size_t>(v)] = index;
    }
    merged->clusters.push_back(std::move(base));
  }
  merged->num_colors = palette_offset + logical.num_colors;
}

}  // namespace

ShatteringResult boosted_decomposition(const Graph& g, NodeRandomness& rnd,
                                       const ShatteringOptions& options) {
  ShatteringResult result;
  EnOptions en_options = options.en;
  en_options.phases = options.base_phases;
  const EnResult base = elkin_neiman_decomposition(g, rnd, en_options);
  result.base_rounds = base.rounds_charged;
  result.total_rounds = base.rounds_charged;
  result.leftover_nodes = static_cast<int>(base.unclustered.size());

  if (base.all_clustered) {
    result.decomposition = base.decomposition;
    result.colors = base.decomposition.num_colors;
    result.base_complete = true;
    result.success = true;
    return result;
  }

  // --- Stage 2: handle V-bar deterministically. ---
  const std::vector<NodeId>& leftover = base.unclustered;
  const int t = base.rounds_charged;  // the base algorithm's running time

  // Shattering statistics (the quantities the Theorem 4.2 analysis bounds).
  {
    const InducedSubgraph sub = induced_subgraph(g, leftover);
    const Components comps = connected_components(sub.graph);
    result.leftover_components = comps.count;
    std::vector<int> sizes(static_cast<std::size_t>(comps.count), 0);
    for (const NodeId v : comps.component) {
      ++sizes[static_cast<std::size_t>(v)];
    }
    for (const int s : sizes) {
      result.max_leftover_component =
          std::max(result.max_leftover_component, s);
    }
    result.separated_set_size =
        greedy_separated_subset(g, leftover, 2 * t + 1);
  }

  // (2t+1, O(t log n))-ruling set of V-bar, in G.
  const RulingSetResult ruling = ruling_set(g, leftover, 2 * t + 1);
  result.ruling_set_size = static_cast<int>(ruling.set.size());
  result.total_rounds += ruling.rounds_charged;

  // Voronoi clusters around the ruling set over the whole graph; leftover
  // nodes adopt their nearest ruling node, paths may cross clustered nodes.
  const VoronoiResult voronoi = voronoi_clusters(g, ruling.set);
  result.total_rounds += ruling.beta;

  // Leftover cluster graph G_C: adjacency witnessed by leftover nodes.
  std::vector<bool> is_leftover(static_cast<std::size_t>(g.num_nodes()),
                                false);
  for (const NodeId v : leftover) {
    is_leftover[static_cast<std::size_t>(v)] = true;
  }
  std::map<NodeId, NodeId> logical_index;
  for (std::size_t c = 0; c < ruling.set.size(); ++c) {
    logical_index[ruling.set[c]] = static_cast<NodeId>(c);
  }
  Graph::Builder cg_builder(static_cast<NodeId>(ruling.set.size()));
  for (std::size_t c = 0; c < ruling.set.size(); ++c) {
    cg_builder.set_id(static_cast<NodeId>(c), g.id(ruling.set[c]));
  }
  int max_voronoi_radius = 0;
  for (const NodeId v : leftover) {
    max_voronoi_radius = std::max(
        max_voronoi_radius,
        static_cast<int>(voronoi.dist[static_cast<std::size_t>(v)]));
    const NodeId cv =
        logical_index.at(voronoi.owner[static_cast<std::size_t>(v)]);
    for (const NodeId u : g.neighbors(v)) {
      if (u > v || !is_leftover[static_cast<std::size_t>(u)]) continue;
      const NodeId cu =
          logical_index.at(voronoi.owner[static_cast<std::size_t>(u)]);
      if (cu != cv) cg_builder.add_edge(cv, cu);
    }
  }
  const Graph cluster_graph = std::move(cg_builder).build();

  // Deterministic decomposition of the (small) cluster graph; a logical
  // round dilates to O(max Voronoi radius) base rounds.
  const SmallComponentsResult det =
      decompose_components_by_gathering(cluster_graph);
  result.total_rounds += det.rounds_charged * (2 * max_voronoi_radius + 1);

  // Merge: base clusters keep colors [0, base colors); leftover clusters
  // get a fresh palette above.
  Decomposition merged = base.decomposition;
  attach_leftover_clusters(g, leftover, voronoi, ruling.set,
                           det.decomposition, base.decomposition.num_colors,
                           &merged);
  result.decomposition = std::move(merged);
  result.colors = result.decomposition.num_colors;
  result.success = unclustered_nodes(result.decomposition).empty();
  return result;
}

}  // namespace rlocal
