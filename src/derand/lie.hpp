// Theorems 4.3 / 4.6: derandomization by "lying about n".
//
// A non-uniform algorithm must succeed with probability 1 - delta(N) on
// every graph with *at most* N nodes. Feeding it an inflated N makes its
// failure probability collapse (delta(N) << delta(n)) at the cost of the
// larger running time T(N); when delta(N) <= 2^{-n^2}, Lemma 4.1's counting
// argument derandomizes it outright. This module provides (a) the inflated
// runner for the Elkin-Neiman decomposition and (b) calculators for the
// bound arithmetic of Theorems 4.3/4.6 (what N must be, what time results).
#pragma once

#include <cstdint>

#include "decomp/elkin_neiman.hpp"
#include "graph/graph.hpp"
#include "rnd/regime.hpp"

namespace rlocal {

/// Runs EN with every parameter (phase count, shift cap) computed from
/// `pretended_n` instead of the actual size, matching the non-uniform model
/// where nodes are given N as input.
EnResult run_with_pretended_n(const Graph& g, std::uint64_t pretended_n,
                              NodeRandomness& rnd);

/// Per-node failure bound for the multi-phase EN run with parameters from
/// N: each phase leaves a node unclustered with probability <= 1/2, so
/// P[some node of an n-node graph unclustered] <= n * 2^-phases(N).
double en_failure_upper_bound(NodeId actual_n, std::uint64_t pretended_n);

/// Theorem 4.3 arithmetic: given beta > 2 and the success bound
/// 1 - 2^{-2^{eps * log^beta T}}, the N needed so the failure probability
/// drops below 2^{-n^2}, expressed via log2: returns log2(T(N)).
double lie_required_log2_time(double n, double beta, double eps);

/// Theorem 4.6 arithmetic: success 1 - 2^{-2^{log^eps N}} forces
/// log N >= (2 log n)^{1/eps}; returns that log2 N.
double lie_required_log2_n(double n, double eps);

}  // namespace rlocal
