// FleetTracker: per-owner worker telemetry over a claimed drain -- the
// "who is draining my sweep, how fast, and when will it finish" plane
// behind rlocald's /workers, /stragglers and /eta endpoints
// (docs/service.md).
//
// Inputs are purely observational: the store's `claims/` lease files
// (read_all_leases) plus the AggIndex snapshot's per-cell entries. Like the
// claim protocol itself, liveness is never judged by comparing
// cross-process clocks: the tracker remembers (owner, seq, local steady
// time last advanced) per lease and calls a lease's age "time since *this
// process* last saw its (owner, seq) change". A dead worker's lease stops
// advancing, its age grows past stale_after_ms, and the owner is flagged
// stale -- exactly the signal a WorkClaims claimer uses to steal, surfaced
// for humans before the steal happens.
//
// Stragglers are active leases with unfinished cells whose age exceeds
// k x the p90 per-cell wall time (per (solver, regime) of the cells already
// indexed inside the lease's span, falling back to the store-wide p90,
// clamped below by straggler_floor_ms). ETA is remaining cells x the
// store-wide EWMA cell cost, divided over the live workers.
//
// Threading: update() must be called from a single thread (rlocald's
// ingestion loop); view() hands out an immutable snapshot under the same
// swap discipline as AggIndex, so serving never blocks tracking.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "service/agg_index.hpp"

namespace rlocal::service {

struct FleetOptions {
  /// Unchanged-lease age after which its owner is flagged stale (same
  /// meaning as ClaimOptions::ttl_ms, evaluated on this observer's clock).
  std::uint64_t stale_after_ms = 10'000;
  double straggler_factor = 3.0;    ///< k in "older than k x p90"
  double straggler_floor_ms = 1'000.0;  ///< threshold never drops below
  double ewma_alpha = 0.25;         ///< ms-per-cell smoothing
};

/// One worker (lease owner or shard writer) of one store.
struct WorkerRow {
  std::string fingerprint;
  std::string dir;
  std::string owner;
  std::uint64_t ranges_active = 0;  ///< leases currently held, not done
  std::uint64_t ranges_done = 0;    ///< done leases bearing this owner
  std::uint64_t cells_claimed = 0;  ///< cell span of the active leases
  std::uint64_t cells_in_flight = 0;  ///< claimed cells not yet indexed
  std::uint64_t cells_done = 0;     ///< indexed cells in this owner's shard
  /// Freshest active lease's age in ms (proof of life); -1 when the owner
  /// holds no active lease (e.g. finished, or a plain thread-shard writer).
  double heartbeat_age_ms = -1.0;
  double ewma_ms_per_cell = -1.0;   ///< -1 until a cell cost is observed
  bool stale = false;  ///< holds an active lease older than stale_after_ms
};

/// One active lease flagged as a straggler.
struct StragglerRow {
  std::string fingerprint;
  std::string dir;
  std::string owner;
  std::uint64_t range = 0;
  std::uint64_t cells_begin = 0;
  std::uint64_t cells_end = 0;
  std::uint64_t cells_remaining = 0;  ///< unindexed cells in the span
  double age_ms = 0;        ///< unchanged-(owner, seq) age
  double threshold_ms = 0;  ///< k x p90 (clamped) it exceeded
};

/// Per-store completion forecast (mirrors /progress' done accounting).
struct EtaRow {
  std::string fingerprint;
  std::string dir;
  std::uint64_t total_cells = 0;
  std::uint64_t run_cells = 0;        ///< indexed minus skipped
  std::uint64_t remaining_cells = 0;  ///< total minus run
  std::uint64_t active_workers = 0;   ///< owners with a live active lease
  double ms_per_cell = -1.0;  ///< store-wide EWMA; -1 until observed
  /// remaining x ms_per_cell / max(1, active_workers); 0 when done, -1
  /// while no cell cost has been observed yet.
  double eta_ms = -1.0;
  double pct_done = 0;
};

/// Immutable fleet snapshot; deterministic (dir, owner) / (dir, range)
/// ordering.
struct FleetView {
  std::vector<WorkerRow> workers;
  std::vector<StragglerRow> stragglers;
  std::vector<EtaRow> etas;
  std::uint64_t version = 0;
};

class FleetTracker {
 public:
  explicit FleetTracker(FleetOptions options = {});

  /// One observation pass: reads every watched store's leases, folds in the
  /// index snapshot, publishes (and returns) a new view. Single caller.
  std::shared_ptr<const FleetView> update(const IndexSnapshot& snapshot);

  /// Current immutable view (never null; empty before the first update).
  std::shared_ptr<const FleetView> view() const;

 private:
  struct LeaseObservation {
    std::string owner;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point last_advance;
  };

  FleetOptions options_;
  /// Staleness memory per (store dir, range); pruned when leases vanish.
  std::map<std::pair<std::string, std::uint64_t>, LeaseObservation>
      observed_;
  std::uint64_t version_ = 0;
  mutable std::mutex view_mutex_;
  std::shared_ptr<const FleetView> view_;
};

}  // namespace rlocal::service
