#include "service/agg_index.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <tuple>

#include "store/record_io.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"

namespace rlocal::service {
namespace fs = std::filesystem;

namespace {

std::vector<std::string> list_files(const std::string& dir,
                                    std::string_view prefix,
                                    std::string_view suffix) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name.size() > prefix.size() + suffix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::string> list_shards(const std::string& dir) {
  return list_files(dir, "shard-", ".jsonl");
}

CellEntry entry_from(const store::StoredRecord& stored,
                     const std::string& shard_path, std::uint64_t offset,
                     std::uint64_t length) {
  CellEntry entry;
  entry.cell_index = stored.cell_index;
  entry.solver = stored.record.solver;
  entry.graph = stored.record.graph;
  entry.regime = stored.record.regime;
  entry.variant = stored.record.variant;
  entry.seed = stored.record.seed;
  entry.bandwidth_bits = stored.record.bandwidth_bits;
  entry.fault = stored.record.fault;
  entry.skipped = stored.record.skipped;
  // Same failure criterion as run_sweep's cells_failed tally.
  entry.failed = !stored.record.skipped &&
                 (!stored.record.error.empty() ||
                  !stored.record.checker_passed);
  entry.rounds = stored.record.rounds;
  entry.messages = stored.record.cost.messages;
  entry.total_bits = stored.record.cost.total_bits;
  entry.wall_ms = stored.record.wall_ms;
  entry.quality = stored.record.quality;
  entry.shard_path = shard_path;
  entry.frame_offset = offset;
  entry.frame_length = length;
  return entry;
}

}  // namespace

const std::vector<std::string>& agg_metrics() {
  static const std::vector<std::string> kMetrics = {
      "rounds", "messages", "total_bits", "wall_ms", "quality"};
  return kMetrics;
}

double nearest_rank(const std::vector<double>& sorted, double q) {
  RLOCAL_CHECK(!sorted.empty(), "nearest_rank over an empty sample");
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::int64_t>(std::ceil(q * n)) - 1;
  rank = std::max<std::int64_t>(0, std::min<std::int64_t>(
                                       rank, static_cast<std::int64_t>(n) - 1));
  return sorted[static_cast<std::size_t>(rank)];
}

std::vector<AggRow> aggregate(const IndexSnapshot& snapshot,
                              const AggFilter& filter) {
  std::vector<AggRow> rows;
  for (const std::shared_ptr<const StoreIndex>& store : snapshot.stores) {
    // (solver, regime, variant) -> metric -> raw values.
    std::map<std::tuple<std::string, std::string, std::string>,
             std::map<std::string, std::vector<double>>>
        groups;
    for (const auto& [index, cell] : store->cells) {
      if (cell.skipped) continue;
      if (!filter.solver.empty() && cell.solver != filter.solver) continue;
      if (!filter.regime.empty() && cell.regime != filter.regime) continue;
      if (filter.variant != "*" && cell.variant != filter.variant) continue;
      auto& metrics = groups[{cell.solver, cell.regime, cell.variant}];
      if (cell.rounds >= 0) {
        metrics["rounds"].push_back(static_cast<double>(cell.rounds));
      }
      if (cell.messages >= 0) {
        metrics["messages"].push_back(static_cast<double>(cell.messages));
      }
      if (cell.total_bits >= 0) {
        metrics["total_bits"].push_back(static_cast<double>(cell.total_bits));
      }
      if (cell.wall_ms >= 0) metrics["wall_ms"].push_back(cell.wall_ms);
      if (cell.quality >= 0) {
        metrics["quality"].push_back(static_cast<double>(cell.quality));
      }
    }
    for (auto& [key, metrics] : groups) {
      for (const std::string& metric : agg_metrics()) {
        if (!filter.metric.empty() && metric != filter.metric) continue;
        auto it = metrics.find(metric);
        if (it == metrics.end() || it->second.empty()) continue;
        std::vector<double>& values = it->second;
        std::sort(values.begin(), values.end());
        AggRow row;
        row.fingerprint = store->manifest.fingerprint;
        row.solver = std::get<0>(key);
        row.regime = std::get<1>(key);
        row.variant = std::get<2>(key);
        row.metric = metric;
        row.count = values.size();
        for (const double v : values) row.sum += v;
        row.mean = row.sum / static_cast<double>(values.size());
        row.min = values.front();
        row.p50 = nearest_rank(values, 0.5);
        row.p90 = nearest_rank(values, 0.9);
        row.max = values.back();
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

std::vector<CompareRow> compare_regimes(const IndexSnapshot& snapshot,
                                        const CompareFilter& filter) {
  std::vector<CompareRow> rows;
  if (filter.regime_a.empty() || filter.regime_b.empty()) return rows;
  for (const std::shared_ptr<const StoreIndex>& store : snapshot.stores) {
    // Pair cells on every grid coordinate except the regime (including the
    // fault coordinate), so each ratio compares the same experiment under
    // the two regimes.
    using PairKey = std::tuple<std::string, std::string, std::string, int,
                               std::string, std::uint64_t>;
    std::map<PairKey, std::pair<const CellEntry*, const CellEntry*>> paired;
    for (const auto& [index, cell] : store->cells) {
      if (cell.skipped) continue;
      if (!filter.solver.empty() && cell.solver != filter.solver) continue;
      const bool is_a = cell.regime == filter.regime_a;
      const bool is_b = cell.regime == filter.regime_b;
      if (!is_a && !is_b) continue;
      auto& slot = paired[{cell.solver, cell.graph, cell.variant,
                           cell.bandwidth_bits, cell.fault, cell.seed}];
      (is_a ? slot.first : slot.second) = &cell;
    }
    struct Acc {
      std::vector<double> ratios;
      double sum_a = 0;
      double sum_b = 0;
    };
    std::map<std::tuple<std::string, std::string, std::string>, Acc> groups;
    for (const auto& [key, cells] : paired) {
      if (cells.first == nullptr || cells.second == nullptr) continue;
      for (const std::string& metric : agg_metrics()) {
        if (!filter.metric.empty() && metric != filter.metric) continue;
        const auto value = [&metric](const CellEntry& cell) -> double {
          if (metric == "rounds") return static_cast<double>(cell.rounds);
          if (metric == "messages") return static_cast<double>(cell.messages);
          if (metric == "total_bits") {
            return static_cast<double>(cell.total_bits);
          }
          if (metric == "quality") return static_cast<double>(cell.quality);
          return cell.wall_ms;
        };
        const double a = value(*cells.first);
        const double b = value(*cells.second);
        // Unmeasured scalars are -1; a zero denominator has no ratio.
        if (a <= 0 || b < 0) continue;
        Acc& acc = groups[{std::get<0>(key), std::get<2>(key), metric}];
        acc.ratios.push_back(b / a);
        acc.sum_a += a;
        acc.sum_b += b;
      }
    }
    for (auto& [key, acc] : groups) {
      std::sort(acc.ratios.begin(), acc.ratios.end());
      CompareRow row;
      row.fingerprint = store->manifest.fingerprint;
      row.solver = std::get<0>(key);
      row.variant = std::get<1>(key);
      row.metric = std::get<2>(key);
      row.regime_a = filter.regime_a;
      row.regime_b = filter.regime_b;
      row.pairs = acc.ratios.size();
      const auto n = static_cast<double>(acc.ratios.size());
      row.mean_a = acc.sum_a / n;
      row.mean_b = acc.sum_b / n;
      row.ratio_min = acc.ratios.front();
      row.ratio_p50 = nearest_rank(acc.ratios, 0.5);
      row.ratio_p90 = nearest_rank(acc.ratios, 0.9);
      row.ratio_max = acc.ratios.back();
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<FaultRow> compare_faults(const IndexSnapshot& snapshot,
                                     const FaultFilter& filter) {
  std::vector<FaultRow> rows;
  for (const std::shared_ptr<const StoreIndex>& store : snapshot.stores) {
    // Pair cells on every grid coordinate except the fault: the reliable
    // side ("") is the baseline for each faulted sibling.
    using PairKey = std::tuple<std::string, std::string, std::string,
                               std::string, int, std::uint64_t>;
    std::map<PairKey, std::pair<const CellEntry*,
                                std::vector<const CellEntry*>>>
        paired;
    for (const auto& [index, cell] : store->cells) {
      if (cell.skipped) continue;
      if (!filter.solver.empty() && cell.solver != filter.solver) continue;
      if (!filter.regime.empty() && cell.regime != filter.regime) continue;
      if (!filter.fault.empty() && !cell.fault.empty() &&
          cell.fault != filter.fault) {
        continue;
      }
      auto& slot = paired[{cell.solver, cell.graph, cell.regime,
                           cell.variant, cell.bandwidth_bits, cell.seed}];
      if (cell.fault.empty()) {
        slot.first = &cell;
      } else {
        slot.second.push_back(&cell);
      }
    }
    struct Acc {
      std::vector<double> qualities;
      std::vector<double> round_ratios;
    };
    // (solver, regime, variant, fault) -> accumulated pairs.
    std::map<std::tuple<std::string, std::string, std::string, std::string>,
             Acc>
        groups;
    for (const auto& [key, slot] : paired) {
      const CellEntry* reliable = slot.first;
      // No clean baseline: the reliable sibling is missing or itself
      // failed, so the delta would not isolate the injected faults.
      if (reliable == nullptr || reliable->failed) continue;
      for (const CellEntry* faulty : slot.second) {
        if (faulty->quality < 0) continue;  // errored before scoring
        Acc& acc = groups[{faulty->solver, faulty->regime, faulty->variant,
                           faulty->fault}];
        acc.qualities.push_back(static_cast<double>(faulty->quality));
        if (reliable->rounds > 0 && faulty->rounds >= 0) {
          acc.round_ratios.push_back(static_cast<double>(faulty->rounds) /
                                     static_cast<double>(reliable->rounds));
        }
      }
    }
    for (auto& [key, acc] : groups) {
      if (acc.qualities.empty()) continue;
      std::sort(acc.qualities.begin(), acc.qualities.end());
      std::sort(acc.round_ratios.begin(), acc.round_ratios.end());
      FaultRow row;
      row.fingerprint = store->manifest.fingerprint;
      row.solver = std::get<0>(key);
      row.regime = std::get<1>(key);
      row.variant = std::get<2>(key);
      row.fault = std::get<3>(key);
      row.pairs = acc.qualities.size();
      double sum = 0;
      for (const double q : acc.qualities) sum += q;
      row.quality_mean = sum / static_cast<double>(acc.qualities.size());
      row.quality_p50 = nearest_rank(acc.qualities, 0.5);
      row.quality_p90 = nearest_rank(acc.qualities, 0.9);
      row.quality_max = acc.qualities.back();
      row.rounds_ratio_p50 = acc.round_ratios.empty()
                                 ? 0
                                 : nearest_rank(acc.round_ratios, 0.5);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

AggIndex::AggIndex(std::vector<std::string> store_dirs) {
  stores_.reserve(store_dirs.size());
  for (std::string& dir : store_dirs) {
    WatchedStore store;
    store.dir = std::move(dir);
    stores_.push_back(std::move(store));
  }
  snapshot_ = std::make_shared<const IndexSnapshot>();
}

bool AggIndex::tail_shard(WatchedStore& store, const std::string& path,
                          std::uint64_t* new_frames) {
  ShardCursor& cursor = store.cursors[path];
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec) return true;  // raced with removal; nothing to read
  if (size < cursor.offset) return false;  // shrank: caller rebuilds
  if (size == cursor.offset) return true;
  const std::uint64_t base = cursor.offset;  // all offsets below are base+
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return true;
  in.seekg(static_cast<std::streamoff>(base));
  std::string bytes(static_cast<std::size_t>(size - base), '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(in.gcount()));

  std::size_t line_start = 0;
  while (line_start < bytes.size()) {
    const std::size_t newline = bytes.find('\n', line_start);
    if (newline == std::string::npos) break;  // in-flight tail; retry later
    const std::string_view line(bytes.data() + line_start,
                                newline - line_start);
    std::optional<store::StoredRecord> frame = store::decode_frame(line);
    if (!frame.has_value()) {
      // Torn or mid-write bytes: stop here and retry from this offset on
      // the next refresh. A writer's own open-time truncation (or more
      // appended bytes making the line whole) resolves it.
      break;
    }
    store.cells[frame->cell_index] =
        entry_from(*frame, path, base + line_start, line.size());
    ++store.frames_seen;
    ++*new_frames;
    line_start = newline + 1;
    cursor.offset = base + static_cast<std::uint64_t>(line_start);
  }
  return true;
}

bool AggIndex::refresh_profiles(WatchedStore& store) {
  std::map<std::string, std::pair<std::uintmax_t, std::int64_t>> current;
  for (const std::string& path :
       list_files(store.dir, "profile-", ".json")) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) continue;
    const fs::file_time_type mtime = fs::last_write_time(path, ec);
    if (ec) continue;
    current.emplace(
        path, std::make_pair(size, static_cast<std::int64_t>(
                                       mtime.time_since_epoch().count())));
  }
  if (current == store.profile_stat) return false;
  store.profile_stat = std::move(current);
  // Sidecars are small (one row per (solver, regime)); a full re-read and
  // re-merge on any change is cheaper than being clever. A file caught
  // mid-write fails json_try_parse and is skipped; the writer's final bytes
  // change its (size, mtime) and the next refresh picks it up.
  std::map<std::pair<std::string, std::string>, ProfileSlice> merged;
  for (const auto& [path, stat] : store.profile_stat) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::optional<JsonValue> root = json_try_parse(buffer.str());
    if (!root.has_value() || !root->is_object()) continue;
    if (root->string_or("schema", "").rfind("rlocal.profile/", 0) != 0) {
      continue;
    }
    const JsonValue* json_rows = root->find("rows");
    if (json_rows == nullptr || !json_rows->is_array()) continue;
    for (const JsonValue& row : json_rows->as_array()) {
      if (!row.is_object()) continue;
      const std::string solver = row.string_or("solver", "");
      const std::string regime = row.string_or("regime", "");
      if (solver.empty() || regime.empty()) continue;
      ProfileSlice& slice = merged[{solver, regime}];
      slice.solver = solver;
      slice.regime = regime;
      slice.cells +=
          static_cast<std::uint64_t>(row.number_or("cells", 0.0));
      slice.total_ms += row.number_or("total_ms", 0.0);
      slice.graph_build_ms += row.number_or("graph_build_ms", 0.0);
      slice.solver_ms += row.number_or("solver_ms", 0.0);
      slice.checker_ms += row.number_or("checker_ms", 0.0);
      slice.engine_ms += row.number_or("engine_ms", 0.0);
      slice.draw_ms += row.number_or("draw_ms", 0.0);
      slice.store_append_ms += row.number_or("store_append_ms", 0.0);
    }
  }
  store.profile.clear();
  store.profile.reserve(merged.size());
  for (auto& [key, slice] : merged) store.profile.push_back(std::move(slice));
  std::sort(store.profile.begin(), store.profile.end(),
            [](const ProfileSlice& a, const ProfileSlice& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return std::tie(a.solver, a.regime) < std::tie(b.solver,
                                                             b.regime);
            });
  return true;
}

std::uint64_t AggIndex::refresh() {
  std::uint64_t new_frames = 0;
  bool changed = false;
  for (WatchedStore& store : stores_) {
    if (!store.attached) {
      if (!store::RecordStore::exists(store.dir)) continue;
      try {
        store.manifest = store::RecordStore::open(store.dir).manifest();
      } catch (const std::exception&) {
        continue;  // manifest mid-publish; retry next refresh
      }
      store.attached = true;
      changed = true;
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
      bool ok = true;
      for (const std::string& path : list_shards(store.dir)) {
        if (!tail_shard(store, path, &new_frames)) {
          ok = false;
          break;
        }
      }
      if (ok) break;
      // A shard shrank below its cursor: the store was rewritten out from
      // under us. Drop this store's view and re-ingest from scratch.
      store.cursors.clear();
      store.cells.clear();
      store.frames_seen = 0;
      changed = true;
    }
    if (store.attached && refresh_profiles(store)) changed = true;
    // Completion counts may advance without new frames (finalize); refresh
    // the manifest echo cheaply when anything else moved.
    if (new_frames > 0 && store.attached) {
      try {
        store.manifest = store::RecordStore::open(store.dir).manifest();
      } catch (const std::exception&) {
        // keep the previous echo
      }
    }
  }
  if (new_frames > 0) changed = true;
  if (changed) publish();
  return new_frames;
}

void AggIndex::publish() {
  auto next = std::make_shared<IndexSnapshot>();
  next->version = ++version_;
  for (const WatchedStore& store : stores_) {
    if (!store.attached) continue;
    auto view = std::make_shared<StoreIndex>();
    view->dir = store.dir;
    view->manifest = store.manifest;
    view->cells = store.cells;
    view->frames_seen = store.frames_seen;
    view->profile = store.profile;
    next->stores.push_back(std::move(view));
  }
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(next);
}

std::shared_ptr<const IndexSnapshot> AggIndex::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::optional<std::string> AggIndex::read_frame(const StoreIndex& store,
                                                std::uint64_t cell) const {
  const auto it = store.cells.find(cell);
  if (it == store.cells.end()) return std::nullopt;
  const CellEntry& entry = it->second;
  const int fd = ::open(entry.shard_path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::string line(static_cast<std::size_t>(entry.frame_length), '\0');
  const ssize_t n = ::pread(fd, line.data(), line.size(),
                            static_cast<off_t>(entry.frame_offset));
  ::close(fd);
  if (n != static_cast<ssize_t>(line.size())) return std::nullopt;
  // Decode-validate: the bytes must still be the indexed cell's frame.
  const std::optional<store::StoredRecord> frame = store::decode_frame(line);
  if (!frame.has_value() || frame->cell_index != cell) return std::nullopt;
  return line;
}

}  // namespace rlocal::service
