#include "service/fleet.hpp"

#include <algorithm>
#include <filesystem>

#include "service/claims.hpp"

namespace rlocal::service {
namespace fs = std::filesystem;

namespace {

/// Shard files are named `shard-<owner>.jsonl` (claim workers use
/// `<claim_owner>-w<k>`, plain sweeps the thread index), so the shard a
/// cell landed in attributes it to a worker.
std::string owner_from_shard(const std::string& shard_path) {
  std::string name = fs::path(shard_path).filename().string();
  if (name.rfind("shard-", 0) == 0) name.erase(0, 6);
  const std::size_t suffix = name.rfind(".jsonl");
  if (suffix != std::string::npos && suffix + 6 == name.size()) {
    name.erase(suffix);
  }
  return name;
}

double ewma_step(double prev, double x, double alpha) {
  return prev < 0 ? x : alpha * x + (1.0 - alpha) * prev;
}

/// Everything known about one owner of one store, accumulated across the
/// cell and lease passes before worker rows are emitted.
struct OwnerStats {
  std::uint64_t ranges_active = 0;
  std::uint64_t ranges_done = 0;
  std::uint64_t cells_claimed = 0;
  std::uint64_t cells_in_flight = 0;
  std::uint64_t cells_done = 0;
  double heartbeat_age_ms = -1.0;
  double ewma_ms_per_cell = -1.0;
};

}  // namespace

FleetTracker::FleetTracker(FleetOptions options) : options_(options) {
  view_ = std::make_shared<const FleetView>();
}

std::shared_ptr<const FleetView> FleetTracker::update(
    const IndexSnapshot& snapshot) {
  const auto now = std::chrono::steady_clock::now();
  auto next = std::make_shared<FleetView>();
  next->version = ++version_;
  // Observations surviving this pass; leases that vanished (released,
  // stolen-and-renamed, store gone) drop out automatically.
  std::map<std::pair<std::string, std::uint64_t>, LeaseObservation> kept;

  for (const std::shared_ptr<const StoreIndex>& store : snapshot.stores) {
    // --- Cell pass: per-owner throughput and the cost distributions the
    // straggler threshold and ETA need. EWMA runs in cell-index order (the
    // map's order) -- deterministic, and recent-ish for the fan-out way
    // claimers walk the grid.
    std::map<std::string, OwnerStats> owners;
    std::map<std::pair<std::string, std::string>, std::vector<double>>
        cost_by_group;
    double store_ewma = -1.0;
    std::uint64_t skipped = 0;
    for (const auto& [index, cell] : store->cells) {
      if (cell.skipped) {
        ++skipped;
        continue;
      }
      OwnerStats& stats = owners[owner_from_shard(cell.shard_path)];
      ++stats.cells_done;
      if (cell.wall_ms >= 0) {
        cost_by_group[{cell.solver, cell.regime}].push_back(cell.wall_ms);
        store_ewma = ewma_step(store_ewma, cell.wall_ms,
                               options_.ewma_alpha);
        stats.ewma_ms_per_cell = ewma_step(stats.ewma_ms_per_cell,
                                           cell.wall_ms,
                                           options_.ewma_alpha);
      }
    }
    std::map<std::pair<std::string, std::string>, double> p90_by_group;
    std::vector<double> all_costs;
    for (auto& [group, costs] : cost_by_group) {
      std::sort(costs.begin(), costs.end());
      p90_by_group[group] = nearest_rank(costs, 0.9);
      all_costs.insert(all_costs.end(), costs.begin(), costs.end());
    }
    double store_p90 = -1.0;
    if (!all_costs.empty()) {
      std::sort(all_costs.begin(), all_costs.end());
      store_p90 = nearest_rank(all_costs, 0.9);
    }

    // --- Lease pass: observation-based ages (the claims protocol's own
    // staleness rule, on this process' clock), straggler flags.
    for (const auto& [range, lease] : read_all_leases(store->dir)) {
      if (lease.done) {
        ++owners[lease.owner].ranges_done;
        continue;
      }
      const std::pair<std::string, std::uint64_t> key{store->dir, range};
      LeaseObservation obs;
      if (const auto it = observed_.find(key);
          it != observed_.end() && it->second.owner == lease.owner &&
          it->second.seq == lease.seq) {
        obs = it->second;  // unchanged: the age keeps growing
      } else {
        obs = {lease.owner, lease.seq, now};
      }
      kept[key] = obs;
      const double age_ms =
          std::chrono::duration<double, std::milli>(now - obs.last_advance)
              .count();
      OwnerStats& stats = owners[lease.owner];
      ++stats.ranges_active;
      if (stats.heartbeat_age_ms < 0 || age_ms < stats.heartbeat_age_ms) {
        stats.heartbeat_age_ms = age_ms;
      }
      const std::uint64_t span = lease.cells_end > lease.cells_begin
                                     ? lease.cells_end - lease.cells_begin
                                     : 0;
      stats.cells_claimed += span;
      if (span == 0) continue;  // pre-span lease format: size unknown
      const auto span_begin = store->cells.lower_bound(lease.cells_begin);
      const auto span_end = store->cells.lower_bound(lease.cells_end);
      const auto indexed = static_cast<std::uint64_t>(
          std::distance(span_begin, span_end));
      const std::uint64_t remaining = span > indexed ? span - indexed : 0;
      stats.cells_in_flight += remaining;
      if (remaining == 0) continue;  // fully drained; just not marked done
      // Threshold: k x the p90 of the (solver, regime) groups this span is
      // known to contain (its already-indexed cells), else the store-wide
      // p90, clamped below by the floor. No cost observed at all -> only
      // the floor (a brand-new drain must not flag instantly).
      double p90 = -1.0;
      for (auto it = span_begin; it != span_end; ++it) {
        if (it->second.skipped) continue;
        if (const auto found = p90_by_group.find(
                {it->second.solver, it->second.regime});
            found != p90_by_group.end()) {
          p90 = std::max(p90, found->second);
        }
      }
      if (p90 < 0) p90 = store_p90;
      const double threshold =
          std::max(options_.straggler_floor_ms,
                   p90 < 0 ? 0.0 : options_.straggler_factor * p90);
      if (age_ms > threshold) {
        StragglerRow row;
        row.fingerprint = store->manifest.fingerprint;
        row.dir = store->dir;
        row.owner = lease.owner;
        row.range = range;
        row.cells_begin = lease.cells_begin;
        row.cells_end = lease.cells_end;
        row.cells_remaining = remaining;
        row.age_ms = age_ms;
        row.threshold_ms = threshold;
        next->stragglers.push_back(std::move(row));
      }
    }

    // --- Emit worker rows (map order: sorted by owner) and the ETA.
    std::uint64_t active_workers = 0;
    for (const auto& [owner, stats] : owners) {
      WorkerRow row;
      row.fingerprint = store->manifest.fingerprint;
      row.dir = store->dir;
      row.owner = owner;
      row.ranges_active = stats.ranges_active;
      row.ranges_done = stats.ranges_done;
      row.cells_claimed = stats.cells_claimed;
      row.cells_in_flight = stats.cells_in_flight;
      row.cells_done = stats.cells_done;
      row.heartbeat_age_ms = stats.heartbeat_age_ms;
      row.ewma_ms_per_cell = stats.ewma_ms_per_cell;
      row.stale = stats.ranges_active > 0 &&
                  stats.heartbeat_age_ms >
                      static_cast<double>(options_.stale_after_ms);
      if (stats.ranges_active > 0 && !row.stale) ++active_workers;
      next->workers.push_back(std::move(row));
    }

    EtaRow eta;
    eta.fingerprint = store->manifest.fingerprint;
    eta.dir = store->dir;
    eta.total_cells = store->manifest.total_cells;
    const auto indexed = static_cast<std::uint64_t>(store->cells.size());
    eta.run_cells = indexed - skipped;
    eta.remaining_cells = eta.total_cells > eta.run_cells
                              ? eta.total_cells - eta.run_cells
                              : 0;
    eta.active_workers = active_workers;
    eta.ms_per_cell = store_ewma;
    if (eta.remaining_cells == 0) {
      eta.eta_ms = 0.0;
    } else if (store_ewma >= 0) {
      eta.eta_ms = static_cast<double>(eta.remaining_cells) * store_ewma /
                   static_cast<double>(std::max<std::uint64_t>(
                       1, active_workers));
    }
    eta.pct_done = eta.total_cells == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(eta.run_cells) /
                             static_cast<double>(eta.total_cells);
    next->etas.push_back(std::move(eta));
  }

  observed_ = std::move(kept);
  std::shared_ptr<const FleetView> published = std::move(next);
  std::lock_guard<std::mutex> lock(view_mutex_);
  view_ = published;
  return published;
}

std::shared_ptr<const FleetView> FleetTracker::view() const {
  std::lock_guard<std::mutex> lock(view_mutex_);
  return view_;
}

}  // namespace rlocal::service
