// Umbrella header for the sweep-as-a-service subsystem:
//
//   claims.hpp    -- WorkClaims, the coordinator-free multi-process drain
//                    protocol over a store's claims/ directory;
//   agg_index.hpp -- AggIndex, the incremental per-store aggregate index
//                    (snapshot-swapped, never a full rescan);
//   fleet.hpp     -- FleetTracker, per-owner worker telemetry (stragglers,
//                    heartbeats, ETA) derived from leases + the index;
//   http.hpp      -- the minimal blocking HTTP/1.1 server;
//   rlocald.hpp   -- Daemon, the query service tying the rest together.
//
// See docs/service.md for the protocol and API reference.
#pragma once

#include "service/agg_index.hpp"
#include "service/claims.hpp"
#include "service/fleet.hpp"
#include "service/http.hpp"
#include "service/rlocald.hpp"
