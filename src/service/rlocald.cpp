#include "service/rlocald.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "support/json.hpp"

namespace rlocal::service {

namespace {

HttpResponse jsonl(std::string body) {
  return {200, "application/x-ndjson", std::move(body)};
}

HttpResponse not_found(const std::string& what) {
  return {404, "text/plain", what + "\n"};
}

void write_agg_row(JsonWriter& w, const AggRow& row) {
  w.begin_object();
  w.field("store", row.fingerprint);
  w.field("solver", row.solver);
  w.field("regime", row.regime);
  w.field("variant", row.variant);
  w.field("metric", row.metric);
  w.field("count", row.count);
  w.field("sum", row.sum);
  w.field("mean", row.mean);
  w.field("min", row.min);
  w.field("p50", row.p50);
  w.field("p90", row.p90);
  w.field("max", row.max);
  w.end_object();
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), index_(options_.stores) {
  index_.refresh();
  server_ = std::make_unique<HttpServer>(
      options_.port,
      [this](const HttpRequest& request) { return handle(request); },
      options_.http_threads);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

Daemon::~Daemon() { stop(); }

void Daemon::stop() {
  if (stopping_.exchange(true)) return;
  if (ingest_thread_.joinable()) ingest_thread_.join();
  server_->stop();
}

void Daemon::ingest_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.refresh_interval_ms));
  while (!stopping_.load(std::memory_order_relaxed)) {
    index_.refresh();
    // Sleep in small slices so stop() is never blocked on a long interval.
    auto remaining = interval;
    while (remaining.count() > 0 &&
           !stopping_.load(std::memory_order_relaxed)) {
      const auto slice =
          std::min(remaining, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

HttpResponse Daemon::handle(const HttpRequest& request) {
  const auto get = [&request](const char* key,
                              const std::string& fallback = "") {
    const auto it = request.query.find(key);
    return it == request.query.end() ? fallback : it->second;
  };
  const std::shared_ptr<const IndexSnapshot> snapshot = index_.snapshot();

  if (request.path == "/healthz") {
    std::uint64_t cells = 0;
    for (const auto& store : snapshot->stores) cells += store->cells.size();
    std::ostringstream out;
    JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.field("status", "ok");
    w.field("stores", static_cast<std::uint64_t>(snapshot->stores.size()));
    w.field("cells", cells);
    w.field("index_version", snapshot->version);
    w.end_object();
    out << '\n';
    return jsonl(out.str());
  }

  if (request.path == "/sweeps") {
    std::ostringstream out;
    for (const auto& store : snapshot->stores) {
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("dir", store->dir);
      w.field("fingerprint", store->manifest.fingerprint);
      w.field("total_cells", store->manifest.total_cells);
      w.field("completed_cells", store->manifest.completed_cells);
      w.field("indexed_cells",
              static_cast<std::uint64_t>(store->cells.size()));
      w.field("frames_seen", store->frames_seen);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/agg") {
    AggFilter filter;
    filter.solver = get("solver");
    filter.regime = get("regime");
    filter.variant = get("variant", "*");
    filter.metric = get("metric");
    if (!filter.metric.empty()) {
      const auto& metrics = agg_metrics();
      if (std::find(metrics.begin(), metrics.end(), filter.metric) ==
          metrics.end()) {
        return {400, "text/plain",
                "unknown metric '" + filter.metric +
                    "' (rounds|messages|total_bits|wall_ms)\n"};
      }
    }
    std::ostringstream out;
    for (const AggRow& row : aggregate(*snapshot, filter)) {
      JsonWriter w(out, /*indent=*/0);
      write_agg_row(w, row);
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/records") {
    const std::string cell_text = get("cell");
    if (cell_text.empty()) {
      return {400, "text/plain", "missing required parameter 'cell'\n"};
    }
    std::uint64_t cell = 0;
    try {
      std::size_t parsed = 0;
      cell = std::stoull(cell_text, &parsed);
      if (parsed != cell_text.size()) throw std::invalid_argument(cell_text);
    } catch (const std::exception&) {
      return {400, "text/plain",
              "parameter 'cell' is not an unsigned integer\n"};
    }
    const std::string fingerprint = get("store");
    for (const auto& store : snapshot->stores) {
      if (!fingerprint.empty() &&
          store->manifest.fingerprint != fingerprint) {
        continue;
      }
      if (std::optional<std::string> frame = index_.read_frame(*store, cell);
          frame.has_value()) {
        return jsonl(*frame + "\n");
      }
    }
    return not_found("no such cell");
  }

  return not_found("no such route (try /healthz, /sweeps, /agg, /records)");
}

}  // namespace rlocal::service
