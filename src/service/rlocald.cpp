#include "service/rlocald.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>

#include "obs/obs.hpp"
#include "support/json.hpp"

namespace rlocal::service {

namespace {

HttpResponse jsonl(std::string body) {
  return {200, "application/x-ndjson", std::move(body)};
}

HttpResponse not_found(const std::string& what) {
  return {404, "text/plain", what + "\n"};
}

void write_agg_row(JsonWriter& w, const AggRow& row) {
  w.begin_object();
  w.field("store", row.fingerprint);
  w.field("solver", row.solver);
  w.field("regime", row.regime);
  w.field("variant", row.variant);
  w.field("metric", row.metric);
  w.field("count", row.count);
  w.field("sum", row.sum);
  w.field("mean", row.mean);
  w.field("min", row.min);
  w.field("p50", row.p50);
  w.field("p90", row.p90);
  w.field("max", row.max);
  w.end_object();
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), index_(options_.stores) {
  index_.refresh();
  server_ = std::make_unique<HttpServer>(
      options_.port,
      [this](const HttpRequest& request) { return handle(request); },
      options_.http_threads);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

Daemon::~Daemon() { stop(); }

void Daemon::stop() {
  if (stopping_.exchange(true)) return;
  if (ingest_thread_.joinable()) ingest_thread_.join();
  server_->stop();
}

void Daemon::ingest_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.refresh_interval_ms));
  while (!stopping_.load(std::memory_order_relaxed)) {
    index_.refresh();
    // Sleep in small slices so stop() is never blocked on a long interval.
    auto remaining = interval;
    while (remaining.count() > 0 &&
           !stopping_.load(std::memory_order_relaxed)) {
      const auto slice =
          std::min(remaining, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

HttpResponse Daemon::handle(const HttpRequest& request) {
  {
    static obs::Counter& requests =
        obs::counter("rlocal_http_requests_total");
    requests.add();
  }
  const auto get = [&request](const char* key,
                              const std::string& fallback = "") {
    const auto it = request.query.find(key);
    return it == request.query.end() ? fallback : it->second;
  };
  const std::shared_ptr<const IndexSnapshot> snapshot = index_.snapshot();

  if (request.path == "/healthz") {
    std::uint64_t cells = 0;
    for (const auto& store : snapshot->stores) cells += store->cells.size();
    std::ostringstream out;
    JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.field("status", "ok");
    w.field("stores", static_cast<std::uint64_t>(snapshot->stores.size()));
    w.field("cells", cells);
    w.field("index_version", snapshot->version);
    w.end_object();
    out << '\n';
    return jsonl(out.str());
  }

  if (request.path == "/sweeps") {
    std::ostringstream out;
    for (const auto& store : snapshot->stores) {
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("dir", store->dir);
      w.field("fingerprint", store->manifest.fingerprint);
      w.field("total_cells", store->manifest.total_cells);
      w.field("completed_cells", store->manifest.completed_cells);
      w.field("indexed_cells",
              static_cast<std::uint64_t>(store->cells.size()));
      w.field("frames_seen", store->frames_seen);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/agg") {
    AggFilter filter;
    filter.solver = get("solver");
    filter.regime = get("regime");
    filter.variant = get("variant", "*");
    filter.metric = get("metric");
    if (!filter.metric.empty()) {
      const auto& metrics = agg_metrics();
      if (std::find(metrics.begin(), metrics.end(), filter.metric) ==
          metrics.end()) {
        return {400, "text/plain",
                "unknown metric '" + filter.metric +
                    "' (rounds|messages|total_bits|wall_ms)\n"};
      }
    }
    std::ostringstream out;
    for (const AggRow& row : aggregate(*snapshot, filter)) {
      JsonWriter w(out, /*indent=*/0);
      write_agg_row(w, row);
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/metrics") {
    // Prometheus text exposition. Two sections: store-derived samples from
    // the index snapshot (what the watched drain has durably written --
    // this daemon did not run the cells, so its process counters cannot
    // carry them), then every process-wide obs counter/gauge (HTTP request
    // volume, plus whatever else this process touched).
    std::uint64_t cells_run = 0;
    std::uint64_t cells_failed = 0;
    std::uint64_t total_cells = 0;
    std::uint64_t completed_cells = 0;
    std::uint64_t frames_seen = 0;
    for (const auto& store : snapshot->stores) {
      for (const auto& [index, entry] : store->cells) {
        if (entry.skipped) continue;
        ++cells_run;
        if (entry.failed) ++cells_failed;
      }
      total_cells += store->manifest.total_cells;
      completed_cells += store->manifest.completed_cells;
      frames_seen += store->frames_seen;
    }
    std::ostringstream out;
    out << "# TYPE rlocal_cells_run_total counter\n"
        << "rlocal_cells_run_total " << cells_run << "\n"
        << "# TYPE rlocal_cells_failed_total counter\n"
        << "rlocal_cells_failed_total " << cells_failed << "\n"
        << "# TYPE rlocal_store_total_cells gauge\n"
        << "rlocal_store_total_cells " << total_cells << "\n"
        << "# TYPE rlocal_store_completed_cells gauge\n"
        << "rlocal_store_completed_cells " << completed_cells << "\n"
        << "# TYPE rlocal_store_frames_seen_total counter\n"
        << "rlocal_store_frames_seen_total " << frames_seen << "\n"
        << "# TYPE rlocal_stores gauge\n"
        << "rlocal_stores " << snapshot->stores.size() << "\n"
        << "# TYPE rlocal_index_version gauge\n"
        << "rlocal_index_version " << snapshot->version << "\n";
    // Process-wide obs metrics, skipping names the store-derived section
    // already emitted (a process that both ran a sweep and serves it --
    // the in-process test fixture -- must not expose duplicate series;
    // the store-derived reading is the authoritative one).
    static const std::set<std::string> kStoreDerived = {
        "rlocal_cells_run_total", "rlocal_cells_failed_total"};
    std::string last_base;
    for (const obs::MetricValue& m : obs::metrics_snapshot()) {
      const std::string base = m.name.substr(0, m.name.find('{'));
      if (kStoreDerived.count(base) != 0) continue;
      if (base != last_base) {
        out << "# TYPE " << base << (m.is_gauge ? " gauge" : " counter")
            << "\n";
        last_base = base;
      }
      out << m.name << " " << m.value << "\n";
    }
    return {200, "text/plain; version=0.0.4", out.str()};
  }

  if (request.path == "/progress") {
    // One JSONL line per watched store: how far the drain has come, so a
    // live million-cell sweep can be watched without touching the store.
    std::ostringstream out;
    for (const auto& store : snapshot->stores) {
      std::uint64_t failed = 0;
      std::uint64_t skipped = 0;
      for (const auto& [index, entry] : store->cells) {
        if (entry.skipped) ++skipped;
        if (entry.failed) ++failed;
      }
      const std::uint64_t indexed =
          static_cast<std::uint64_t>(store->cells.size());
      const std::uint64_t run = indexed - skipped;
      const std::uint64_t total = store->manifest.total_cells;
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("dir", store->dir);
      w.field("fingerprint", store->manifest.fingerprint);
      w.field("total_cells", total);
      w.field("indexed_cells", indexed);
      w.field("run_cells", run);
      w.field("failed_cells", failed);
      w.field("pct_done",
              total == 0 ? 0.0
                         : 100.0 * static_cast<double>(run) /
                               static_cast<double>(total));
      w.field("frames_seen", store->frames_seen);
      w.field("index_version", snapshot->version);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/records") {
    const std::string cell_text = get("cell");
    if (cell_text.empty()) {
      return {400, "text/plain", "missing required parameter 'cell'\n"};
    }
    std::uint64_t cell = 0;
    try {
      std::size_t parsed = 0;
      cell = std::stoull(cell_text, &parsed);
      if (parsed != cell_text.size()) throw std::invalid_argument(cell_text);
    } catch (const std::exception&) {
      return {400, "text/plain",
              "parameter 'cell' is not an unsigned integer\n"};
    }
    const std::string fingerprint = get("store");
    for (const auto& store : snapshot->stores) {
      if (!fingerprint.empty() &&
          store->manifest.fingerprint != fingerprint) {
        continue;
      }
      if (std::optional<std::string> frame = index_.read_frame(*store, cell);
          frame.has_value()) {
        return jsonl(*frame + "\n");
      }
    }
    return not_found("no such cell");
  }

  return not_found(
      "no such route (try /healthz, /sweeps, /agg, /records, /metrics, "
      "/progress)");
}

}  // namespace rlocal::service
