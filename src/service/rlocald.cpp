#include "service/rlocald.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>

#include "obs/obs.hpp"
#include "support/json.hpp"

namespace rlocal::service {

namespace {

HttpResponse jsonl(std::string body) {
  return {200, "application/x-ndjson", std::move(body)};
}

HttpResponse not_found(const std::string& what) {
  return {404, "text/plain", what + "\n"};
}

void write_agg_row(JsonWriter& w, const AggRow& row) {
  w.begin_object();
  w.field("store", row.fingerprint);
  w.field("solver", row.solver);
  w.field("regime", row.regime);
  w.field("variant", row.variant);
  w.field("metric", row.metric);
  w.field("count", row.count);
  w.field("sum", row.sum);
  w.field("mean", row.mean);
  w.field("min", row.min);
  w.field("p50", row.p50);
  w.field("p90", row.p90);
  w.field("max", row.max);
  w.end_object();
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      index_(options_.stores),
      fleet_(options_.fleet),
      start_time_(std::chrono::steady_clock::now()) {
  // The daemon is an observability process: its own span latencies (HTTP
  // request handling at minimum) are part of what it exposes at /metrics.
  obs::Histogram::enable();
  index_.refresh();
  fleet_.update(*index_.snapshot());
  server_ = std::make_unique<HttpServer>(
      options_.port,
      [this](const HttpRequest& request) { return handle(request); },
      options_.http_threads);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

Daemon::~Daemon() { stop(); }

void Daemon::stop() {
  if (stopping_.exchange(true)) return;
  if (ingest_thread_.joinable()) ingest_thread_.join();
  server_->stop();
}

void Daemon::ingest_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.refresh_interval_ms));
  while (!stopping_.load(std::memory_order_relaxed)) {
    index_.refresh();
    fleet_.update(*index_.snapshot());
    // Sleep in small slices so stop() is never blocked on a long interval.
    auto remaining = interval;
    while (remaining.count() > 0 &&
           !stopping_.load(std::memory_order_relaxed)) {
      const auto slice =
          std::min(remaining, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

HttpResponse Daemon::handle(const HttpRequest& request) {
  {
    static obs::Counter& requests =
        obs::counter("rlocal_http_requests_total");
    requests.add();
  }
  static obs::Histogram& http_hist = obs::histogram(
      "rlocal_span_latency_seconds{span=\"http_request\"}");
  static obs::Counter& http_spans =
      obs::counter("rlocal_spans_total{span=\"http_request\"}");
  obs::LatencyTimer http_latency(http_hist, http_spans);
  const auto get = [&request](const char* key,
                              const std::string& fallback = "") {
    const auto it = request.query.find(key);
    return it == request.query.end() ? fallback : it->second;
  };
  const std::shared_ptr<const IndexSnapshot> snapshot = index_.snapshot();

  if (request.path == "/healthz") {
    std::uint64_t cells = 0;
    for (const auto& store : snapshot->stores) cells += store->cells.size();
    std::ostringstream out;
    JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.field("status", "ok");
    w.field("stores", static_cast<std::uint64_t>(snapshot->stores.size()));
    w.field("cells", cells);
    w.field("index_version", snapshot->version);
    w.end_object();
    out << '\n';
    return jsonl(out.str());
  }

  if (request.path == "/sweeps") {
    std::ostringstream out;
    for (const auto& store : snapshot->stores) {
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("dir", store->dir);
      w.field("fingerprint", store->manifest.fingerprint);
      w.field("total_cells", store->manifest.total_cells);
      w.field("completed_cells", store->manifest.completed_cells);
      w.field("indexed_cells",
              static_cast<std::uint64_t>(store->cells.size()));
      w.field("frames_seen", store->frames_seen);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/agg") {
    AggFilter filter;
    filter.solver = get("solver");
    filter.regime = get("regime");
    filter.variant = get("variant", "*");
    filter.metric = get("metric");
    if (!filter.metric.empty()) {
      const auto& metrics = agg_metrics();
      if (std::find(metrics.begin(), metrics.end(), filter.metric) ==
          metrics.end()) {
        return {400, "text/plain",
                "unknown metric '" + filter.metric +
                    "' (rounds|messages|total_bits|wall_ms|quality)\n"};
      }
    }
    std::ostringstream out;
    for (const AggRow& row : aggregate(*snapshot, filter)) {
      JsonWriter w(out, /*indent=*/0);
      write_agg_row(w, row);
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/metrics") {
    // Prometheus text exposition. Two sections: store-derived samples from
    // the index snapshot (what the watched drain has durably written --
    // this daemon did not run the cells, so its process counters cannot
    // carry them), then every process-wide obs counter/gauge (HTTP request
    // volume, plus whatever else this process touched).
    obs::gauge("rlocal_uptime_seconds")
        .set(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - start_time_)
                .count()));
    std::uint64_t cells_run = 0;
    std::uint64_t cells_failed = 0;
    std::uint64_t total_cells = 0;
    std::uint64_t completed_cells = 0;
    std::uint64_t frames_seen = 0;
    for (const auto& store : snapshot->stores) {
      for (const auto& [index, entry] : store->cells) {
        if (entry.skipped) continue;
        ++cells_run;
        if (entry.failed) ++cells_failed;
      }
      total_cells += store->manifest.total_cells;
      completed_cells += store->manifest.completed_cells;
      frames_seen += store->frames_seen;
    }
    std::ostringstream out;
    out << "# TYPE rlocal_cells_run_total counter\n"
        << "rlocal_cells_run_total " << cells_run << "\n"
        << "# TYPE rlocal_cells_failed_total counter\n"
        << "rlocal_cells_failed_total " << cells_failed << "\n"
        << "# TYPE rlocal_store_total_cells gauge\n"
        << "rlocal_store_total_cells " << total_cells << "\n"
        << "# TYPE rlocal_store_completed_cells gauge\n"
        << "rlocal_store_completed_cells " << completed_cells << "\n"
        << "# TYPE rlocal_store_frames_seen_total counter\n"
        << "rlocal_store_frames_seen_total " << frames_seen << "\n"
        << "# TYPE rlocal_stores gauge\n"
        << "rlocal_stores " << snapshot->stores.size() << "\n"
        << "# TYPE rlocal_index_version gauge\n"
        << "rlocal_index_version " << snapshot->version << "\n";
    // Process-wide obs metrics, skipping names the store-derived section
    // already emitted (a process that both ran a sweep and serves it --
    // the in-process test fixture -- must not expose duplicate series;
    // the store-derived reading is the authoritative one).
    static const std::set<std::string> kStoreDerived = {
        "rlocal_cells_run_total", "rlocal_cells_failed_total"};
    std::string last_base;
    for (const obs::MetricValue& m : obs::metrics_snapshot()) {
      const std::string base = m.name.substr(0, m.name.find('{'));
      if (kStoreDerived.count(base) != 0) continue;
      if (base != last_base) {
        out << "# TYPE " << base << (m.is_gauge ? " gauge" : " counter")
            << "\n";
        last_base = base;
      }
      out << m.name << " " << m.value << "\n";
    }
    // Latency histograms last: cumulative _bucket/_sum/_count series per
    // span family (docs/observability.md). rlocal_span_latency_seconds's
    // _count equals the matching rlocal_spans_total counter above --
    // LatencyTimer bumps both under one gate.
    obs::write_prometheus_histograms(out);
    return {200, "text/plain; version=0.0.4", out.str()};
  }

  if (request.path == "/progress") {
    // One JSONL line per watched store: how far the drain has come, so a
    // live million-cell sweep can be watched without touching the store.
    std::ostringstream out;
    for (const auto& store : snapshot->stores) {
      std::uint64_t failed = 0;
      std::uint64_t skipped = 0;
      for (const auto& [index, entry] : store->cells) {
        if (entry.skipped) ++skipped;
        if (entry.failed) ++failed;
      }
      const std::uint64_t indexed =
          static_cast<std::uint64_t>(store->cells.size());
      const std::uint64_t run = indexed - skipped;
      const std::uint64_t total = store->manifest.total_cells;
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("dir", store->dir);
      w.field("fingerprint", store->manifest.fingerprint);
      w.field("total_cells", total);
      w.field("indexed_cells", indexed);
      w.field("run_cells", run);
      w.field("failed_cells", failed);
      w.field("pct_done",
              total == 0 ? 0.0
                         : 100.0 * static_cast<double>(run) /
                               static_cast<double>(total));
      w.field("frames_seen", store->frames_seen);
      w.field("index_version", snapshot->version);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/records") {
    // Strict parameter set: a typo'd filter silently matching everything is
    // worse than a 400.
    static const std::set<std::string> kRecordParams = {
        "cell", "store", "solver", "regime", "failed", "limit"};
    for (const auto& [key, value] : request.query) {
      if (kRecordParams.count(key) == 0) {
        return {400, "text/plain",
                "unknown parameter '" + key +
                    "' (cell|store|solver|regime|failed|limit)\n"};
      }
    }
    const auto parse_u64 =
        [](const std::string& text) -> std::optional<std::uint64_t> {
      try {
        std::size_t parsed = 0;
        const std::uint64_t value = std::stoull(text, &parsed);
        if (parsed != text.size()) return std::nullopt;
        return value;
      } catch (const std::exception&) {
        return std::nullopt;
      }
    };
    const std::string fingerprint = get("store");
    if (const std::string cell_text = get("cell"); !cell_text.empty()) {
      // Exact mode: the raw stored frame for one cell.
      const std::optional<std::uint64_t> cell = parse_u64(cell_text);
      if (!cell.has_value()) {
        return {400, "text/plain",
                "parameter 'cell' is not an unsigned integer\n"};
      }
      for (const auto& store : snapshot->stores) {
        if (!fingerprint.empty() &&
            store->manifest.fingerprint != fingerprint) {
          continue;
        }
        if (std::optional<std::string> frame =
                index_.read_frame(*store, *cell);
            frame.has_value()) {
          return jsonl(*frame + "\n");
        }
      }
      return not_found("no such cell");
    }
    // Listing mode: per-cell summary rows from the index (no disk reads),
    // filtered by solver / regime / failed, capped by limit.
    const std::string solver = get("solver");
    const std::string regime = get("regime");
    const std::string failed_text = get("failed");
    if (!failed_text.empty() && failed_text != "0" && failed_text != "1") {
      return {400, "text/plain", "parameter 'failed' must be 0 or 1\n"};
    }
    std::uint64_t limit = 100;
    if (const std::string limit_text = get("limit"); !limit_text.empty()) {
      const std::optional<std::uint64_t> parsed = parse_u64(limit_text);
      if (!parsed.has_value() || *parsed == 0) {
        return {400, "text/plain",
                "parameter 'limit' must be a positive integer\n"};
      }
      limit = *parsed;
    }
    std::ostringstream out;
    std::uint64_t emitted = 0;
    for (const auto& store : snapshot->stores) {
      if (emitted >= limit) break;
      if (!fingerprint.empty() &&
          store->manifest.fingerprint != fingerprint) {
        continue;
      }
      for (const auto& [index, entry] : store->cells) {
        if (emitted >= limit) break;
        if (!solver.empty() && entry.solver != solver) continue;
        if (!regime.empty() && entry.regime != regime) continue;
        if (!failed_text.empty() && entry.failed != (failed_text == "1")) {
          continue;
        }
        JsonWriter w(out, /*indent=*/0);
        w.begin_object();
        w.field("store", store->manifest.fingerprint);
        w.field("cell", entry.cell_index);
        w.field("solver", entry.solver);
        w.field("graph", entry.graph);
        w.field("regime", entry.regime);
        w.field("variant", entry.variant);
        w.field("seed", entry.seed);
        w.field("bandwidth_bits",
                static_cast<std::int64_t>(entry.bandwidth_bits));
        if (!entry.fault.empty()) w.field("fault", entry.fault);
        w.field("skipped", entry.skipped);
        w.field("failed", entry.failed);
        w.field("rounds", entry.rounds);
        w.field("messages", entry.messages);
        w.field("total_bits", entry.total_bits);
        w.field("wall_ms", entry.wall_ms);
        if (entry.quality >= 0) w.field("quality", entry.quality);
        w.end_object();
        out << '\n';
        ++emitted;
      }
    }
    return jsonl(out.str());
  }

  if (request.path == "/workers" || request.path == "/stragglers" ||
      request.path == "/eta") {
    const std::shared_ptr<const FleetView> fleet = fleet_.view();
    std::ostringstream out;
    if (request.path == "/workers") {
      for (const WorkerRow& row : fleet->workers) {
        JsonWriter w(out, /*indent=*/0);
        w.begin_object();
        w.field("store", row.fingerprint);
        w.field("dir", row.dir);
        w.field("owner", row.owner);
        w.field("ranges_active", row.ranges_active);
        w.field("ranges_done", row.ranges_done);
        w.field("cells_claimed", row.cells_claimed);
        w.field("cells_in_flight", row.cells_in_flight);
        w.field("cells_done", row.cells_done);
        w.field("heartbeat_age_ms", row.heartbeat_age_ms);
        w.field("ewma_ms_per_cell", row.ewma_ms_per_cell);
        w.field("stale", row.stale);
        w.end_object();
        out << '\n';
      }
    } else if (request.path == "/stragglers") {
      for (const StragglerRow& row : fleet->stragglers) {
        JsonWriter w(out, /*indent=*/0);
        w.begin_object();
        w.field("store", row.fingerprint);
        w.field("dir", row.dir);
        w.field("owner", row.owner);
        w.field("range", row.range);
        w.field("cells_begin", row.cells_begin);
        w.field("cells_end", row.cells_end);
        w.field("cells_remaining", row.cells_remaining);
        w.field("age_ms", row.age_ms);
        w.field("threshold_ms", row.threshold_ms);
        w.end_object();
        out << '\n';
      }
    } else {
      for (const EtaRow& row : fleet->etas) {
        JsonWriter w(out, /*indent=*/0);
        w.begin_object();
        w.field("store", row.fingerprint);
        w.field("dir", row.dir);
        w.field("total_cells", row.total_cells);
        w.field("run_cells", row.run_cells);
        w.field("remaining_cells", row.remaining_cells);
        w.field("active_workers", row.active_workers);
        w.field("ms_per_cell", row.ms_per_cell);
        w.field("eta_ms", row.eta_ms);
        w.field("pct_done", row.pct_done);
        w.end_object();
        out << '\n';
      }
    }
    return jsonl(out.str());
  }

  if (request.path == "/profile") {
    const std::string solver = get("solver");
    const std::string regime = get("regime");
    std::ostringstream out;
    for (const auto& store : snapshot->stores) {
      for (const ProfileSlice& slice : store->profile) {
        if (!solver.empty() && slice.solver != solver) continue;
        if (!regime.empty() && slice.regime != regime) continue;
        JsonWriter w(out, /*indent=*/0);
        w.begin_object();
        w.field("store", store->manifest.fingerprint);
        w.field("solver", slice.solver);
        w.field("regime", slice.regime);
        w.field("cells", slice.cells);
        w.field("total_ms", slice.total_ms);
        w.field("graph_build_ms", slice.graph_build_ms);
        w.field("solver_ms", slice.solver_ms);
        w.field("checker_ms", slice.checker_ms);
        w.field("engine_ms", slice.engine_ms);
        w.field("draw_ms", slice.draw_ms);
        w.field("store_append_ms", slice.store_append_ms);
        w.end_object();
        out << '\n';
      }
    }
    return jsonl(out.str());
  }

  if (request.path == "/compare") {
    CompareFilter filter;
    filter.regime_a = get("regime_a");
    filter.regime_b = get("regime_b");
    if (filter.regime_a.empty() || filter.regime_b.empty()) {
      return {400, "text/plain",
              "parameters 'regime_a' and 'regime_b' are required\n"};
    }
    filter.solver = get("solver");
    filter.metric = get("metric");
    if (!filter.metric.empty()) {
      const auto& metrics = agg_metrics();
      if (std::find(metrics.begin(), metrics.end(), filter.metric) ==
          metrics.end()) {
        return {400, "text/plain",
                "unknown metric '" + filter.metric +
                    "' (rounds|messages|total_bits|wall_ms|quality)\n"};
      }
    }
    std::ostringstream out;
    for (const CompareRow& row : compare_regimes(*snapshot, filter)) {
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("store", row.fingerprint);
      w.field("solver", row.solver);
      w.field("variant", row.variant);
      w.field("metric", row.metric);
      w.field("regime_a", row.regime_a);
      w.field("regime_b", row.regime_b);
      w.field("pairs", row.pairs);
      w.field("mean_a", row.mean_a);
      w.field("mean_b", row.mean_b);
      w.field("ratio_min", row.ratio_min);
      w.field("ratio_p50", row.ratio_p50);
      w.field("ratio_p90", row.ratio_p90);
      w.field("ratio_max", row.ratio_max);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  if (request.path == "/faults") {
    FaultFilter filter;
    filter.solver = get("solver");
    filter.regime = get("regime");
    filter.fault = get("fault");
    std::ostringstream out;
    for (const FaultRow& row : compare_faults(*snapshot, filter)) {
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.field("store", row.fingerprint);
      w.field("solver", row.solver);
      w.field("regime", row.regime);
      w.field("variant", row.variant);
      w.field("fault", row.fault);
      w.field("pairs", row.pairs);
      w.field("quality_mean", row.quality_mean);
      w.field("quality_p50", row.quality_p50);
      w.field("quality_p90", row.quality_p90);
      w.field("quality_max", row.quality_max);
      w.field("rounds_ratio_p50", row.rounds_ratio_p50);
      w.end_object();
      out << '\n';
    }
    return jsonl(out.str());
  }

  return not_found(
      "no such route (try /healthz, /sweeps, /agg, /records, /metrics, "
      "/progress, /workers, /stragglers, /eta, /profile, /compare, "
      "/faults)");
}

}  // namespace rlocal::service
