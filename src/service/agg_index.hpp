// AggIndex: the rlocald daemon's incremental view over sweep stores.
//
// The index tails every shard of every watched store with a per-shard byte
// cursor parked at the end of the last fully-decoded frame -- exactly the
// point a writer's own torn-tail truncation preserves -- so a refresh reads
// only newly-appended bytes, never rescanning history. A torn or in-flight
// final frame simply leaves the cursor in place; the next refresh retries
// from there (live ingestion tolerance). A shard that *shrinks* below a
// cursor was rewritten out from under us (never done by the lab's writers);
// that store's view is rebuilt from scratch.
//
// Snapshot discipline: refresh() builds a new immutable IndexSnapshot and
// swaps it under a mutex held only for the pointer exchange. Query threads
// grab the shared_ptr and read without locks, so serving never blocks on
// ingestion (and vice versa).
//
// Aggregation (the /agg endpoint and tests) is computed from per-cell
// summaries grouped by (solver, regime, variant): nearest-rank percentiles
// over rounds / messages / total_bits / wall_ms / quality, with "not
// measured" scalars excluded per metric and skipped cells excluded entirely.
// compare_sweep.py --agg recomputes the same numbers from the raw store,
// pinning the daemon's math to the offline truth.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/record_store.hpp"

namespace rlocal::service {

/// Per-cell summary the index keeps in memory: the aggregation coordinates
/// and metric scalars, plus the frame's location on disk so /records can
/// serve the full record without retaining frame bodies in RAM.
struct CellEntry {
  std::uint64_t cell_index = 0;
  std::string solver;
  std::string graph;
  std::string regime;
  std::string variant;
  std::uint64_t seed = 0;
  int bandwidth_bits = 0;  ///< per-message cap axis; part of /compare's key
  /// Fault-axis coordinate (canonical spec name; "" = reliable network).
  std::string fault;
  bool skipped = false;
  /// Errored or checker-failed (the sweep's cells_failed criterion); feeds
  /// /metrics' rlocal_cells_failed_total and /progress' failed_cells.
  bool failed = false;
  // Metric scalars; -1 (or NaN-free "absent" convention below) = not
  // measured, excluded from that metric's aggregate.
  std::int64_t rounds = -1;
  std::int64_t messages = -1;
  std::int64_t total_bits = -1;
  double wall_ms = -1.0;
  /// Fault-plane quality score (violations; 0 = perfect output); -1 on
  /// reliable cells, where the pass/fail checker verdict applies instead.
  std::int64_t quality = -1;
  // Frame location (last-write-wins winner for this cell_index).
  std::string shard_path;
  std::uint64_t frame_offset = 0;  ///< byte offset of the frame line
  std::uint64_t frame_length = 0;  ///< line length excluding '\n'
};

/// One /profile row: per-(solver, regime) phase attribution merged across
/// a store's `profile-<owner>.json` sidecars (schema rlocal.profile/2,
/// written by `bench_sweep --store --profile`). Phase data deliberately
/// never rides the record frames (byte-identity), so these sidecars are the
/// daemon's only source for it.
struct ProfileSlice {
  std::string solver;
  std::string regime;
  std::uint64_t cells = 0;
  double total_ms = 0;
  double graph_build_ms = 0;
  double solver_ms = 0;
  double checker_ms = 0;
  double engine_ms = 0;
  double draw_ms = 0;
  double store_append_ms = 0;
};

/// Immutable per-store view.
struct StoreIndex {
  std::string dir;
  store::StoreManifest manifest;
  std::map<std::uint64_t, CellEntry> cells;  ///< deduped, grid order
  std::uint64_t frames_seen = 0;  ///< decoded frames incl. duplicates
  /// Merged profile sidecar rows, total_ms-descending (the profile table's
  /// order); empty when no sidecar has been written.
  std::vector<ProfileSlice> profile;
};

/// Immutable whole-index snapshot; query threads hold the shared_ptr while
/// serving and never observe a half-applied refresh.
struct IndexSnapshot {
  std::vector<std::shared_ptr<const StoreIndex>> stores;
  std::uint64_t version = 0;  ///< bumped per refresh that changed anything
};

/// One aggregate row: a (store, solver, regime, variant, metric) group.
struct AggRow {
  std::string fingerprint;  ///< owning store's spec fingerprint
  std::string solver;
  std::string regime;
  std::string variant;
  std::string metric;  ///< "rounds" | "messages" | "total_bits" | "wall_ms"
                       ///< | "quality"
  std::uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  double min = 0;
  double p50 = 0;  ///< nearest-rank: sorted[ceil(0.5 * count) - 1]
  double p90 = 0;
  double max = 0;
};

/// Filters for aggregate(); empty string = wildcard. `variant` uses "*" as
/// the wildcard so the empty (implicit) variant stays addressable.
struct AggFilter {
  std::string solver;
  std::string regime;
  std::string variant = "*";
  std::string metric;
};

const std::vector<std::string>& agg_metrics();  ///< the five metric names

/// Nearest-rank percentile over ascending `sorted`: element at index
/// ceil(q * n) - 1 (clamped). Shared with compare_sweep.py --agg.
double nearest_rank(const std::vector<double>& sorted, double q);

/// Aggregate rows over a snapshot, grouped by (store, solver, regime,
/// variant) x metric, in deterministic (sorted) order.
std::vector<AggRow> aggregate(const IndexSnapshot& snapshot,
                              const AggFilter& filter);

/// One /compare row: paired per-cell ratios between two regimes. Cells are
/// paired on (solver, graph, variant, bandwidth, seed) -- every coordinate
/// except the regime -- so each ratio compares the *same* experiment under
/// regime_b vs regime_a (ratio = b / a; pairs where a's value is <= 0 or
/// either side is unmeasured are dropped). Percentiles are nearest-rank
/// over the ratios, per (store, solver, variant) group x metric.
struct CompareRow {
  std::string fingerprint;
  std::string solver;
  std::string variant;
  std::string metric;
  std::string regime_a;
  std::string regime_b;
  std::uint64_t pairs = 0;
  double mean_a = 0;  ///< mean of regime_a's paired values
  double mean_b = 0;
  double ratio_min = 0;
  double ratio_p50 = 0;
  double ratio_p90 = 0;
  double ratio_max = 0;
};

/// Filters for compare_regimes(); the two regime names are required, solver
/// and metric are optional narrowing (empty = all).
struct CompareFilter {
  std::string regime_a;
  std::string regime_b;
  std::string solver;
  std::string metric;
};

/// Paired regime comparison over a snapshot (the /compare endpoint), in
/// deterministic (solver, variant, metric) order per store.
std::vector<CompareRow> compare_regimes(const IndexSnapshot& snapshot,
                                        const CompareFilter& filter);

/// One /faults row: the same-experiment contrast between the reliable
/// network and one injected fault spec. Cells are paired on every grid
/// coordinate except the fault ("" = reliable), per (solver, regime,
/// variant, fault) group. Quality percentiles are nearest-rank over the
/// faulted side's scores -- the reliable side reads as 0 violations when
/// its checker passed, and pairs whose reliable side failed outright are
/// dropped (no clean baseline). rounds_ratio_p50 is the faulted / reliable
/// metered round count over pairs where both sides measured > 0 rounds.
struct FaultRow {
  std::string fingerprint;
  std::string solver;
  std::string regime;
  std::string variant;
  std::string fault;  ///< canonical FaultSpec name of the faulted side
  std::uint64_t pairs = 0;
  double quality_mean = 0;
  double quality_p50 = 0;
  double quality_p90 = 0;
  double quality_max = 0;
  double rounds_ratio_p50 = 0;  ///< 0 when no pair had both sides metered
};

/// Filters for compare_faults(); all optional narrowing (empty = all).
struct FaultFilter {
  std::string solver;
  std::string regime;
  std::string fault;
};

/// Paired reliable-vs-faulted comparison over a snapshot (the /faults
/// endpoint), in deterministic (solver, regime, variant, fault) order per
/// store. Stores without a fault axis contribute no rows.
std::vector<FaultRow> compare_faults(const IndexSnapshot& snapshot,
                                     const FaultFilter& filter);

class AggIndex {
 public:
  /// Watches `store_dirs`. Directories without a manifest yet are polled on
  /// every refresh and attach once one appears (a daemon may be started
  /// before the first sweep process).
  explicit AggIndex(std::vector<std::string> store_dirs);

  /// One incremental pass over every watched store; returns the number of
  /// newly decoded frames. Call from a single ingestion thread.
  std::uint64_t refresh();

  /// Current immutable snapshot (never null; empty before the first
  /// refresh attaches a store).
  std::shared_ptr<const IndexSnapshot> snapshot() const;

  /// Reads the raw frame line for `cell` back from disk (pread at the
  /// indexed offset, decode-validated). nullopt when the cell is unknown
  /// or the bytes on disk no longer decode to the indexed cell.
  std::optional<std::string> read_frame(const StoreIndex& store,
                                        std::uint64_t cell) const;

 private:
  struct ShardCursor {
    std::uint64_t offset = 0;  ///< end of the last fully-decoded frame
  };
  struct WatchedStore {
    std::string dir;
    bool attached = false;
    store::StoreManifest manifest;
    std::map<std::string, ShardCursor> cursors;  ///< by shard path
    std::map<std::uint64_t, CellEntry> cells;
    std::uint64_t frames_seen = 0;
    /// Profile sidecar change detection: (size, mtime) per profile-*.json
    /// seen last refresh. Sidecars are small whole-file rewrites (never
    /// appended), so any difference triggers a full re-read and re-merge.
    std::map<std::string, std::pair<std::uintmax_t, std::int64_t>>
        profile_stat;
    std::vector<ProfileSlice> profile;
  };

  /// Tails one shard from its cursor; returns decoded frames and advances
  /// the cursor. Detects shrink (-> store rebuild) via the return flag.
  bool tail_shard(WatchedStore& store, const std::string& path,
                  std::uint64_t* new_frames);
  /// Re-reads the store's profile sidecars when any changed on disk; true
  /// when the merged slices were rebuilt.
  bool refresh_profiles(WatchedStore& store);
  void publish();

  std::vector<WatchedStore> stores_;
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const IndexSnapshot> snapshot_;
  std::uint64_t version_ = 0;
};

}  // namespace rlocal::service
