#include "service/claims.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"

namespace rlocal::service {
namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw InvariantError("work claims: " + what + " '" + path +
                       "': " + std::strerror(errno));
}

/// Claim-protocol observability: counters split fresh acquires from steals
/// (disjoint -- a steal is not also counted as an acquire), and each event
/// leaves an instant in the trace with the range index as payload, so a
/// drain's lease churn is visible on the claimer's track.
void note_claim_event(const char* name, std::uint64_t range, bool steal) {
  static obs::Counter& acquires =
      obs::counter("rlocal_claim_acquires_total");
  static obs::Counter& steals = obs::counter("rlocal_claim_steals_total");
  (steal ? steals : acquires).add();
  obs::Tracer::instant("claims", name, range);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char ch : s) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Parses a lease document; nullopt for torn/garbled bytes. The cell-span
/// fields are optional so leases written before they existed still read.
std::optional<LeaseInfo> parse_lease(const std::string& text) {
  try {
    const JsonValue root = json_parse(text);
    RLOCAL_CHECK(root.is_object(), "lease is not an object");
    LeaseInfo lease;
    lease.owner = root.string_or("owner", "");
    RLOCAL_CHECK(!lease.owner.empty(), "lease has no owner");
    const JsonValue* seq = root.find("seq");
    RLOCAL_CHECK(seq != nullptr && seq->is_number(), "lease has no seq");
    lease.seq = seq->as_uint64();
    lease.done = root.bool_or("done", false);
    lease.cells_begin = static_cast<std::uint64_t>(
        root.number_or("cells_begin", 0.0));
    lease.cells_end = static_cast<std::uint64_t>(
        root.number_or("cells_end", 0.0));
    return lease;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Writes `text` to `path` then fsyncs it, so a published lease is always a
/// complete JSON document (publishes go through link/rename afterwards).
void write_file_synced(const std::string& path, const std::string& text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno("open", path);
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n = ::write(fd, text.data() + written,
                              text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail_errno("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail_errno("fsync", path);
  }
  ::close(fd);
}

std::string lease_json(std::uint64_t range, const std::string& owner,
                       std::uint64_t seq, bool done,
                       std::uint64_t cells_begin, std::uint64_t cells_end) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("range", range);
  w.field("owner", owner);
  w.field("seq", seq);
  w.field("done", done);
  w.field("cells_begin", cells_begin);
  w.field("cells_end", cells_end);
  w.end_object();
  out << '\n';
  return out.str();
}

}  // namespace

WorkClaims::WorkClaims(std::string store_dir, std::string owner,
                       std::uint64_t total_cells, ClaimOptions options)
    : owner_(std::move(owner)), total_cells_(total_cells), options_(options) {
  RLOCAL_CHECK(!owner_.empty(), "work claims: owner id must not be empty");
  RLOCAL_CHECK(options_.range_cells > 0,
               "work claims: range_cells must be > 0");
  claims_dir_ = (fs::path(store_dir) / "claims").string();
  fs::create_directories(claims_dir_);
  tmp_path_ =
      (fs::path(claims_dir_) / (".tmp-" + sanitize_owner(owner_))).string();
  num_ranges_ =
      (total_cells_ + options_.range_cells - 1) / options_.range_cells;
  known_done_.assign(num_ranges_, 0);
  scan_start_ = num_ranges_ == 0 ? 0 : fnv1a(owner_) % num_ranges_;
}

std::uint64_t WorkClaims::range_begin(std::uint64_t range) const {
  RLOCAL_CHECK(range < num_ranges_, "work claims: range out of bounds");
  return range * options_.range_cells;
}

std::uint64_t WorkClaims::range_end(std::uint64_t range) const {
  RLOCAL_CHECK(range < num_ranges_, "work claims: range out of bounds");
  return std::min(total_cells_, (range + 1) * options_.range_cells);
}

std::string WorkClaims::lease_path(std::uint64_t range) const {
  return (fs::path(claims_dir_) / ("range-" + std::to_string(range) + ".json"))
      .string();
}

WorkClaims::ReadResult WorkClaims::read_lease(std::uint64_t range) const {
  ReadResult result;
  std::ifstream in(lease_path(range), std::ios::binary);
  if (!in.good()) return result;  // kMissing
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (std::optional<LeaseInfo> lease = parse_lease(buffer.str());
      lease.has_value()) {
    result.lease = std::move(*lease);
    result.state = LeaseState::kOk;
  } else {
    // Leases are published atomically, so a torn/garbled file means outside
    // interference; treat it as immediately stealable rather than wedging
    // the range forever.
    result.state = LeaseState::kCorrupt;
  }
  return result;
}

void WorkClaims::write_lease(std::uint64_t range, std::uint64_t seq,
                             bool done) const {
  write_file_synced(tmp_path_, lease_json(range, owner_, seq, done,
                                          range_begin(range),
                                          range_end(range)));
  std::error_code ec;
  fs::rename(tmp_path_, lease_path(range), ec);
  RLOCAL_CHECK(!ec, "work claims: rename '" + tmp_path_ + "' -> '" +
                        lease_path(range) + "': " + ec.message());
}

bool WorkClaims::create_exclusive(std::uint64_t range) {
  write_file_synced(tmp_path_, lease_json(range, owner_, 1, false,
                                          range_begin(range),
                                          range_end(range)));
  const std::string lease = lease_path(range);
  // link(2) is the portable atomic create-exclusive publish: it fails with
  // EEXIST when any other claimer's lease is already in place.
  if (::link(tmp_path_.c_str(), lease.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_path_.c_str());
    if (err == EEXIST) return false;
    errno = err;
    fail_errno("link", lease);
  }
  ::unlink(tmp_path_.c_str());
  return true;
}

bool WorkClaims::try_acquire(std::uint64_t range) {
  RLOCAL_CHECK(range < num_ranges_, "work claims: range out of bounds");
  if (known_done_[range]) return false;
  const ReadResult current = read_lease(range);
  if (current.state == LeaseState::kMissing) {
    if (!create_exclusive(range)) return false;
    note_claim_event("claim_acquire", range, /*steal=*/false);
    return true;
  }
  if (current.state == LeaseState::kOk) {
    if (current.lease.done) {
      known_done_[range] = 1;
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    auto [it, inserted] = observed_.try_emplace(range);
    Observation& obs = it->second;
    if (inserted || obs.owner != current.lease.owner ||
        obs.seq != current.lease.seq) {
      // New or advancing lease: restart this claimer's staleness window.
      obs = {current.lease.owner, current.lease.seq, now};
      return false;
    }
    if (now - obs.first_seen <
        std::chrono::milliseconds(options_.ttl_ms)) {
      return false;  // unchanged, but not long enough to presume death
    }
  }
  // Stale (or corrupt) lease: move it aside, then run the normal exclusive
  // create race -- a concurrent stealer may win, which is fine.
  observed_.erase(range);
  const std::string aside =
      (fs::path(claims_dir_) / (".stale-" + std::to_string(range) + "-" +
                                sanitize_owner(owner_)))
          .string();
  std::error_code ec;
  fs::rename(lease_path(range), aside, ec);
  if (!ec) fs::remove(aside, ec);
  if (!create_exclusive(range)) return false;
  note_claim_event("claim_steal", range, /*steal=*/true);
  return true;
}

std::optional<std::uint64_t> WorkClaims::acquire() {
  for (std::uint64_t step = 0; step < num_ranges_; ++step) {
    const std::uint64_t range = (scan_start_ + step) % num_ranges_;
    if (try_acquire(range)) {
      scan_start_ = (range + 1) % num_ranges_;
      return range;
    }
  }
  return std::nullopt;
}

bool WorkClaims::heartbeat(std::uint64_t range) {
  const ReadResult current = read_lease(range);
  if (current.state != LeaseState::kOk || current.lease.owner != owner_) {
    // Stolen (we looked dead); abandon the range. The instant makes the
    // victim's side of a steal visible in its own trace.
    obs::Tracer::instant("claims", "claim_lost", range);
    return false;
  }
  write_lease(range, current.lease.seq + 1, current.lease.done);
  static obs::Counter& heartbeats =
      obs::counter("rlocal_claim_heartbeats_total");
  heartbeats.add();
  obs::Tracer::instant("claims", "claim_heartbeat", range);
  return true;
}

void WorkClaims::mark_done(std::uint64_t range) {
  const ReadResult current = read_lease(range);
  const std::uint64_t seq =
      current.state == LeaseState::kOk ? current.lease.seq + 1 : 1;
  write_lease(range, seq, /*done=*/true);
  known_done_[range] = 1;
}

void WorkClaims::release(std::uint64_t range) {
  const ReadResult current = read_lease(range);
  if (current.state == LeaseState::kOk && current.lease.owner == owner_ &&
      !current.lease.done) {
    std::error_code ec;
    fs::remove(lease_path(range), ec);
  }
}

std::optional<LeaseInfo> WorkClaims::peek(std::uint64_t range) const {
  const ReadResult current = read_lease(range);
  if (current.state != LeaseState::kOk) return std::nullopt;
  return current.lease;
}

std::uint64_t WorkClaims::count_done() const {
  std::uint64_t done = 0;
  for (std::uint64_t range = 0; range < num_ranges_; ++range) {
    if (!known_done_[range]) {
      const ReadResult current = read_lease(range);
      if (current.state == LeaseState::kOk && current.lease.done) {
        known_done_[range] = 1;
      }
    }
    if (known_done_[range]) ++done;
  }
  return done;
}

store::RecordStore ensure_store(const std::string& dir,
                                store::StoreManifest manifest,
                                double timeout_ms) {
  fs::create_directories(dir);
  const std::string lock = (fs::path(dir) / ".init-lock").string();
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  while (true) {
    if (store::RecordStore::exists(dir)) {
      store::RecordStore opened = store::RecordStore::open(dir);
      RLOCAL_CHECK(
          opened.manifest().fingerprint == manifest.fingerprint,
          "claimed drain: store '" + dir +
              "' was written by a different spec (fingerprint " +
              opened.manifest().fingerprint + ", this spec is " +
              manifest.fingerprint + "); refusing to mix records");
      return opened;
    }
    const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      // Won the init race (or inherited a reclaimed lock): publish the
      // manifest, then release the lock.
      if (!store::RecordStore::exists(dir)) {
        store::RecordStore created =
            store::RecordStore::create(dir, std::move(manifest));
        ::unlink(lock.c_str());
        return created;
      }
      ::unlink(lock.c_str());
      continue;  // someone else published first; open it above
    }
    RLOCAL_CHECK(errno == EEXIST,
                 "claimed drain: cannot create init lock '" + lock +
                     "': " + std::strerror(errno));
    // A process is initializing; wait for its manifest. If none appears
    // within the timeout the initializer crashed pre-manifest: reclaim the
    // lock and race again (give up after a second full window).
    if (elapsed_ms() > timeout_ms) {
      RLOCAL_CHECK(elapsed_ms() <= 2 * timeout_ms,
                   "claimed drain: no manifest appeared in '" + dir +
                       "' (initializer crashed?)");
      std::error_code ec;
      fs::remove(lock, ec);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::string sanitize_owner(const std::string& owner) {
  std::string out = owner;
  for (char& ch : out) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '.' ||
                    ch == '-';
    if (!ok) ch = '_';
  }
  return out;
}

std::vector<std::pair<std::uint64_t, LeaseInfo>> read_all_leases(
    const std::string& store_dir) {
  std::vector<std::pair<std::uint64_t, LeaseInfo>> out;
  const fs::path claims = fs::path(store_dir) / "claims";
  std::error_code ec;
  for (fs::directory_iterator it(claims, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind("range-", 0) != 0 || name.size() <= 11 ||
        name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    std::uint64_t range = 0;
    try {
      std::size_t parsed = 0;
      const std::string digits = name.substr(6, name.size() - 11);
      range = std::stoull(digits, &parsed);
      if (parsed != digits.size()) continue;
    } catch (const std::exception&) {
      continue;
    }
    std::ifstream in(it->path(), std::ios::binary);
    if (!in.good()) continue;  // raced with a rename/steal
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (std::optional<LeaseInfo> lease = parse_lease(buffer.str());
        lease.has_value()) {
      out.emplace_back(range, std::move(*lease));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace rlocal::service
