// Minimal blocking HTTP/1.1 server for rlocald's JSONL query API.
//
// Deliberately tiny: loopback only, GET only, Connection: close, a handful
// of worker threads each doing poll(accept fd) -> accept -> read one
// request -> write one response. No external dependencies, no TLS, no
// keep-alive -- the daemon serves line-oriented JSON to curl and scripts,
// not browsers (docs/service.md). Handlers run on the worker threads and
// must be thread-safe (rlocald's are pure functions of an immutable index
// snapshot, so they trivially are).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace rlocal::service {

struct HttpRequest {
  std::string method;  ///< "GET" (anything else is answered 405)
  std::string path;    ///< decoded path, query string stripped
  std::map<std::string, std::string> query;  ///< decoded query parameters
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/x-ndjson";
  std::string body;
};

/// Parses and percent-decodes a query string ("a=1&b=x%20y") -- exposed for
/// tests.
std::map<std::string, std::string> parse_query(const std::string& raw);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts
  /// `threads` worker threads. Throws InvariantError when the bind fails.
  HttpServer(int port, Handler handler, int threads = 2);
  ~HttpServer();  ///< stop() + join
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  int port() const { return port_; }
  void stop();

 private:
  void worker_loop();
  void serve_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
};

}  // namespace rlocal::service
