// WorkClaims: cooperative, coordinator-free claiming of sweep cell ranges,
// so N independent run_sweep processes drain one fingerprinted sweep
// concurrently (each writing its own shard; see docs/service.md).
//
// Protocol. The grid's cell indices are partitioned into fixed ranges of
// `range_cells`. Each range has at most one lease file under
// `<store>/claims/range-<k>.json` holding {range, owner, seq, done}:
//
//   * acquire   -- create the lease exclusively (write a private tmp file,
//                  then link(2) it into place; EEXIST means someone else
//                  holds the range). No lock server, no coordinator.
//   * heartbeat -- rewrite the lease with seq+1 (tmp + atomic rename) after
//                  every cell; returns false when the lease is no longer
//                  ours (stolen), telling the caller to abandon the range.
//   * mark_done -- rewrite the lease with done = true; a done lease is
//                  permanent and the range is never claimed again.
//
// Stale detection is observation-based: no cross-process clocks are ever
// compared. A claimer remembers (owner, seq, local steady time) per lease
// it could not acquire; when the pair stays unchanged for longer than
// `ttl_ms` of *its own* clock, the holder is presumed dead and the lease is
// stolen (renamed away, then the normal exclusive create race decides the
// new holder).
//
// Failure model: at-least-once execution. A steal (or the heartbeat race it
// loses) can make two claimers run the same range; both append frames for
// the same cells, which is benign because records are deterministic
// (byte-identical payloads) and RecordStore::read_all deduplicates by
// cell_index last-write-wins. What the protocol guarantees is that every
// range is eventually executed by a *live* claimer and that done ranges are
// never re-run.
//
// Threading: one WorkClaims instance per claimer (thread or process); the
// instance itself is not thread-safe. Distinct claimers in one process must
// use distinct owner ids.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/record_store.hpp"

namespace rlocal::service {

struct ClaimOptions {
  std::uint64_t range_cells = 64;  ///< cell indices per lease range
  /// Local observation window after which an unchanged (owner, seq) lease
  /// is presumed dead and stolen. Must comfortably exceed the worst-case
  /// per-cell wall time (heartbeats happen once per cell).
  std::uint64_t ttl_ms = 10'000;
};

/// One lease as read back from disk (exposed for tests/inspection).
struct LeaseInfo {
  std::string owner;
  std::uint64_t seq = 0;
  bool done = false;
  /// The range's cell span [cells_begin, cells_end), written by the holder
  /// (who knows the range geometry) so observers -- the fleet tracker --
  /// can size a lease without knowing range_cells. Parsed tolerantly:
  /// leases from before these fields existed read back as an empty span.
  std::uint64_t cells_begin = 0;
  std::uint64_t cells_end = 0;
};

class WorkClaims {
 public:
  /// `store_dir` is the sweep store directory; leases live in its `claims/`
  /// subdirectory (created if absent). `owner` must be unique per claimer
  /// and non-empty; `total_cells` is the grid's cell count (all claimers
  /// must agree, which the store fingerprint already pins).
  WorkClaims(std::string store_dir, std::string owner,
             std::uint64_t total_cells, ClaimOptions options = {});

  const std::string& owner() const { return owner_; }
  std::uint64_t num_ranges() const { return num_ranges_; }
  std::uint64_t range_begin(std::uint64_t range) const;
  std::uint64_t range_end(std::uint64_t range) const;

  /// Claims some not-done range: scans from a per-owner start offset (so
  /// concurrent claimers fan out over the grid instead of contending on
  /// range 0), acquiring the first free or stale lease. Returns the claimed
  /// range, or nullopt when every range is currently done or freshly held
  /// by someone else -- callers should sleep briefly and retry until
  /// all_done() (a holder may still crash and go stale).
  std::optional<std::uint64_t> acquire();

  /// Attempts to acquire one specific range (exposed for tests).
  bool try_acquire(std::uint64_t range);

  /// Re-asserts ownership after finishing a cell. False means the lease was
  /// stolen (this claimer looked dead): stop working on the range -- frames
  /// already appended are harmless duplicates.
  bool heartbeat(std::uint64_t range);

  /// Permanently marks the range complete. Safe to call even after a steal:
  /// the records are durable in this claimer's shard regardless.
  void mark_done(std::uint64_t range);

  /// Abandons a held range without completing it (budget exhausted);
  /// removes the lease so other claimers pick it up without waiting ttl.
  void release(std::uint64_t range);

  /// Reads the lease for `range`; nullopt when none exists.
  std::optional<LeaseInfo> peek(std::uint64_t range) const;

  std::uint64_t count_done() const;  ///< done ranges (scans the claims dir)
  bool all_done() const { return count_done() == num_ranges_; }

 private:
  enum class LeaseState { kMissing, kCorrupt, kOk };
  struct ReadResult {
    LeaseState state = LeaseState::kMissing;
    LeaseInfo lease;
  };
  struct Observation {
    std::string owner;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point first_seen;
  };

  std::string lease_path(std::uint64_t range) const;
  ReadResult read_lease(std::uint64_t range) const;
  bool create_exclusive(std::uint64_t range);
  void write_lease(std::uint64_t range, std::uint64_t seq, bool done) const;

  std::string claims_dir_;
  std::string owner_;
  std::string tmp_path_;  ///< per-owner scratch file for atomic publishes
  std::uint64_t total_cells_ = 0;
  std::uint64_t num_ranges_ = 0;
  ClaimOptions options_;
  std::uint64_t scan_start_ = 0;  ///< acquire() fan-out offset
  /// Ranges this instance has seen marked done (saves re-reading leases).
  mutable std::vector<char> known_done_;
  /// Stale-detection memory: last (owner, seq) seen per contended lease.
  std::unordered_map<std::uint64_t, Observation> observed_;
};

/// Joins or creates the store directory for a claimed drain: exactly one
/// process creates the manifest (guarded by an exclusive `.init-lock` file);
/// the rest wait for it to appear and open it. Throws InvariantError when
/// the existing store's fingerprint differs from `manifest.fingerprint`, or
/// when no manifest appears within `timeout_ms` (a lock left by a process
/// that crashed pre-manifest is itself reclaimed after the timeout).
store::RecordStore ensure_store(const std::string& dir,
                                store::StoreManifest manifest,
                                double timeout_ms = 10'000);

/// Owner ids appear in file names (lease tmp files, shard names, profile
/// sidecars); anything outside [A-Za-z0-9_.-] is flattened to '_' so
/// callers can pass hostnames or free-form labels.
std::string sanitize_owner(const std::string& owner);

/// Reads every lease under `<store_dir>/claims/` as (range, lease) pairs in
/// ascending range order. Corrupt or mid-publish files are skipped; an
/// absent claims directory yields an empty vector. Read-only -- this is the
/// fleet tracker's observation input, usable by any process.
std::vector<std::pair<std::uint64_t, LeaseInfo>> read_all_leases(
    const std::string& store_dir);

}  // namespace rlocal::service
