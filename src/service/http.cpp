#include "service/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/assert.hpp"

namespace rlocal::service {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;

int hex_digit(char ch) {
  if (ch >= '0' && ch <= '9') return ch - '0';
  if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
  if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
  return -1;
}

std::string url_decode(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '+') {
      out += ' ';
    } else if (raw[i] == '%' && i + 2 < raw.size() &&
               hex_digit(raw[i + 1]) >= 0 && hex_digit(raw[i + 2]) >= 0) {
      out += static_cast<char>(hex_digit(raw[i + 1]) * 16 +
                               hex_digit(raw[i + 2]));
      i += 2;
    } else {
      out += raw[i];
    }
  }
  return out;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

void write_all(int fd, const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + written, bytes.size() - written,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to do
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::map<std::string, std::string> parse_query(const std::string& raw) {
  std::map<std::string, std::string> query;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t amp = raw.find('&', start);
    const std::string_view pair(
        raw.data() + start,
        (amp == std::string::npos ? raw.size() : amp) - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        query[url_decode(pair)] = "";
      } else {
        query[url_decode(pair.substr(0, eq))] =
            url_decode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string::npos) break;
    start = amp + 1;
  }
  return query;
}

HttpServer::HttpServer(int port, Handler handler, int threads)
    : handler_(std::move(handler)) {
  RLOCAL_CHECK(handler_ != nullptr, "http server needs a handler");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RLOCAL_CHECK(listen_fd_ >= 0,
               std::string("http: socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvariantError("http: cannot listen on 127.0.0.1:" +
                         std::to_string(port) + ": " + reason);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::worker_loop() {
  // All workers poll + accept on the shared listening socket; the 100 ms
  // poll timeout is the stop-flag latency bound.
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // lost the race to another worker
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the header block (GETs have no body).
  std::string request;
  char buffer[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    request.append(buffer, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  const std::size_t line_end = request.find("\r\n");
  const std::string request_line =
      request.substr(0, line_end == std::string::npos ? 0 : line_end);
  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos
          ? std::string::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    response = {400, "text/plain", "bad request\n"};
  } else {
    HttpRequest parsed;
    parsed.method = request_line.substr(0, method_end);
    std::string target =
        request_line.substr(method_end + 1, target_end - method_end - 1);
    const std::size_t question = target.find('?');
    if (question != std::string::npos) {
      parsed.query = parse_query(target.substr(question + 1));
      target.resize(question);
    }
    parsed.path = url_decode(target);
    if (parsed.method != "GET") {
      response = {405, "text/plain", "only GET is supported\n"};
    } else {
      try {
        response = handler_(parsed);
      } catch (const std::exception& e) {
        response = {500, "text/plain", std::string("error: ") + e.what() +
                                           "\n"};
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  write_all(fd, out);
}

}  // namespace rlocal::service
