// rlocald: the sweep lab's long-running query daemon.
//
// Watches one or more store directories, keeps an incremental AggIndex over
// their shards (an ingestion thread tails newly-appended frames; queries
// read immutable snapshots and never block on ingestion), and serves a
// minimal JSONL HTTP API on loopback (docs/service.md):
//
//   GET /healthz            -- {"status":"ok", ...} liveness + index stats
//   GET /sweeps             -- one line per attached store (fingerprint,
//                              cell counts, ingestion progress)
//   GET /agg?solver=&regime=&variant=&metric=
//                           -- aggregate rows (nearest-rank percentiles)
//                              per (solver, regime, variant) x metric
//   GET /records?cell=K[&store=FP]
//                           -- the raw stored frame for one cell
//   GET /records?[solver=][&regime=][&failed=1][&limit=N][&store=FP]
//                           -- filtered per-cell summary listing
//   GET /workers, /stragglers, /eta
//                           -- fleet telemetry (service/fleet.hpp)
//   GET /profile?[solver=][&regime=]
//                           -- per-(solver, regime) phase slices merged
//                              from the store's profile sidecars
//   GET /compare?regime_a=&regime_b=[&solver=][&metric=]
//                           -- paired per-cell regime ratio rows
//   GET /faults?[solver=][&regime=][&fault=]
//                           -- paired reliable-vs-faulted quality rows
//                              (fault-injection sweeps; docs/faults.md)
//   GET /metrics, /progress -- Prometheus exposition / drain progress
//
// The daemon binary is bench/rlocald.cpp; this class is the embeddable
// core (tests run it in-process on an ephemeral port).
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/agg_index.hpp"
#include "service/fleet.hpp"
#include "service/http.hpp"

namespace rlocal::service {

struct DaemonOptions {
  std::vector<std::string> stores;  ///< store directories to watch
  int port = 0;                     ///< HTTP port; 0 = ephemeral
  int http_threads = 2;
  int refresh_interval_ms = 200;  ///< ingestion poll cadence
  FleetOptions fleet;             ///< staleness / straggler thresholds
};

class Daemon {
 public:
  /// Runs one initial index refresh synchronously (so a store that already
  /// has frames is queryable the moment the constructor returns), then
  /// starts the ingestion thread and the HTTP server.
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  int port() const { return server_->port(); }
  std::shared_ptr<const IndexSnapshot> snapshot() const {
    return index_.snapshot();
  }
  void stop();

  /// Route dispatch, exposed for tests (the HTTP server calls this).
  HttpResponse handle(const HttpRequest& request);

 private:
  void ingest_loop();

  DaemonOptions options_;
  AggIndex index_;
  FleetTracker fleet_;
  std::chrono::steady_clock::time_point start_time_;
  std::unique_ptr<HttpServer> server_;
  std::thread ingest_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace rlocal::service
