// Quickstart: build a graph, compute a network decomposition three ways
// (standard randomness, poly(log n)-wise independence, shared seed), and
// validate each result.
//
//   ./quickstart [--n=1024] [--seed=7]
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 1024));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "rlocal " << version() << " quickstart\n";
  const auto side = static_cast<NodeId>(std::max(4.0, std::sqrt(double(n))));
  const Graph g = make_grid(side, side);
  std::cout << "graph: " << side << "x" << side << " grid, "
            << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n\n";

  const int logn = ceil_log2(static_cast<std::uint64_t>(g.num_nodes()));
  const Regime regimes[] = {
      Regime::full(),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
  };
  for (const Regime& regime : regimes) {
    const DecomposeSummary summary = decompose(g, regime, seed);
    const ValidationReport report =
        validate_decomposition(g, summary.decomposition);
    std::cout << "regime " << regime.name() << ":\n"
              << "  valid            = " << (report.valid ? "yes" : "NO")
              << (report.valid ? "" : " (" + report.error + ")") << "\n"
              << "  colors           = " << report.colors_used << "\n"
              << "  max cluster diam = " << report.max_tree_diameter << "\n"
              << "  congestion       = " << report.max_congestion << "\n"
              << "  strong diameter  = "
              << (report.strong_diameter ? "yes" : "no") << "\n"
              << "  rounds (CONGEST) = " << summary.rounds_charged << "\n\n";
    if (!report.valid) return 1;
  }
  std::cout << "All decompositions valid. The paper's point: the last two "
               "used exponentially less randomness than the first.\n";
  return 0;
}
