// Quickstart: one Sweep call computes network decompositions three ways
// (standard randomness, poly(log n)-wise independence, shared seed) with
// both decomposition solvers, validating every result via the built-in
// checkers.
//
//   ./quickstart [--n=1024] [--seed=7]
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 1024));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "rlocal " << version() << " quickstart\n";
  const auto side = static_cast<NodeId>(std::max(4.0, std::sqrt(double(n))));
  const Graph g = make_grid(side, side);
  std::cout << "graph: " << side << "x" << side << " grid, "
            << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n\n";

  const int logn = ceil_log2(static_cast<std::uint64_t>(g.num_nodes()));
  lab::SweepSpec spec;
  spec.graphs = {{"grid", g}};
  spec.regimes = {
      Regime::full(),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
  };
  spec.seeds = {seed};
  spec.solvers = {"decomp/elkin_neiman", "decomp/shared_congest"};

  const lab::SweepResult result = sweep(spec);
  lab::summary_table(result).print(std::cout);
  for (const lab::RunRecord& r : result.records) {
    if (r.skipped) continue;
    std::cout << "\n" << r.solver << " under " << r.regime << ":\n"
              << "  valid            = " << (r.checker_passed ? "yes" : "NO")
              << (r.error.empty() ? "" : " (" + r.error + ")") << "\n"
              << "  colors           = " << r.colors << "\n"
              << "  max cluster diam = " << r.diameter << "\n"
              << "  rounds (CONGEST) = " << r.rounds << "\n"
              << "  seed bits        = " << r.shared_seed_bits << "\n"
              << "  derived bits     = " << r.derived_bits << "\n";
  }
  if (result.cells_failed > 0) return 1;
  std::cout << "\nAll decompositions valid. The paper's point: the scarce "
               "regimes used exponentially less randomness than the "
               "first.\n";
  return 0;
}
