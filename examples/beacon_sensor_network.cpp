// Scenario from the paper's Section 3.1 discussion: a network where
// hardware randomness is scarce -- only a few "beacon" nodes (say, nodes
// with a thermal RNG) hold one random bit each, but every node has a beacon
// within h hops. Theorem 3.1 still decomposes the network in poly(log n)
// CONGEST rounds; Theorem 3.7 removes the h factor from the diameter.
//
//   ./beacon_sensor_network [--n=900] [--h=3] [--seed=5]
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 900));
  const int h = static_cast<int>(args.get_int("h", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  const auto side = static_cast<NodeId>(std::max(4.0, std::sqrt(double(n))));
  const Graph g = make_grid(side, side);
  // Half of the sensors carry a hardware RNG (one output bit each);
  // the repair pass guarantees the paper's h-hop promise.
  const BeaconPlacement placement = place_beacons_random(g, h, 0.5, seed);
  std::cout << "sensor grid " << side << "x" << side << ", " << g.num_nodes()
            << " nodes; " << placement.beacons.size()
            << " beacon nodes hold one random bit each (promise: a beacon "
               "within "
            << h << " hops of everyone)\n\n";

  // Theorem 3.1: cluster-graph Elkin-Neiman on gathered bits.
  {
    PrngBitSource beacon_bits(seed);
    OneBitOptions options;
    options.h_prime = 4 * h + 1;  // bench-scale separation (see DESIGN.md)
    const OneBitResult r =
        one_bit_decomposition(g, placement, beacon_bits, options);
    const ValidationReport report = validate_decomposition(g,
                                                           r.decomposition);
    std::cout << "Theorem 3.1 (weak diameter, h appears in the bound):\n"
              << "  valid=" << (report.valid ? "yes" : "NO")
              << " colors=" << report.colors_used
              << " diameter=" << report.max_tree_diameter
              << " congestion=" << report.max_congestion
              << " rounds=" << r.rounds_charged << "\n"
              << "  Lemma 3.2 clusters=" << r.num_clusters
              << " (isolated=" << r.num_isolated
              << "), min bits gathered=" << r.min_bits_gathered
              << ", draws past a dry pool=" << r.exhausted_draws << "\n\n";
  }

  // Theorem 3.7: strong diameter O(log^2 n), independent of h. A larger
  // ruling-set separation gives each cluster a deeper bit pool (its seed
  // feeds a k-wise generator rather than one-shot draws).
  {
    PrngBitSource beacon_bits(seed + 1);
    OneBitOptions options;
    options.h_prime = 8 * h + 1;
    const OneBitResult r =
        one_bit_strong_decomposition(g, placement, beacon_bits, options);
    const ValidationReport report = validate_decomposition(g,
                                                           r.decomposition);
    std::cout << "Theorem 3.7 (strong diameter, no h factor):\n"
              << "  valid=" << (report.valid ? "yes" : "NO")
              << " colors=" << report.colors_used
              << " diameter=" << report.max_tree_diameter
              << " strong=" << (report.strong_diameter ? "yes" : "no")
              << " rounds=" << r.rounds_charged << "\n";
    return report.valid ? 0 : 1;
  }
}
