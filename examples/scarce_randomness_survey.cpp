// Survey: classic local problems (MIS, (Delta+1)-coloring, splitting) run
// under the paper's scarce-randomness regimes. The punchline of Section 3:
// poly(log n)-wise independence or a poly(log n)-bit shared seed changes
// essentially nothing.
//
// The whole survey is one Sweep call over four solvers and five regimes.
//
//   ./scarce_randomness_survey [--n=512] [--seed=11] [--seeds=3]
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 512));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const int num_seeds =
      std::max(1, static_cast<int>(args.get_int("seeds", 3)));
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));

  lab::SweepSpec spec;
  spec.graphs = {{"gnp", make_gnp(n, 6.0 / static_cast<double>(n), seed)}};
  spec.regimes = {
      Regime::full(),
      Regime::kwise(4),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
      Regime::shared_epsbias(4 * logn),
  };
  for (int t = 0; t < num_seeds; ++t) {
    spec.seeds.push_back(seed + 2 + static_cast<std::uint64_t>(t));
  }
  spec.solvers = {"mis/luby", "mis/greedy", "coloring/random_trial",
                  "splitting/random"};

  const lab::SweepResult result = sweep(spec);
  std::cout << "G(n, 6/n) with n = " << n << "; splitting instances derived "
            << "with constraint degree 4 log n\n\n";
  lab::summary_table(result).print(std::cout);
  std::cout << "\nEvery regime below 'full' uses only poly(log n) seed "
               "randomness -- the paper's Section 3 in action. (Failures "
               "under tiny k are the point, not a bug.)\n";
  return 0;
}
