// Survey: classic local problems (MIS, (Delta+1)-coloring, splitting) run
// under the paper's scarce-randomness regimes. The punchline of Section 3:
// poly(log n)-wise independence or a poly(log n)-bit shared seed changes
// essentially nothing.
//
//   ./scarce_randomness_survey [--n=512] [--seed=11]
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 512));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const Graph g = make_gnp(n, 6.0 / static_cast<double>(n), seed);
  const BipartiteGraph h =
      make_random_splitting_instance(n, n, 4 * ceil_log2(
                                               static_cast<std::uint64_t>(n)),
                                     seed + 1);
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));

  const Regime regimes[] = {
      Regime::full(),
      Regime::kwise(4),
      Regime::kwise(2 * logn * logn),
      Regime::shared_kwise(64 * 2 * logn * logn),
      Regime::shared_epsbias(4 * logn),
  };

  Table table({"regime", "MIS ok", "MIS iters", "coloring ok",
               "splitting violations"});
  for (const Regime& regime : regimes) {
    NodeRandomness rnd(regime, seed + 2);
    const LubyMisResult mis = reference_luby_mis(g, rnd);
    RLOCAL_CHECK(!mis.success || is_maximal_independent_set(g, mis.in_mis),
                 "Luby produced a non-MIS");
    NodeRandomness rnd2(regime, seed + 3);
    const ColoringResult coloring = random_coloring(g, rnd2);
    NodeRandomness rnd3(regime, seed + 4);
    const SplittingResult split = random_splitting(h, rnd3);
    table.add_row({regime.name(), mis.success ? "yes" : "NO",
                   fmt(mis.iterations), coloring.success ? "yes" : "NO",
                   fmt(split.violations)});
  }
  std::cout << "G(n, 6/n) with n = " << n << "; splitting: " << h.num_left()
            << " constraints of degree " << h.min_left_degree() << "\n\n";
  table.print(std::cout);
  std::cout << "\nEvery regime below 'full' uses only poly(log n) seed "
               "randomness -- the paper's Section 3 in action.\n";
  return 0;
}
