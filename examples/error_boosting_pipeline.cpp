// Theorem 4.2 end to end: run the shattering-boosted decomposition with a
// deliberately under-provisioned base stage so the deterministic second
// stage actually fires, and show the leftover statistics the proof bounds.
//
//   ./error_boosting_pipeline [--n=600] [--trials=20] [--seed=3]
#include <cmath>
#include <iostream>

#include "core/api.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rlocal;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 600));
  const int trials = static_cast<int>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const Graph g = make_caterpillar(n / 4, 3);
  std::cout << "caterpillar with " << g.num_nodes() << " nodes; base EN "
               "runs with only 2 phases (instead of ~"
            << 10 * ceil_log2(static_cast<std::uint64_t>(g.num_nodes()))
            << ") so leftovers appear.\n\n";

  Table table({"trial", "leftover", "components", "max comp",
               "separated set", "boosted ok", "colors"});
  int failures = 0;
  for (int trial = 0; trial < trials; ++trial) {
    NodeRandomness rnd(Regime::full(), seed + static_cast<std::uint64_t>(
                                                  trial));
    ShatteringOptions options;
    options.base_phases = 2;
    options.en.shift_cap = 4;  // small t keeps the ruling set interesting
    const ShatteringResult r = boosted_decomposition(g, rnd, options);
    const ValidationReport report =
        validate_decomposition(g, r.decomposition);
    if (!report.valid) ++failures;
    table.add_row({fmt(trial), fmt(r.leftover_nodes),
                   fmt(r.leftover_components), fmt(r.max_leftover_component),
                   fmt(r.separated_set_size),
                   report.valid ? "yes" : "NO", fmt(report.colors_used)});
  }
  table.print(std::cout);
  std::cout << "\nfailures: " << failures << "/" << trials
            << " -- the boosted pipeline never fails: whatever the base "
               "stage leaves behind, the deterministic stage finishes.\n";
  return failures == 0 ? 0 : 1;
}
