// Top-two measure propagation: engine program vs centralized reference vs
// brute force (per-origin BFS), across the zoo with random start values.
#include <gtest/gtest.h>

#include <random>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/programs/top_two.hpp"
#include "test_util.hpp"

namespace rlocal {
namespace {

/// Brute-force top-two: per-origin BFS computes every measure exactly.
TopTwoResult brute_force_top_two(const Graph& g,
                                 const std::vector<std::int32_t>& start,
                                 const std::vector<bool>& participates) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  TopTwoResult result;
  result.best.resize(n);
  result.second.resize(n);
  // Distances within the participating subgraph.
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (participates[static_cast<std::size_t>(v)]) keep.push_back(v);
  }
  const InducedSubgraph sub = induced_subgraph(g, keep);
  std::vector<NodeId> local_of(n, -1);
  for (std::size_t i = 0; i < sub.origin.size(); ++i) {
    local_of[static_cast<std::size_t>(sub.origin[i])] =
        static_cast<NodeId>(i);
  }
  for (NodeId origin = 0; origin < g.num_nodes(); ++origin) {
    if (!participates[static_cast<std::size_t>(origin)] ||
        start[static_cast<std::size_t>(origin)] < 0) {
      continue;
    }
    const auto dist =
        bfs_distances(sub.graph, local_of[static_cast<std::size_t>(origin)]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId lv = local_of[static_cast<std::size_t>(v)];
      if (lv == -1 || dist[static_cast<std::size_t>(lv)] == kUnreachable) {
        continue;
      }
      const std::int32_t measure =
          start[static_cast<std::size_t>(origin)] -
          dist[static_cast<std::size_t>(lv)];
      if (measure < 0) continue;
      const MeasureEntry entry{g.id(origin), measure};
      auto& best = result.best[static_cast<std::size_t>(v)];
      auto& second = result.second[static_cast<std::size_t>(v)];
      if (entry.beats(best)) {
        second = best;
        best = entry;
      } else if (entry.beats(second)) {
        second = entry;
      }
    }
  }
  return result;
}

class ZooTopTwo : public ::testing::TestWithParam<int> {};

TEST_P(ZooTopTwo, ReferenceMatchesBruteForce) {
  const Graph& g = testing::small_zoo()[static_cast<std::size_t>(
                                            GetParam())].graph;
  std::mt19937_64 rng(99);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::int32_t> start(n, -1);
    std::vector<bool> participates(n, true);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng() % 3 == 0) {
        start[static_cast<std::size_t>(v)] =
            static_cast<std::int32_t>(rng() % 9);
      }
      participates[static_cast<std::size_t>(v)] = rng() % 4 != 0;
    }
    const TopTwoResult expected = brute_force_top_two(g, start,
                                                      participates);
    const TopTwoResult actual = reference_top_two(g, start, participates);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!participates[static_cast<std::size_t>(v)]) continue;
      const auto i = static_cast<std::size_t>(v);
      EXPECT_EQ(actual.best[i].value, expected.best[i].value) << v;
      if (expected.best[i].present()) {
        EXPECT_EQ(actual.best[i].origin_id, expected.best[i].origin_id) << v;
      }
      EXPECT_EQ(actual.second[i].value, expected.second[i].value) << v;
    }
  }
}

TEST_P(ZooTopTwo, EngineMatchesReference) {
  const Graph& g = testing::small_zoo()[static_cast<std::size_t>(
                                            GetParam())].graph;
  std::mt19937_64 rng(7);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::int32_t> start(n, -1);
  std::vector<bool> participates(n, true);
  std::int32_t max_start = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rng() % 2 == 0) {
      start[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(rng() % 7);
      max_start = std::max(max_start, start[static_cast<std::size_t>(v)]);
    }
  }
  const TopTwoResult expected = reference_top_two(g, start, participates);
  const TopTwoResult actual = run_top_two(g, start, participates,
                                          max_start + 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    EXPECT_EQ(actual.best[i].value, expected.best[i].value) << v;
    EXPECT_EQ(actual.second[i].value, expected.second[i].value) << v;
    if (expected.best[i].present()) {
      EXPECT_EQ(actual.best[i].origin_id, expected.best[i].origin_id) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooTopTwo,
    ::testing::Range(0, static_cast<int>(testing::small_zoo().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return rlocal::testing::zoo_name(info.param);
    });

TEST(TopTwo, EntryOrdering) {
  const MeasureEntry high{5, 10};
  const MeasureEntry low{3, 2};
  const MeasureEntry tie_small_id{1, 10};
  const MeasureEntry absent{};
  EXPECT_TRUE(high.beats(low));
  EXPECT_FALSE(low.beats(high));
  EXPECT_TRUE(tie_small_id.beats(high));  // tie -> smaller id wins
  EXPECT_TRUE(high.beats(absent));
  EXPECT_FALSE(absent.beats(high));
}

TEST(TopTwo, NonParticipantsStayEmpty) {
  const Graph g = make_path(5);
  std::vector<std::int32_t> start(5, -1);
  start[0] = 4;
  std::vector<bool> participates(5, true);
  participates[2] = false;  // cuts the path
  const TopTwoResult r = reference_top_two(g, start, participates);
  EXPECT_FALSE(r.best[2].present());
  EXPECT_TRUE(r.best[1].present());
  // Node 3 is unreachable through the non-participant.
  EXPECT_FALSE(r.best[3].present());
}

TEST(TopTwo, SecondTracksDistinctOriginOnly) {
  // Two origins at the ends of a path; the middle node sees both, and its
  // second entry must be the other origin, never a duplicate.
  const Graph g = make_path(3);
  std::vector<std::int32_t> start{5, -1, 3};
  std::vector<bool> participates(3, true);
  const TopTwoResult r = reference_top_two(g, start, participates);
  EXPECT_EQ(r.best[1].origin_id, g.id(0));
  EXPECT_EQ(r.best[1].value, 4);
  EXPECT_EQ(r.second[1].origin_id, g.id(2));
  EXPECT_EQ(r.second[1].value, 2);
}

}  // namespace
}  // namespace rlocal
