// Shared helpers for the rlocal test suite.
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace rlocal::testing {

/// Small deterministic zoo for parameterized sweeps (scale ~48 keeps each
/// TEST_P instance fast while covering all families).
inline const std::vector<ZooEntry>& small_zoo() {
  static const std::vector<ZooEntry> zoo = make_zoo(48, /*seed=*/77);
  return zoo;
}

/// Names for parameterized test instantiation (gtest requires [A-Za-z0-9_]).
inline std::string zoo_name(int index) {
  return small_zoo()[static_cast<std::size_t>(index)].name;
}

}  // namespace rlocal::testing
